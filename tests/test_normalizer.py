"""Query normalization tests (paper Sec. III-A1)."""

from repro.sqlparser import fingerprint, normalize_sql


def test_paper_example():
    sql = "SELECT id, name FROM students WHERE score > 42"
    assert normalize_sql(sql) == "SELECT id, name FROM students WHERE score > ?"


def test_same_structure_same_normal_form():
    a = normalize_sql("SELECT a FROM t WHERE x = 1 AND y = 'p'")
    b = normalize_sql("SELECT a FROM t WHERE x = 99 AND y = 'q'")
    assert a == b


def test_in_lists_collapse_regardless_of_length():
    a = normalize_sql("SELECT a FROM t WHERE x IN (1, 2)")
    b = normalize_sql("SELECT a FROM t WHERE x IN (1, 2, 3, 4)")
    assert a == b
    assert "IN (?)" in a


def test_insert_rows_collapse():
    a = normalize_sql("INSERT INTO t (a, b) VALUES (1, 2)")
    b = normalize_sql("INSERT INTO t (a, b) VALUES (3, 4), (5, 6)")
    assert a == b


def test_update_assignments_parameterized():
    normalized = normalize_sql("UPDATE t SET a = 5 WHERE id = 3")
    assert normalized == "UPDATE t SET a = ? WHERE id = ?"


def test_delete_parameterized():
    assert (
        normalize_sql("DELETE FROM t WHERE id = 3")
        == "DELETE FROM t WHERE id = ?"
    )


def test_normalization_is_idempotent():
    once = normalize_sql("SELECT a FROM t WHERE x = 1")
    assert normalize_sql(once) == once


def test_fingerprint_stable_and_distinct():
    f1 = fingerprint("SELECT a FROM t WHERE x = 1")
    f2 = fingerprint("SELECT a FROM t WHERE x = 2")
    f3 = fingerprint("SELECT b FROM t WHERE x = 1")
    assert f1 == f2
    assert f1 != f3
    assert len(f1) == 16


def test_between_bounds_parameterized():
    normalized = normalize_sql("SELECT a FROM t WHERE x BETWEEN 1 AND 9")
    assert normalized.count("?") == 2
