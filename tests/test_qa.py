"""Unit tests for the repro.qa fuzzing subsystem itself.

Covers the generator (determinism, serialization, parseability), the
reference interpreter, the oracle pack on known-good seeds, shrinking
of injected failures, the runner (failure persistence + replay), and
the ``repro fuzz`` CLI.
"""

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.executor import Executor
from repro.qa import (
    Case,
    GenConfig,
    ORACLES,
    OracleConfig,
    ReferenceDatabase,
    generate_case,
    replay_case,
    run_fuzz,
    run_oracles,
    shrink_case,
    write_failure,
)
from repro.qa.oracles import Violation
from repro.sqlparser import parse
from repro.sqlparser.ast import Select

_FAST = GenConfig(rows=(0, 40))


# ---------------------------------------------------------------- generator


def test_generate_case_structure():
    case = generate_case(3)
    assert case.seed == 3
    assert case.tables
    assert case.statements
    for table in case.tables:
        assert table.name in case.rows
    for sql in case.statements:
        parse(sql)   # every statement must be within the parser dialect


def test_case_roundtrips_through_json():
    case = generate_case(11)
    again = Case.from_json(case.to_json())
    assert again.to_json() == case.to_json()
    assert again.statements == case.statements
    assert [t.name for t in again.tables] == [t.name for t in case.tables]


def test_case_database_is_loadable_and_queryable():
    case = generate_case(5, _FAST)
    db = case.database()
    executor = Executor(db)
    for sql in case.statements:
        executor.execute(sql)   # nothing raises


def test_gen_config_bounds_are_respected():
    config = GenConfig(tables=(2, 2), rows=(1, 10), statements=(3, 5))
    for seed in range(20, 25):
        case = generate_case(seed, config)
        assert len(case.tables) == 2
        assert 3 <= len(case.statements) <= 5
        for rows in case.rows.values():
            assert 1 <= len(rows) <= 10


# ---------------------------------------------------------------- reference


def test_reference_point_query():
    case = generate_case(9, _FAST)
    ref = ReferenceDatabase(case.tables, case.rows)
    table = case.tables[0]
    result = ref.execute(parse(f"SELECT COUNT(*) FROM {table.name}"))
    assert result.rows[0][0] == len(case.rows[table.name])


def test_reference_order_by_is_sorted():
    case = generate_case(9, _FAST)
    table = case.tables[0]
    ref = ReferenceDatabase(case.tables, case.rows)
    result = ref.execute(
        parse(f"SELECT id FROM {table.name} ORDER BY id")
    )
    ids = [r[0] for r in result.rows]
    assert ids == sorted(ids)
    assert result.ordered and result.keys_unique


def test_reference_zero_row_global_aggregate():
    config = GenConfig(rows=(0, 0))
    case = generate_case(1, config)
    table = case.tables[0]
    ref = ReferenceDatabase(case.tables, case.rows)
    result = ref.execute(
        parse(f"SELECT COUNT(*), MAX(id) FROM {table.name}")
    )
    assert result.rows == [(0, None)]


# ------------------------------------------------------------------ oracles


def test_all_oracles_pass_on_seed_7():
    case = generate_case(7)
    assert run_oracles(case, sorted(ORACLES), OracleConfig()) == []


def test_run_oracles_rejects_unknown_name():
    case = generate_case(7, _FAST)
    with pytest.raises(ValueError):
        run_oracles(case, ["no-such-oracle"], OracleConfig())


def test_differential_oracle_catches_wrong_rows(monkeypatch):
    # Inject an engine bug: SELECT silently drops the last result row.
    case = generate_case(7, _FAST)
    real_execute = Executor.execute

    def broken_execute(self, stmt, analyze=False):
        result = real_execute(self, stmt, analyze=analyze)
        parsed = parse(stmt) if isinstance(stmt, str) else stmt
        if isinstance(parsed, Select) and len(result.rows) > 1:
            return dataclasses.replace(
                result, rows=result.rows[:-1], rowcount=result.rowcount - 1
            )
        return result

    monkeypatch.setattr(Executor, "execute", broken_execute)
    violations = run_oracles(case, ["differential"], OracleConfig())
    assert violations
    assert all(v.oracle == "differential" for v in violations)


# ------------------------------------------------------------------- shrink


def test_shrink_minimizes_to_failing_statement():
    case = generate_case(13, _FAST)
    needle = case.statements[len(case.statements) // 2]

    def still_failing(candidate: Case) -> bool:
        return needle in candidate.statements

    shrunk = shrink_case(case, still_failing)
    assert needle in shrunk.statements
    assert len(shrunk.statements) == 1
    assert len(shrunk.tables) <= len(case.tables)


def test_shrink_keeps_original_when_nothing_smaller_fails():
    case = generate_case(13, GenConfig(tables=(1, 1), statements=(1, 1)))

    def still_failing(candidate: Case) -> bool:
        return candidate.statements == case.statements

    shrunk = shrink_case(case, still_failing)
    assert shrunk.statements == case.statements


def test_shrink_survives_crashing_predicate():
    case = generate_case(13, _FAST)
    target = case.statements[0]

    def flaky(candidate: Case) -> bool:
        if len(candidate.statements) == 2:
            raise RuntimeError("boom")   # treated as not-failing
        return target in candidate.statements

    shrunk = shrink_case(case, flaky)
    assert target in shrunk.statements


# ------------------------------------------------------------------- runner


def test_run_fuzz_clean_report():
    report = run_fuzz(seed=7, iters=3, gen_config=_FAST)
    assert report.ok
    assert report.cases_run == 3
    assert report.failure_files == []
    payload = report.to_dict()
    assert payload["ok"] and payload["cases_run"] == 3


def test_run_fuzz_rejects_unknown_oracle():
    with pytest.raises(ValueError):
        run_fuzz(seed=7, iters=1, oracles=["bogus"])


def test_write_failure_and_replay(tmp_path):
    case = generate_case(7, _FAST)
    violation = Violation(
        oracle="differential", seed=7, statement="q0", detail="synthetic"
    )
    path = write_failure(case, [violation], str(tmp_path))
    assert path is not None
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["violations"][0]["oracle"] == "differential"
    assert "--replay" in payload["replay"]
    # Replaying a healthy case against real oracles comes back clean.
    report = replay_case(path, oracles=["differential"])
    assert report.ok
    assert report.seed == 7


def test_run_fuzz_persists_shrunken_failure(tmp_path, monkeypatch):
    # Same injected engine bug as above, this time through the full
    # runner: the failure must be shrunk and written out for replay.
    real_execute = Executor.execute

    def broken_execute(self, stmt, analyze=False):
        result = real_execute(self, stmt, analyze=analyze)
        parsed = parse(stmt) if isinstance(stmt, str) else stmt
        if isinstance(parsed, Select) and len(result.rows) > 1:
            return dataclasses.replace(
                result, rows=result.rows[:-1], rowcount=result.rowcount - 1
            )
        return result

    monkeypatch.setattr(Executor, "execute", broken_execute)
    report = run_fuzz(
        seed=7, iters=2, oracles=["differential"], shrink=True,
        out_dir=str(tmp_path), gen_config=_FAST, max_failures=1,
    )
    assert not report.ok
    assert report.stopped_early
    assert report.failure_files
    with open(report.failure_files[0]) as fh:
        payload = json.load(fh)
    assert payload["shrunk"] is True
    shrunk = Case.from_dict(payload["case"])
    original = generate_case(shrunk.seed, _FAST)
    assert len(shrunk.statements) <= len(original.statements)


# ---------------------------------------------------------------------- CLI


def test_cli_fuzz_smoke(capsys):
    rc = cli_main(["fuzz", "--seed", "7", "--iters", "2", "--format", "json"])
    out = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert out["ok"] and out["cases_run"] == 2


def test_cli_fuzz_unknown_oracle(capsys):
    rc = cli_main(["fuzz", "--oracles", "bogus"])
    assert rc == 2
    assert "unknown oracle" in capsys.readouterr().err


def test_cli_fuzz_replay(tmp_path, capsys):
    case = generate_case(7, _FAST)
    violation = Violation(
        oracle="differential", seed=7, statement="q0", detail="synthetic"
    )
    path = write_failure(case, [violation], str(tmp_path))
    rc = cli_main(["fuzz", "--replay", path, "--oracles", "differential"])
    assert rc == 0   # healthy case: replay comes back clean
    assert "OK" in capsys.readouterr().out


def test_cli_fuzz_in_subprocess():
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fuzz",
         "--seed", "7", "--iters", "1"],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert out.returncode == 0, out.stderr
    assert "no violations" in out.stdout
