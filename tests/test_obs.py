"""Tests for the repro.obs telemetry subsystem."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import AimAdvisor
from repro.engine import ExecutionMetrics, INNODB
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    load_chrome_trace,
    record_execution_metrics,
    reset_telemetry,
    set_tracer,
    telemetry_snapshot,
    trace,
    traced,
)
from repro.obs.report import render_report
from repro.workload import Workload


@pytest.fixture()
def tracer():
    """A fresh process-wide tracer, restored afterwards."""
    fresh = Tracer()
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


# -- tracer ------------------------------------------------------------------


def test_span_nesting_and_ordering(tracer):
    with tracer.span("outer") as outer:
        with tracer.span("first"):
            pass
        with tracer.span("second") as second:
            with tracer.span("inner"):
                pass
        assert tracer.current() is outer

    roots = tracer.roots()
    assert [r.name for r in roots] == ["outer"]
    assert [c.name for c in roots[0].children] == ["first", "second"]
    assert [c.name for c in second.children] == ["inner"]
    # Finish order: children close before their parents.
    assert [s.name for s in tracer.spans()] == [
        "first", "inner", "second", "outer",
    ]
    assert all(s.duration >= 0 for s in tracer.spans())
    assert outer.duration >= second.duration


def test_span_attrs_and_module_level_trace(tracer):
    with trace("phase", size=3) as span:
        span.set(extra="x")
    finished = tracer.find("phase")
    assert len(finished) == 1
    assert finished[0].attrs == {"size": 3, "extra": "x"}


def test_traced_decorator(tracer):
    @traced("decorated.work")
    def work(x):
        return x * 2

    assert work(21) == 42
    assert len(tracer.find("decorated.work")) == 1


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("invisible") as span:
        span.set(ignored=True)
    assert tracer.spans() == []


def test_tracer_span_cap():
    tracer = Tracer(max_spans=5)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans()) == 5
    assert tracer.dropped == 5


def test_tracer_thread_safety(tracer):
    """Spans from concurrent threads keep per-thread trees intact."""
    n_threads, per_thread = 8, 25
    barrier = threading.Barrier(n_threads)

    def worker(tid: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            with tracer.span(f"t{tid}", i=i):
                with tracer.span(f"t{tid}.child"):
                    pass

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(tracer.spans()) == n_threads * per_thread * 2
    roots = tracer.roots()
    assert len(roots) == n_threads * per_thread
    for root in roots:
        assert len(root.children) == 1
        assert root.children[0].name == f"{root.name}.child"
        assert root.children[0].thread_id == root.thread_id


def test_chrome_trace_export_round_trip(tracer):
    with tracer.span("root", calls=7):
        with tracer.span("leaf", note="n"):
            pass
    payload = json.loads(json.dumps(tracer.to_chrome_trace()))
    assert payload["displayTimeUnit"] == "ms"
    spans = load_chrome_trace(payload)
    by_name = {s.name: s for s in spans}
    assert set(by_name) == {"root", "leaf"}
    assert by_name["root"].args == {"calls": 7}
    assert by_name["leaf"].args == {"note": "n"}
    # The leaf lies inside the root interval.
    root, leaf = by_name["root"], by_name["leaf"]
    assert root.ts_us <= leaf.ts_us
    assert leaf.ts_us + leaf.dur_us <= root.ts_us + root.dur_us + 1.0
    # Durations survive the round trip (µs vs the tracer's seconds).
    originals = {s.name: s.duration for s in tracer.spans()}
    for name, span in by_name.items():
        assert span.dur_us == pytest.approx(originals[name] * 1e6, rel=1e-6)


def test_chrome_trace_file_round_trip(tmp_path, tracer):
    """write_chrome_trace -> load_chrome_trace yields the same spans."""
    with tracer.span("advisor.recommend", queries=4):
        with tracer.span("advisor.ranking", ranked=11):
            pass
        with tracer.span("advisor.knapsack"):
            pass
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    with open(path) as fh:
        payload = json.load(fh)
    spans = load_chrome_trace(payload)
    originals = tracer.spans()
    assert {s.name for s in spans} == {s.name for s in originals}
    by_name = {s.name: s for s in spans}
    assert by_name["advisor.recommend"].args == {"queries": 4}
    assert by_name["advisor.ranking"].args == {"ranked": 11}
    durations = {s.name: s.duration for s in originals}
    for name, span in by_name.items():
        assert span.dur_us == pytest.approx(durations[name] * 1e6, rel=1e-6)


def test_nested_json_export(tracer):
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    dump = tracer.to_json()
    assert dump["format"] == "repro.obs.trace"
    assert dump["spans"][0]["name"] == "a"
    assert dump["spans"][0]["children"][0]["name"] == "b"


# -- metrics -----------------------------------------------------------------


def test_counter_labels():
    registry = MetricsRegistry()
    calls = registry.counter("calls", "test counter")
    calls.inc(kind="select")
    calls.inc(2, kind="select")
    calls.inc(kind="dml")
    calls.inc()
    assert calls.value(kind="select") == 3
    assert calls.value(kind="dml") == 1
    assert calls.snapshot() == {"": 1.0, "kind=dml": 1.0, "kind=select": 3.0}
    with pytest.raises(ValueError):
        calls.inc(-1)


def test_registry_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_gauge_set_and_inc():
    registry = MetricsRegistry()
    depth = registry.gauge("depth")
    depth.set(10, queue="q1")
    depth.inc(-3, queue="q1")
    assert depth.value(queue="q1") == 7


def test_histogram_percentiles_exact():
    registry = MetricsRegistry()
    hist = registry.histogram("latency")
    for v in range(1, 101):
        hist.observe(float(v), op="read")
    summary = hist.summary(op="read")
    assert summary["count"] == 100
    assert summary["sum"] == pytest.approx(5050.0)
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] == pytest.approx(95.05)
    assert summary["p99"] == pytest.approx(99.01)


def test_histogram_decimation_keeps_totals_exact():
    registry = MetricsRegistry()
    hist = registry.histogram("big")
    n = 20_000
    for v in range(n):
        hist.observe(float(v))
    summary = hist.summary()
    assert summary["count"] == n
    assert summary["sum"] == pytest.approx(n * (n - 1) / 2)
    assert summary["min"] == 0.0
    assert summary["max"] == float(n - 1)
    # Percentiles are approximate after decimation but must stay sane.
    assert summary["p50"] == pytest.approx(n / 2, rel=0.05)
    assert summary["p99"] == pytest.approx(n * 0.99, rel=0.05)


def test_metrics_thread_safety():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    child = counter.labels(worker="shared")
    n_threads, per_thread = 8, 5_000

    def worker() -> None:
        for _ in range(per_thread):
            child.inc()

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert child.value == n_threads * per_thread


def test_registry_reset_keeps_bound_children():
    registry = MetricsRegistry()
    child = registry.counter("c").labels(a="b")
    child.inc(5)
    registry.reset()
    assert child.value == 0
    child.inc()
    assert registry.counter("c").value(a="b") == 1


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(kind="x")
    registry.gauge("g").set(2.5)
    registry.histogram("h").observe(1.0)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == {"kind=x": 1.0}
    assert snap["gauges"]["g"] == {"": 2.5}
    assert snap["histograms"]["h"][""]["count"] == 1


# -- engine bridge -----------------------------------------------------------


def test_execution_metrics_as_dict_round_trip():
    metrics = ExecutionMetrics(rows_read=10, rows_sent=2, random_pages=3)
    data = metrics.as_dict()
    assert data["rows_read"] == 10
    assert data["rows_sent"] == 2
    assert data["random_pages"] == 3
    assert set(data) == set(ExecutionMetrics().as_dict())
    # as_dict must cover every counter merge() accumulates.
    other = ExecutionMetrics(**data)
    other.merge(metrics)
    assert other.rows_read == 20
    assert other.cpu_seconds(INNODB) == pytest.approx(
        2 * metrics.cpu_seconds(INNODB)
    )


def test_record_execution_metrics_bridges_counters():
    registry = get_registry()
    registry.reset()
    record_execution_metrics(
        ExecutionMetrics(rows_read=7, seq_pages=3), kind="select"
    )
    assert registry.counter("engine.rows_read").value(kind="select") == 7
    assert registry.counter("engine.seq_pages").value(kind="select") == 3
    assert registry.counter("engine.statements").value(kind="select") == 1


# -- advisor integration -----------------------------------------------------


def advisor_workload() -> Workload:
    return Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 50.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 30.0),
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'",
         20.0),
    ])


def test_advisor_run_records_pipeline_phases(db, tracer):
    """Regression: an AIM advisor run records >= 5 named pipeline phases."""
    get_registry().reset()
    rec = AimAdvisor(db).recommend(advisor_workload(), budget_bytes=10 << 20)

    roots = [r for r in tracer.roots() if r.name == "advisor.recommend"]
    assert len(roots) == 1
    root = roots[0]
    phase_names = {c.name for c in root.children}
    assert len(phase_names) >= 5, phase_names
    assert {
        "advisor.baseline_cost",
        "advisor.candidate_generation",
        "advisor.ranking",
        "advisor.knapsack",
        "advisor.validation",
    } <= phase_names
    # The Sec. III-E merge runs inside candidate generation.
    generation = next(
        c for c in root.children if c.name == "advisor.candidate_generation"
    )
    assert "advisor.merge" in {c.name for c in generation.children}

    # runtime_seconds comes from the root span (single source of truth).
    assert rec.runtime_seconds == pytest.approx(root.duration, rel=0.01)

    # Per-phase optimizer-call attribution adds up to the reported total.
    deltas = [c.attrs.get("optimizer_calls", 0) for c in root.children]
    assert sum(deltas) == rec.optimizer_calls
    assert root.attrs["optimizer_calls"] == rec.optimizer_calls

    # The registry carries per-phase histograms for the bench telemetry.
    snap = get_registry().snapshot()
    calls = snap["histograms"]["advisor.phase.optimizer_calls"]
    assert any(v["count"] > 0 for v in calls.values())
    assert "phase=ranking" in calls
    seconds = snap["histograms"]["advisor.phase.seconds"]
    assert set(calls) == set(seconds)


def test_baseline_select_traced(db, tracer):
    from repro.baselines import ALL_ALGORITHMS

    get_registry().reset()
    result = ALL_ALGORITHMS["dexter"](db).select(
        advisor_workload(), 10 << 20
    )
    spans = tracer.find("baseline.select")
    assert len(spans) == 1
    assert spans[0].attrs["algorithm"] == "dexter"
    # The select span attributes the selection-phase calls; the result
    # total also includes the before/after cost accounting calls, which
    # land on the baseline.cost_eval span.
    cost_spans = tracer.find("baseline.cost_eval")
    assert len(cost_spans) == 1
    assert (
        spans[0].attrs["optimizer_calls"]
        + cost_spans[0].attrs["optimizer_calls"]
        == result.optimizer_calls
    )
    assert result.runtime_seconds == pytest.approx(
        spans[0].duration, rel=0.01
    )
    snap = get_registry().snapshot()
    hist = snap["histograms"]["baseline.optimizer_calls"]["algorithm=dexter"]
    assert hist["count"] == 1
    assert hist["sum"] == result.optimizer_calls


def test_telemetry_snapshot_and_reset(db, tracer):
    get_registry().reset()
    AimAdvisor(db).recommend(advisor_workload(), budget_bytes=10 << 20)
    snapshot = telemetry_snapshot()
    assert snapshot["metrics"]["counters"]["optimizer.calls"]
    assert "advisor.recommend" in snapshot["spans"]
    entry = snapshot["spans"]["advisor.recommend"]
    assert entry["count"] == 1
    assert entry["attrs"]["optimizer_calls"] > 0
    reset_telemetry()
    empty = telemetry_snapshot()
    assert empty["spans"] == {}
    assert not empty["metrics"]["counters"].get("optimizer.calls")


# -- report rendering --------------------------------------------------------


def test_render_report_chrome_trace(tracer):
    with tracer.span("advisor.ranking", optimizer_calls=12):
        pass
    report = render_report(tracer.to_chrome_trace())
    assert "advisor.ranking" in report
    assert "12" in report


def test_render_report_telemetry(db, tracer):
    get_registry().reset()
    AimAdvisor(db).recommend(advisor_workload(), budget_bytes=10 << 20)
    report = render_report({"telemetry": telemetry_snapshot()})
    assert "advisor.recommend" in report
    assert "optimizer.calls" in report
    assert "advisor.phase.optimizer_calls" in report


def test_render_report_unknown_payload():
    assert "no telemetry" in render_report({"unrelated": 1})


# -- histogram reservoir / registry state transfer ---------------------------


def test_histogram_reservoir_deterministic():
    """Same metric + labels => same seed => identical retained samples."""
    a, b = MetricsRegistry(), MetricsRegistry()
    for registry in (a, b):
        hist = registry.histogram("lat")
        for v in range(10_000):
            hist.observe(float(v), op="read")
    dump_a = a.dump_state()["histograms"]["lat"]
    dump_b = b.dump_state()["histograms"]["lat"]
    assert dump_a == dump_b
    # A different label key reseeds, so its reservoir differs.
    c = MetricsRegistry()
    hist = c.histogram("lat")
    for v in range(10_000):
        hist.observe(float(v), op="write")
    assert c.dump_state()["histograms"]["lat"][0][1]["samples"] != dump_a[0][1][
        "samples"
    ]


def test_histogram_reset_reseeds_reservoir():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    for v in range(10_000):
        hist.observe(float(v))
    first = registry.dump_state()
    registry.reset()
    for v in range(10_000):
        hist.observe(float(v))
    assert registry.dump_state() == first


def test_dump_and_merge_state_counters_gauges():
    src, dst = MetricsRegistry(), MetricsRegistry()
    src.counter("calls").inc(7, kind="select")
    src.counter("calls").inc(2, kind="update")
    src.gauge("depth").set(3.5, queue="q")
    dst.counter("calls").inc(1, kind="select")
    dst.merge_state(src.dump_state())
    assert dst.counter("calls").value(kind="select") == 8
    assert dst.counter("calls").value(kind="update") == 2
    assert dst.gauge("depth").value(queue="q") == 3.5


def test_merge_state_histograms_keep_totals_exact():
    src, dst = MetricsRegistry(), MetricsRegistry()
    for v in range(1, 101):
        src.histogram("lat").observe(float(v))
    for v in range(101, 151):
        dst.histogram("lat").observe(float(v))
    dst.merge_state(src.dump_state())
    summary = dst.histogram("lat").summary()
    assert summary["count"] == 150
    assert summary["sum"] == pytest.approx(sum(range(1, 151)))
    assert summary["min"] == 1.0
    assert summary["max"] == 150.0


def test_merge_state_round_trip_is_lossless_below_cap():
    """Below the sample cap dump/merge transfers the exact value set."""
    src, dst = MetricsRegistry(), MetricsRegistry()
    values = [float(v) for v in range(500)]
    for v in values:
        src.histogram("h").observe(v, op="x")
    dst.merge_state(src.dump_state())
    assert dst.histogram("h").summary(op="x") == src.histogram("h").summary(
        op="x"
    )


def test_merge_state_empty_and_missing_sections():
    registry = MetricsRegistry()
    registry.merge_state({})   # must not raise
    registry.counter("c").inc()
    registry.merge_state({"counters": [], "gauges": [], "histograms": []})
    assert registry.counter("c").value() == 1
