"""Seed-determinism guarantees of the qa fuzzer and the advisor.

Two layers:

* in-process -- generating the same seed twice yields identical JSON,
  and recommending over the same case twice yields identical output;
* across interpreter hash seeds -- subprocesses with different
  ``PYTHONHASHSEED`` values must produce byte-identical workloads and
  identical advisor recommendations.  This catches accidental iteration
  over sets or hash-keyed dicts anywhere in the generation or
  recommendation paths (e.g. benefit attribution over
  ``plan.used_indexes``).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core import AimAdvisor, AimConfig
from repro.qa import generate_case
from repro.workload import Workload, WorkloadQuery

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _run_subprocess(code: str, hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = _SRC
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout


_CASE_JSON_CODE = """
from repro.qa import generate_case
print(generate_case({seed}).to_json(), end="")
"""

_RECOMMEND_CODE = """
import json
from repro.core import AimAdvisor, AimConfig
from repro.qa import generate_case
from repro.workload import Workload, WorkloadQuery

case = generate_case({seed})
db = case.database()
wl = Workload(
    [WorkloadQuery(s, name=f"q{{i}}")
     for i, s in enumerate(case.statements)],
    name="qa",
)
rec = AimAdvisor(db, AimConfig()).recommend(wl, 1 << 20)
payload = {{
    "created": [
        {{
            "name": r.index.name,
            "columns": list(r.index.columns),
            "size": r.size_bytes,
            "benefit": r.benefit,
            "maintenance": r.maintenance,
            "phase": r.phase,
        }}
        for r in rec.created
    ],
    "cost_before": rec.cost_before,
    "cost_after": rec.cost_after,
}}
print(json.dumps(payload, sort_keys=True), end="")
"""


def test_same_seed_same_case_in_process():
    a = generate_case(42)
    b = generate_case(42)
    assert a.to_json() == b.to_json()
    assert a.statements == b.statements


def test_different_seeds_differ():
    assert generate_case(42).to_json() != generate_case(43).to_json()


def test_recommendation_repeatable_in_process():
    def recommend():
        case = generate_case(10)
        db = case.database()
        wl = Workload(
            [WorkloadQuery(s, name=f"q{i}")
             for i, s in enumerate(case.statements)],
            name="qa",
        )
        rec = AimAdvisor(db, AimConfig()).recommend(wl, 1 << 20)
        return [
            (r.index.name, r.size_bytes, r.benefit, r.maintenance)
            for r in rec.created
        ], rec.cost_before, rec.cost_after

    assert recommend() == recommend()


@pytest.mark.slow
def test_workload_bytes_identical_across_hash_seeds():
    code = _CASE_JSON_CODE.format(seed=42)
    outputs = {_run_subprocess(code, hs) for hs in (0, 1, 2)}
    assert len(outputs) == 1, "generation depends on PYTHONHASHSEED"


@pytest.mark.slow
@pytest.mark.parametrize("seed", [10, 12])
def test_recommendation_identical_across_hash_seeds(seed):
    code = _RECOMMEND_CODE.format(seed=seed)
    outputs = [_run_subprocess(code, hs) for hs in (0, 1, 2)]
    payloads = [json.loads(o) for o in outputs]
    assert payloads[0]["created"], "expected a non-empty recommendation"
    assert payloads[0] == payloads[1] == payloads[2], (
        "advisor recommendation depends on PYTHONHASHSEED"
    )
