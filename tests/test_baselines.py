"""Baseline algorithm tests: every algorithm behaves as a valid advisor."""

import pytest

from repro.baselines import (
    ALL_ALGORITHMS,
    AimAlgorithm,
    DexterAlgorithm,
    DropAlgorithm,
    ExtendAlgorithm,
    NoIndexAlgorithm,
    indexable_columns,
    per_query_candidates,
    single_column_candidates,
)
from repro.optimizer import CostEvaluator
from repro.workload import Workload

BUDGET = 20 << 20


def workload():
    return Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 50.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 30.0),
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'", 20.0),
        ("SELECT status, COUNT(*) FROM orders GROUP BY status", 5.0),
    ])


@pytest.mark.parametrize("name", sorted(ALL_ALGORITHMS))
def test_algorithm_contract(db, name):
    """Budget respected, cost never worse than baseline, bookkeeping sane."""
    algo = ALL_ALGORITHMS[name](db)
    result = algo.select(workload(), BUDGET)
    assert result.algorithm == name
    assert result.total_size_bytes <= BUDGET
    assert result.cost_after <= result.cost_before + 1e-6
    assert result.runtime_seconds >= 0
    assert 0 < result.relative_cost <= 1.0 + 1e-9
    for idx in result.indexes:
        assert db.schema.table(idx.table)   # valid tables
        assert idx.width >= 1


@pytest.mark.parametrize(
    "name", ["aim", "extend", "dta", "autoadmin", "db2advis", "drop",
             "relaxation", "dexter", "cophy"]
)
def test_algorithms_find_the_obvious_index(db, name):
    """A single 1%-selective range query: everyone should improve it."""
    w = Workload.from_sql(
        [("SELECT amount FROM orders WHERE created < 10000", 10.0)]
    )
    result = ALL_ALGORITHMS[name](db).select(w, BUDGET)
    assert result.relative_cost < 0.9
    assert any("created" in idx.columns for idx in result.indexes)


def test_noindex_returns_nothing(db):
    result = NoIndexAlgorithm(db).select(workload(), BUDGET)
    assert result.indexes == []
    assert result.relative_cost == pytest.approx(1.0)


def test_aim_uses_fewest_optimizer_calls(db, monkeypatch):
    # Pin the evaluator to exact-cache-only mode: this test compares the
    # *algorithms'* optimizer appetite, and the what-if fast path (which
    # serves subset configurations from the canonical cache) benefits
    # enumeration-heavy baselines like Drop far more than AIM on a tiny
    # workload, inverting the ordering the paper's claim is about.
    monkeypatch.setenv("REPRO_WHATIF_FASTPATH", "0")
    w = workload()
    aim = AimAlgorithm(db).select(w, BUDGET)
    extend = ExtendAlgorithm(db).select(w, BUDGET)
    drop = DropAlgorithm(db).select(w, BUDGET)
    assert aim.optimizer_calls < extend.optimizer_calls
    assert aim.optimizer_calls < drop.optimizer_calls


def test_indexable_columns_ordering(db):
    ev = CostEvaluator(db)
    info = ev.analyze(
        "SELECT name FROM users WHERE city = 'c1' AND age > 5 ORDER BY score"
    )
    cols = indexable_columns(info)["users"]
    # Equality first, then range, then order-by.
    assert cols.index("city") < cols.index("age") < cols.index("score")


def test_single_column_candidates_deduplicated(db):
    ev = CostEvaluator(db)
    w = Workload.from_sql([
        ("SELECT name FROM users WHERE city = 'c1'", 1.0),
        ("SELECT name FROM users WHERE city = 'c2'", 1.0),
    ])
    singles = single_column_candidates(ev, w)
    assert len([i for i in singles if i.columns == ("city",)]) == 1


def test_per_query_candidates_respect_width(db):
    ev = CostEvaluator(db)
    w = workload()
    per_query = per_query_candidates(ev, w, max_width=2)
    for candidates in per_query.values():
        assert all(c.width <= 2 for c in candidates)


def test_dexter_improvement_threshold(db):
    """A query an index barely helps is skipped at a high threshold."""
    w = Workload.from_sql(
        [("SELECT amount FROM orders WHERE created < 10000", 10.0)]
    )
    strict = DexterAlgorithm(db, min_improvement=0.999)
    assert strict.select(w, BUDGET).indexes == []
    lax = DexterAlgorithm(db, min_improvement=0.05)
    assert lax.select(w, BUDGET).indexes


def test_extend_widens_indexes(db):
    """Extend grows (created) into a covering (created, amount) index."""
    w = Workload.from_sql(
        [("SELECT amount FROM orders WHERE created < 10000", 10.0)]
    )
    result = ExtendAlgorithm(db, max_width=3).select(w, BUDGET)
    assert any(idx.width >= 2 and "created" in idx.columns for idx in result.indexes)


def test_extend_greedy_blindness(db):
    """The paper's Sec. VI-C criticism: when no single column pays off on
    its own, Extend never reaches the good wide index -- here the covering
    (city, age, name) index that AIM finds via query structure."""
    w = Workload.from_sql(
        [("SELECT name FROM users WHERE city = 'c3' AND age > 75", 10.0)]
    )
    extend = ExtendAlgorithm(db, max_width=3).select(w, BUDGET)
    aim = AimAlgorithm(db).select(w, BUDGET)
    assert aim.cost_after <= extend.cost_after


def test_dta_time_limit_caps_runtime(db):
    from repro.baselines import DtaAlgorithm

    fast = DtaAlgorithm(db, time_limit_seconds=0.0)
    result = fast.select(workload(), BUDGET)
    # With no time at all, phase 2 cannot add anything.
    assert result.runtime_seconds < 5.0
