"""Recommendation / explanation record tests."""

from repro.catalog import Index
from repro.core import IndexRecommendation, Recommendation, format_bytes


def rec(benefit=10.0, maintenance=2.0, size=1 << 20):
    return IndexRecommendation(
        index=Index("t", ("a", "b")),
        benefit=benefit,
        maintenance=maintenance,
        size_bytes=size,
        benefiting_queries=[("q1", 8.0), ("q2", 2.0)],
    )


def test_format_bytes_units():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KiB"
    assert format_bytes(3 << 20) == "3.00 MiB"
    assert format_bytes(5 << 30) == "5.00 GiB"


def test_index_recommendation_utility():
    r = rec()
    assert r.utility == 8.0


def test_explanation_mentions_ddl_and_metrics():
    text = rec().explanation()
    assert "CREATE INDEX idx_t_a_b ON t (a, b)" in text
    assert "expected gain" in text
    assert "maintenance overhead" in text
    assert "q1" in text


def test_recommendation_aggregates():
    recommendation = Recommendation(
        created=[rec(), rec(benefit=5.0)],
        budget_bytes=10 << 20,
        cost_before=100.0,
        cost_after=60.0,
    )
    assert len(recommendation.indexes) == 2
    assert recommendation.total_size_bytes == 2 << 20
    assert recommendation.improvement == 0.4


def test_recommendation_improvement_guards_zero_base():
    recommendation = Recommendation(cost_before=0.0, cost_after=0.0)
    assert recommendation.improvement == 0.0


def test_summary_includes_drops():
    recommendation = Recommendation(
        created=[rec()],
        dropped=[Index("t", ("z",))],
        budget_bytes=10 << 20,
        cost_before=100.0,
        cost_after=60.0,
    )
    text = recommendation.summary()
    assert "DROP INDEX idx_t_z" in text
    assert "-40.0%" in text
