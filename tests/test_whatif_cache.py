"""What-if fast-path equivalence: the caches must never change an answer.

The canonical-cache/pruning tier (``fast_path``) and the process-pool
costing are pure optimizations: every cost and every used-index subset
they return must be bit-identical to the seed behaviour (exact cache
only, serial).  These tests drive both through a 200-case ``repro.qa``
corpus and through full advisor runs.
"""

from __future__ import annotations

import pytest

from repro.baselines import ALL_ALGORITHMS
from repro.baselines.cost_eval import candidate_pool
from repro.core import AimAdvisor, AimConfig
from repro.optimizer import CostEvaluator
from repro.qa.generator import generate_case
from repro.workload import Workload

CORPUS_CASES = 200
MAX_POOL = 6

BUDGET = 20 << 20


def _corpus_case(seed: int):
    case = generate_case(seed)
    db = case.database(with_storage=False)
    workload = Workload.from_sql([(sql, 1.0) for sql in case.statements])
    legacy = CostEvaluator(db, fast_path=False)
    pool = candidate_pool(legacy, workload, max_width=2, with_permutations=False)
    return case, db, legacy, pool[:MAX_POOL]


def test_corpus_fast_path_equivalence():
    """Cold, warm and canonical-hit costs match the seed bit for bit."""
    canonical_hits = 0
    for seed in range(CORPUS_CASES):
        case, db, legacy, pool = _corpus_case(seed)
        fast = CostEvaluator(db, fast_path=True)
        # Full pool first so subset lookups can hit the canonical tier.
        for config in (pool, pool[::2], []):
            for sql in case.statements:
                expected = legacy.cost(sql, config)
                assert fast.cost(sql, config) == expected, (seed, sql)
                # Warm: the second identical request is a pure cache hit.
                assert fast.cost(sql, config) == expected, (seed, sql)
                used_legacy = {i.key for i in legacy.used_subset(sql, config)}
                used_fast = {i.key for i in fast.used_subset(sql, config)}
                assert used_fast == used_legacy, (seed, sql)
        canonical_hits += fast.canonical_hits
    # The corpus actually exercises the canonical subset rule.
    assert canonical_hits > 0


def test_corpus_lru_eviction_invariance():
    """A tiny LRU bound evicts constantly but never changes a cost."""
    total_evictions = 0
    for seed in range(0, CORPUS_CASES, 10):
        case, db, legacy, pool = _corpus_case(seed)
        small = CostEvaluator(db, fast_path=True, max_cache_entries=2)
        for _round in range(2):
            for config in (pool, pool[::2], []):
                for sql in case.statements:
                    assert small.cost(sql, config) == legacy.cost(sql, config), (
                        seed,
                        sql,
                    )
        total_evictions += small.cache_evictions
    assert total_evictions > 0


def _workload() -> Workload:
    return Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 50.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 30.0),
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'", 20.0),
        ("SELECT status, COUNT(*) FROM orders GROUP BY status", 5.0),
        ("UPDATE orders SET status = 'done' WHERE oid = 5", 2.0),
    ])


@pytest.mark.parametrize("name", ["autoadmin", "extend"])
def test_parallel_algorithm_output_identical(db, name):
    """jobs=4 selection is byte-identical to serial (indexes and costs)."""
    serial = ALL_ALGORITHMS[name](db).select(_workload(), BUDGET)
    parallel_algo = ALL_ALGORITHMS[name](db)
    parallel_algo.jobs = 4
    parallel = parallel_algo.select(_workload(), BUDGET)
    assert [i.key for i in parallel.indexes] == [i.key for i in serial.indexes]
    assert parallel.cost_before == serial.cost_before
    assert parallel.cost_after == serial.cost_after


def test_parallel_advisor_output_identical(db):
    """AimConfig(jobs=4) recommends exactly what the serial advisor does."""
    serial = AimAdvisor(db, AimConfig(jobs=1)).recommend(_workload(), BUDGET)
    parallel = AimAdvisor(db, AimConfig(jobs=4)).recommend(_workload(), BUDGET)
    assert [r.index.key for r in parallel.created] == [
        r.index.key for r in serial.created
    ]
    assert parallel.cost_before == serial.cost_before
    assert parallel.cost_after == serial.cost_after


def test_parallel_workload_cost_identical(db):
    """workload_cost(jobs=4) equals the serial sum bit for bit."""
    pairs = list(_workload().pairs())
    config = candidate_pool(
        CostEvaluator(db), _workload(), max_width=2, with_permutations=False
    )
    serial = CostEvaluator(db)
    parallel = CostEvaluator(db, jobs=4)
    try:
        assert parallel.workload_cost(pairs, config) == serial.workload_cost(
            pairs, config
        )
        # Warm parallel costing is served from the merged-back caches.
        calls = parallel.optimizer.calls
        assert parallel.workload_cost(pairs, config) == serial.workload_cost(
            pairs, config
        )
        assert parallel.optimizer.calls == calls
    finally:
        parallel.close()
        serial.close()


def test_evaluator_reuse_counts_per_run(db):
    """A reused evaluator keeps its caches; per-run call counts are deltas."""
    algo = ALL_ALGORITHMS["autoadmin"](db)
    evaluator = CostEvaluator(db, include_schema_indexes=False)
    try:
        cold = algo.select(_workload(), BUDGET, evaluator=evaluator)
        warm = algo.select(_workload(), BUDGET, evaluator=evaluator)
    finally:
        evaluator.close()
    assert [i.key for i in warm.indexes] == [i.key for i in cold.indexes]
    assert warm.cost_after == cold.cost_after
    assert cold.optimizer_calls > 0
    assert warm.optimizer_calls == 0
