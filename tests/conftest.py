"""Shared fixtures: small stored databases with deterministic data."""

from __future__ import annotations

import random

import pytest

from repro.catalog import Column, Index, Table, INT, varchar
from repro.engine import Database


def users_table() -> Table:
    return Table(
        "users",
        [
            Column("id", INT),
            Column("age", INT),
            Column("city", varchar(12)),
            Column("name", varchar(20)),
            Column("score", INT, nullable=True),
        ],
        ("id",),
    )


def orders_table() -> Table:
    return Table(
        "orders",
        [
            Column("oid", INT),
            Column("user_id", INT),
            Column("amount", INT),
            Column("status", varchar(8)),
            Column("created", INT),
        ],
        ("oid",),
    )


def make_user_rows(n: int = 500, seed: int = 7) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "id": i,
            "age": rng.randint(18, 80),
            "city": f"c{rng.randint(0, 9)}",
            "name": f"n{i}",
            "score": None if rng.random() < 0.1 else rng.randint(0, 100),
        }
        for i in range(n)
    ]


def make_order_rows(n: int = 3000, n_users: int = 500, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "oid": i,
            "user_id": rng.randrange(n_users),
            "amount": rng.randint(1, 1000),
            "status": rng.choice(["new", "paid", "done"]),
            "created": rng.randint(0, 1_000_000),
        }
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def user_rows() -> list[dict]:
    return make_user_rows()


@pytest.fixture(scope="module")
def order_rows() -> list[dict]:
    return make_order_rows()


@pytest.fixture()
def db(user_rows, order_rows) -> Database:
    """A small stored two-table database, analyzed, no secondary indexes."""
    database = Database.from_tables([users_table(), orders_table()])
    database.load_rows("users", [dict(r) for r in user_rows])
    database.load_rows("orders", [dict(r) for r in order_rows])
    database.analyze()
    return database


@pytest.fixture()
def indexed_db(db) -> Database:
    """The same database with a few materialized secondary indexes."""
    db.create_index(Index("users", ("city", "age")))
    db.create_index(Index("orders", ("user_id", "status")))
    db.create_index(Index("orders", ("created",)))
    return db
