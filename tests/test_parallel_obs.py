"""Cross-process telemetry: worker spans and metrics merge into one view.

A ``--jobs N`` costing run must not be an observability black hole: every
worker ships its finished spans and its metrics-registry delta back with
the chunk results, and the parent splices them into its own tracer and
registry.  These tests pin the invariants: spliced spans carry worker
pids and hang under the submitting span, jobs=1 and jobs=4 produce the
same span tree modulo the ``parallel.chunk`` subtrees, and no counter is
lost to a worker process.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.baselines.cost_eval import candidate_pool
from repro.core import AimAdvisor, AimConfig
from repro.obs import Tracer, get_registry, get_tracer, set_tracer
from repro.obs.tracer import TRACE_WIRE_FORMAT
from repro.optimizer import CostEvaluator
from repro.workload import Workload

BUDGET = 20 << 20


@pytest.fixture()
def tracer():
    fresh = Tracer()
    previous = set_tracer(fresh)
    get_registry().reset()
    yield fresh
    set_tracer(previous)
    get_registry().reset()


def _workload() -> Workload:
    return Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 50.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 30.0),
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'",
         20.0),
        ("SELECT status, COUNT(*) FROM orders GROUP BY status", 5.0),
        ("UPDATE orders SET status = 'done' WHERE oid = 5", 2.0),
    ])


def _parallel_cost(db, tracer, jobs=4):
    ev = CostEvaluator(db, jobs=jobs)
    pairs = list(_workload().pairs())
    config = candidate_pool(
        CostEvaluator(db), _workload(), max_width=2, with_permutations=False
    )
    try:
        with tracer.span("costing.root"):
            ev.workload_cost(pairs, config)
    finally:
        ev.close()
    return ev


def test_worker_spans_spliced_under_parent(db, tracer):
    _parallel_cost(db, tracer)
    chunks = tracer.find("parallel.chunk")
    assert chunks, "no worker spans came back"
    own_pid = os.getpid()
    pids = {span.pid for span in chunks}
    assert all(pid is not None and pid != own_pid for pid in pids)
    root = tracer.roots()[0]
    assert root.name == "costing.root"

    def all_spans(span):
        yield span
        for child in span.children:
            yield from all_spans(child)

    assert {s.span_id for s in all_spans(root)} >= {
        s.span_id for s in chunks
    }, "chunk spans must hang under the submitting span"
    # Chunk indexes are deterministic and complete.
    indexes = sorted(span.attrs["chunk"] for span in chunks)
    assert indexes == list(range(len(indexes)))


def test_span_tree_jobs_invariant(db, tracer):
    """jobs=1 and jobs=4 runs produce the same advisor span tree, modulo
    the ``parallel.chunk`` subtrees (which only exist under the pool)."""

    def tree(span):
        return (
            span.name,
            tuple(
                tree(c) for c in span.children if c.name != "parallel.chunk"
            ),
        )

    def advisor_tree(jobs):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            AimAdvisor(db, AimConfig(jobs=jobs)).recommend(_workload(), BUDGET)
        finally:
            set_tracer(previous)
        return [tree(root) for root in fresh.roots()]

    assert advisor_tree(1) == advisor_tree(4)


def test_worker_metrics_merged_into_registry(db, tracer):
    registry = get_registry()
    ev = _parallel_cost(db, tracer)
    counters = registry.snapshot()["counters"]
    # Lockstep between evaluator attributes (worker deltas merged in
    # _parallel_costs) and registry counters (worker dump_state merged by
    # the pool): neither side may lose worker work.
    assert sum(counters["optimizer.calls"].values()) == ev.optimizer.calls
    assert sum(counters.get("whatif.cache_hits", {}).values()) == ev.cache_hits
    # Per-worker merge-back accounting exists and is labeled by pid.
    chunks = counters["parallel.worker.chunks"]
    assert chunks and all(label.startswith("pid=") for label in chunks)
    assert sum(chunks.values()) == len(tracer.find("parallel.chunk"))
    assert sum(counters["parallel.worker.bytes"].values()) > 0


def test_chrome_trace_worker_lanes(db, tracer, tmp_path):
    _parallel_cost(db, tracer)
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    own_pid = os.getpid()
    complete_pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert own_pid in complete_pids
    worker_pids = complete_pids - {own_pid}
    assert worker_pids, "worker spans must land in their own pid lanes"
    names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names[own_pid] == "repro"
    for pid in worker_pids:
        assert names[pid] == f"worker-{pid}"


def test_splice_wire_remaps_span_ids(tracer):
    """Worker-local span ids collide across processes; splicing must
    assign fresh parent-side ids."""
    worker = Tracer()
    with worker.span("parallel.chunk", chunk=0):
        with worker.span("inner"):
            pass
    payload = worker.export_wire()
    assert payload["format"] == TRACE_WIRE_FORMAT

    with tracer.span("root") as root:
        pass
    local_ids = {s.span_id for s in tracer.spans()}
    grafted = tracer.splice_wire(payload, parent=root)
    assert [g.name for g in grafted] == ["parallel.chunk"]
    chunk = grafted[0]
    assert chunk.pid == payload["pid"]
    assert chunk.span_id not in local_ids
    assert chunk.children[0].name == "inner"
    assert root.children == [chunk]
    # Spliced spans are finished spans: durations are real.
    assert chunk.end is not None and chunk.duration >= 0.0


def test_splice_wire_rejects_unknown_format(tracer):
    with pytest.raises(ValueError):
        tracer.splice_wire({"format": "something.else", "v": 1, "spans": []})
    with pytest.raises(ValueError):
        tracer.splice_wire({"format": TRACE_WIRE_FORMAT, "v": 99, "spans": []})


def test_parallel_disabled_tracer_ships_no_spans(db):
    """With tracing disabled the pool still merges metrics but splices
    nothing (worker tracers are born disabled too)."""
    fresh = Tracer(enabled=False)
    previous = set_tracer(fresh)
    get_registry().reset()
    try:
        ev = CostEvaluator(db, jobs=4)
        pairs = list(_workload().pairs())
        try:
            ev.workload_cost(pairs, [])
        finally:
            ev.close()
        assert fresh.spans() == []
        counters = get_registry().snapshot()["counters"]
        assert sum(counters["optimizer.calls"].values()) == ev.optimizer.calls
    finally:
        set_tracer(previous)
        get_registry().reset()
