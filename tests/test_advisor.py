"""AimAdvisor end-to-end tests (Algorithm 1)."""

import pytest

from repro.catalog import Index
from repro.core import AimAdvisor, AimConfig
from repro.optimizer import CostEvaluator
from repro.workload import Workload, WorkloadMonitor


def simple_workload():
    return Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 50.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 30.0),
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'", 20.0),
    ])


def test_recommendation_improves_workload(db):
    advisor = AimAdvisor(db)
    rec = advisor.recommend(simple_workload(), budget_bytes=10 << 20)
    assert rec.created
    assert rec.cost_after < rec.cost_before
    assert rec.improvement > 0.05
    assert rec.optimizer_calls > 0
    assert rec.runtime_seconds >= 0


def test_recommended_indexes_are_materialized_flavor(db):
    rec = AimAdvisor(db).recommend(simple_workload(), budget_bytes=10 << 20)
    assert all(not idx.dataless for idx in rec.indexes)


def test_budget_respected(db):
    rec = AimAdvisor(db).recommend(simple_workload(), budget_bytes=10 << 20)
    assert rec.total_size_bytes <= 10 << 20


def test_tiny_budget_selects_nothing_oversized(db):
    rec = AimAdvisor(db).recommend(simple_workload(), budget_bytes=100)
    assert rec.total_size_bytes <= 100


def test_zero_budget_empty_recommendation(db):
    rec = AimAdvisor(db).recommend(simple_workload(), budget_bytes=0)
    assert rec.created == []
    assert rec.cost_after == rec.cost_before


def test_explanations_are_metrics_driven(db):
    rec = AimAdvisor(db).recommend(simple_workload(), budget_bytes=10 << 20)
    text = rec.summary()
    assert "CREATE INDEX" in text
    assert "expected gain" in text
    assert "benefits:" in text


def test_monitor_cpu_basis_used(db):
    """With monitor statistics, measured cpu_avg drives Eq. 7."""
    monitor = WorkloadMonitor()
    from repro.engine import ExecutionMetrics

    sql = "SELECT amount FROM orders WHERE created < 10000"
    metrics = ExecutionMetrics(rows_read=3000, rows_sent=30)
    for _ in range(10):
        monitor.record_execution(sql, metrics, cpu_seconds=123.0)
    advisor = AimAdvisor(db, monitor=monitor)
    rec = advisor.recommend(
        Workload.from_sql([(sql, 10.0)]), budget_bytes=10 << 20
    )
    assert rec.created
    # Benefit derives from cpu_avg 123, weighted by 10 executions.
    assert rec.created[0].benefit == pytest.approx(10 * 123.0, rel=0.35)


def test_recommend_from_monitor_selects_representative(db):
    from repro.engine import ExecutionMetrics
    from repro.workload import SelectionPolicy

    monitor = WorkloadMonitor()
    hot = "SELECT amount FROM orders WHERE created < 10000"
    for _ in range(100):
        monitor.record_execution(
            hot, ExecutionMetrics(rows_read=3000, rows_sent=30), 5.0
        )
    # A spurious ad hoc query: one execution only.
    monitor.record_execution(
        "SELECT name FROM users WHERE age > 1",
        ExecutionMetrics(rows_read=500, rows_sent=499),
        5.0,
    )
    advisor = AimAdvisor(db, monitor=monitor)
    rec = advisor.recommend_from_monitor(
        budget_bytes=10 << 20, policy=SelectionPolicy(min_executions=2)
    )
    assert any("created" in idx.columns for idx in rec.indexes)


def test_join_parameter_zero_limits_exploration(db):
    narrow = AimAdvisor(db, AimConfig(join_parameter=0))
    wide = AimAdvisor(db, AimConfig(join_parameter=2))
    w = simple_workload()
    rec_narrow = narrow.recommend(w, 50 << 20)
    rec_wide = wide.recommend(w, 50 << 20)
    # j=0 never explores join-column candidates on the join query.
    join_indexes_narrow = [
        i for i in rec_narrow.indexes if "user_id" in i.columns
    ]
    assert rec_wide.optimizer_calls >= rec_narrow.optimizer_calls or not join_indexes_narrow


def test_width_cap_config(db):
    advisor = AimAdvisor(db, AimConfig(max_index_width=1))
    rec = advisor.recommend(simple_workload(), 50 << 20)
    assert all(idx.width <= 1 for idx in rec.indexes)


def test_covering_phase_produces_covering_indexes(db):
    from repro.core import CoveringPolicy

    config = AimConfig(
        covering=CoveringPolicy(seek_threshold=5.0),
        covering_weight_fraction=0.0,
    )
    rec = AimAdvisor(db, config).recommend(simple_workload(), 50 << 20)
    phases = {r.phase for r in rec.created}
    assert "covering" in phases


def test_eq3_gate_empty_when_no_improvement(db):
    # A workload with nothing to optimize: PK point lookups.
    w = Workload.from_sql([("SELECT name FROM users WHERE id = 5", 10.0)])
    rec = AimAdvisor(db).recommend(w, 50 << 20)
    assert rec.created == []


def test_relative_to_current_mode(indexed_db):
    """Continuous mode evaluates marginal gains over existing indexes."""
    w = Workload.from_sql(
        [("SELECT amount FROM orders WHERE created < 10000", 10.0)]
    )
    advisor = AimAdvisor(indexed_db, AimConfig(relative_to_current=True))
    rec = advisor.recommend(w, 50 << 20)
    # idx_orders_created already exists: no marginal gain to find.
    assert all("created" != idx.columns[0] for idx in rec.indexes)


def test_ranked_order_is_by_utility(db):
    rec = AimAdvisor(db).recommend(simple_workload(), 50 << 20)
    utilities = [r.utility for r in rec.created]
    assert utilities == sorted(utilities, reverse=True)
