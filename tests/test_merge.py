"""Partial order merging tests (paper Sec. III-E)."""

from repro.core import (
    PartialOrder,
    merge_by_table,
    merge_candidates_pairwise,
    merge_partial_orders,
)


def po(*groups, table="t"):
    return PartialOrder.build(table, groups)


def test_paper_example():
    """merge(<{col2,col3}>, <{col1,col2,col3}>) = <{col2,col3},{col1}>."""
    p = po(["col2", "col3"])
    q = po(["col1", "col2", "col3"])
    merged = merge_candidates_pairwise(p, q)
    assert merged == po(["col2", "col3"], ["col1"])


def test_merge_requires_subset():
    p = po(["a", "x"])
    q = po(["a", "b"])
    assert merge_candidates_pairwise(p, q) is None


def test_merge_rejects_order_conflict():
    """C_merge: no a,b in P with a ≺_P b and b ≺_Q a."""
    p = po(["a"], ["b"])          # a before b
    q = po(["b"], ["a"], ["c"])   # b before a
    assert merge_candidates_pairwise(p, q) is None


def test_merge_rejects_foreign_column_before_p():
    """Refinement guard: Q may not demand a Q\\P column before P."""
    p = po(["b"])
    q = po(["a"], ["b"])          # a (not in P) precedes b in Q
    assert merge_candidates_pairwise(p, q) is None


def test_merge_refines_p_partition_by_q():
    p = po(["a", "b"])            # unordered pair
    q = po(["a"], ["b"], ["c"])   # a strictly before b
    merged = merge_candidates_pairwise(p, q)
    assert merged == po(["a"], ["b"], ["c"])


def test_merge_preserves_q_tail_order():
    p = po(["a"])
    q = po(["a"], ["b"], ["c"])
    merged = merge_candidates_pairwise(p, q)
    assert merged == po(["a"], ["b"], ["c"])


def test_merge_across_tables_fails():
    assert merge_candidates_pairwise(po(["a"]), po(["a"], table="u")) is None


def test_self_merge_is_identity():
    p = po(["a", "b"], ["c"])
    assert merge_candidates_pairwise(p, p) == p


def test_merged_result_is_linear_extension_superset():
    """Every linear extension of the merged order satisfies both inputs
    as prefixes -- the property that makes the merged index serve both
    source queries."""
    p = po(["col2", "col3"])
    q = po(["col1", "col2", "col3"])
    merged = merge_candidates_pairwise(p, q)
    for total in merged.total_orders():
        assert q.satisfied_by(total)
        assert total[: p.width] in set(p.total_orders())


def test_fixpoint_includes_originals_and_merges():
    orders = {po(["a", "b"]), po(["a", "b", "c"])}
    result = merge_partial_orders(orders)
    assert orders <= result
    assert po(["a", "b"], ["c"]) in result


def test_fixpoint_terminates_on_unrelated_orders():
    orders = {po(["a"]), po(["b"], table="u")}
    result = merge_partial_orders(orders)
    assert result == orders


def test_fixpoint_chain_merges_transitively():
    orders = {po(["a"]), po(["a", "b"]), po(["a", "b", "c"])}
    result = merge_partial_orders(orders)
    # <{a},{b},{c}> is reachable via two merges.
    assert po(["a"], ["b"], ["c"]) in result


def test_fixpoint_cap_stops_expansion():
    orders = {po([f"c{i}"]) for i in range(6)} | {
        po([f"c{i}" for i in range(6)])
    }
    result = merge_partial_orders(orders, max_orders=10)
    assert len(result) >= 7


def test_merge_by_table_partitions_work():
    orders = {po(["a"]), po(["a", "b"]), po(["x"], table="u"), po(["x", "y"], table="u")}
    result = merge_by_table(orders)
    assert po(["a"], ["b"]) in result
    assert po(["x"], ["y"], table="u") in result
