"""Statistics layer tests."""

import pytest

from repro.stats import (
    ColumnStats,
    Histogram,
    StatsCatalog,
    SyntheticColumn,
    TableStats,
    analyze_column,
    analyze_table,
    synthesize_table,
)


def test_histogram_fraction_below():
    h = Histogram.from_values(list(range(100)))
    assert h.fraction_below(0) == 0.0
    assert h.fraction_below(100, inclusive=True) == 1.0
    assert abs(h.fraction_below(50) - 0.5) < 0.02


def test_histogram_fraction_between():
    h = Histogram.from_values(list(range(100)))
    assert abs(h.fraction_between(25, 74) - 0.5) < 0.03
    assert h.fraction_between(None, None) == 1.0
    assert h.fraction_between(200, 300) == 0.0


def test_histogram_fraction_equal_counts_duplicates():
    h = Histogram.from_values([1, 1, 1, 2])
    assert h.fraction_equal(1) == 0.75
    assert h.fraction_equal(9) == 0.0


def test_histogram_decimates_large_inputs():
    h = Histogram.from_values(list(range(10_000)))
    assert len(h.values) <= 512
    assert abs(h.fraction_below(5000) - 0.5) < 0.02


def test_histogram_type_mismatch_falls_back():
    h = Histogram.from_values([1.0, 2.0, 3.0])
    assert h.fraction_below("zebra") == 0.5
    assert h.fraction_equal("zebra") == 0.0


def test_histogram_min_max():
    h = Histogram.from_values([5, 1, 9])
    assert h.min_value == 1 and h.max_value == 9
    assert Histogram().min_value is None


def test_eq_selectivity_uses_ndv():
    stats = ColumnStats(ndv=100)
    assert stats.eq_selectivity() == pytest.approx(0.01)


def test_eq_selectivity_uses_histogram_when_value_known():
    stats = analyze_column([1] * 90 + [2] * 10)
    assert stats.eq_selectivity(1) == pytest.approx(0.9)
    assert stats.eq_selectivity(2) == pytest.approx(0.1)


def test_null_fraction_discounts_selectivity():
    stats = analyze_column([None] * 50 + list(range(50)))
    assert stats.null_frac == pytest.approx(0.5)
    assert stats.is_null_selectivity() == pytest.approx(0.5)
    assert stats.is_null_selectivity(negated=True) == pytest.approx(0.5)


def test_range_selectivity_with_histogram():
    stats = analyze_column(list(range(100)))
    assert stats.range_selectivity(">", 89) == pytest.approx(0.1, abs=0.03)
    assert stats.range_selectivity("<", 10) == pytest.approx(0.1, abs=0.03)


def test_range_selectivity_unknown_value_default():
    stats = ColumnStats(ndv=100)
    assert 0 < stats.range_selectivity(">") < 1


def test_in_selectivity_scales_with_items():
    stats = ColumnStats(ndv=100)
    assert stats.in_selectivity(5) == pytest.approx(0.05)
    assert stats.in_selectivity(1000) == 1.0


def test_like_selectivity_prefix_length():
    stats = ColumnStats(ndv=100)
    assert stats.like_selectivity("abcd%") < stats.like_selectivity("a%")
    assert stats.like_selectivity("%x") == 0.25


def test_analyze_column_ndv():
    stats = analyze_column([1, 1, 2, 3, None])
    assert stats.ndv == 3
    assert stats.null_frac == pytest.approx(0.2)


def test_analyze_table_row_count():
    ts = analyze_table({"a": [1, 2, 3], "b": ["x", "y", "z"]})
    assert ts.row_count == 3
    assert ts.column("a").ndv == 3


def test_distinct_values_caps_at_rowcount():
    ts = TableStats(row_count=1000, columns={
        "a": ColumnStats(ndv=100),
        "b": ColumnStats(ndv=100),
    })
    combined = ts.distinct_values(("a", "b"))
    assert 100 <= combined <= 1000
    assert ts.distinct_values(()) == 1
    assert ts.distinct_values(("a",)) >= 100 * 0.9


def test_synthesize_table():
    ts = synthesize_table(10_000, {
        "id": SyntheticColumn(ndv=-1, lo=1, hi=10_000),
        "kind": SyntheticColumn(ndv=5),
    })
    assert ts.row_count == 10_000
    assert ts.column("id").ndv == 10_000
    assert ts.column("kind").ndv == 5
    assert not ts.column("id").histogram.empty


def test_stats_catalog_defaults():
    catalog = StatsCatalog()
    assert catalog.row_count("unknown") == 0
    assert catalog.table("unknown").column("x").ndv == 1
