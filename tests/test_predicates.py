"""Predicate analysis tests."""

from repro.sqlparser import (
    ast,
    classify_atomic,
    join_predicate,
    parse_select,
    split_conjuncts,
    split_disjuncts,
    to_dnf,
)
from repro.sqlparser.predicates import like_has_constant_prefix


def where(sql_condition: str) -> ast.Expr:
    return parse_select(f"SELECT a FROM t WHERE {sql_condition}").where


def test_split_conjuncts_flattens_nested_and():
    expr = where("a = 1 AND b = 2 AND c = 3")
    assert len(split_conjuncts(expr)) == 3
    assert split_conjuncts(None) == []


def test_split_disjuncts():
    expr = where("a = 1 OR b = 2 OR c = 3")
    assert len(split_disjuncts(expr)) == 3


def test_dnf_paper_example_e2():
    # E2: (col1 = 5 AND col2 = 'ABC' AND col3 > 5) OR (col2 = 'X' AND col4 < 2)
    expr = where("(col1 = 5 AND col2 = 'ABC' AND col3 > 5) OR (col2 = 'X' AND col4 < 2.0)")
    factors = to_dnf(expr)
    assert len(factors) == 2
    cols = [
        sorted(classify_atomic(e).column.column for e in factor)
        for factor in factors
    ]
    assert ["col1", "col2", "col3"] in cols
    assert ["col2", "col4"] in cols


def test_dnf_distributes_and_over_or():
    expr = where("a = 1 AND (b = 2 OR c = 3)")
    factors = to_dnf(expr)
    assert len(factors) == 2
    assert all(len(f) == 2 for f in factors)


def test_dnf_caps_explosion():
    clause = " AND ".join(f"(a{i} = 1 OR b{i} = 2)" for i in range(10))
    factors = to_dnf(where(clause), max_terms=16)
    assert len(factors) <= 16


def test_classify_eq():
    pred = classify_atomic(where("x = 5"))
    assert pred.op == "="
    assert pred.column.column == "x"
    assert pred.is_ipp and pred.is_sargable


def test_classify_flipped_comparison():
    pred = classify_atomic(where("5 < x"))
    assert pred.op == ">"
    assert pred.column.column == "x"


def test_classify_in_between_null_like():
    assert classify_atomic(where("x IN (1, 2)")).op == "IN"
    assert classify_atomic(where("x BETWEEN 1 AND 2")).op == "BETWEEN"
    assert classify_atomic(where("x IS NULL")).op == "IS NULL"
    assert classify_atomic(where("x IS NOT NULL")).op == "IS NOT NULL"
    assert classify_atomic(where("x LIKE 'a%'")).op == "LIKE"
    assert classify_atomic(where("x NOT LIKE 'a%'")).op == "NOT LIKE"


def test_classify_rejects_column_to_column():
    assert classify_atomic(where("x = y")) is None


def test_classify_accepts_constant_arithmetic():
    pred = classify_atomic(where("x > 5 + 3"))
    assert pred is not None and pred.op == ">"


def test_join_predicate_detection():
    stmt = parse_select("SELECT a FROM t1, t2 WHERE t1.x = t2.y")
    pair = join_predicate(stmt.where)
    assert pair is not None
    assert pair[0].table == "t1" and pair[1].table == "t2"


def test_join_predicate_rejects_same_table():
    stmt = parse_select("SELECT a FROM t1 WHERE t1.x = t1.y")
    assert join_predicate(stmt.where) is None


def test_join_predicate_rejects_non_equality():
    stmt = parse_select("SELECT a FROM t1, t2 WHERE t1.x < t2.y")
    assert join_predicate(stmt.where) is None


def test_like_prefix_detection():
    assert like_has_constant_prefix("abc%")
    assert not like_has_constant_prefix("%abc")
    assert not like_has_constant_prefix("_bc")
    assert not like_has_constant_prefix("")
    assert not like_has_constant_prefix(None)


def test_ipp_classification_matches_paper():
    """Sec. IV-B2: =, <=>, IN chain prefixes; >, <= etc. do not."""
    ipp_pred = classify_atomic(where("x <=> 1"))
    assert ipp_pred.is_ipp
    range_pred = classify_atomic(where("x <= 1"))
    assert not range_pred.is_ipp and range_pred.is_range
