"""Partial order tests (paper Sec. III-A3)."""

import pytest

from repro.core import PartialOrder


def test_build_drops_empty_groups():
    po = PartialOrder.build("t", [["a", "b"], [], ["c"]])
    assert po.partitions == (frozenset({"a", "b"}), frozenset({"c"}))


def test_duplicate_columns_rejected():
    with pytest.raises(ValueError):
        PartialOrder.build("t", [["a"], ["a"]])


def test_empty_partition_rejected():
    with pytest.raises(ValueError):
        PartialOrder("t", (frozenset(),))


def test_chain():
    po = PartialOrder.chain("t", ["a", "b", "c"])
    assert po.partitions == tuple(frozenset([c]) for c in "abc")


def test_columns_and_width():
    po = PartialOrder.build("t", [["a", "b"], ["c"]])
    assert po.columns == {"a", "b", "c"}
    assert po.width == 3
    assert not po.is_empty


def test_precedes_within_and_across_partitions():
    po = PartialOrder.build("t", [["a", "b"], ["c"]])
    assert po.precedes("a", "c")
    assert po.precedes("b", "c")
    assert not po.precedes("a", "b")   # same partition: unordered
    assert not po.precedes("c", "a")


def test_partition_index_keyerror():
    po = PartialOrder.build("t", [["a"]])
    with pytest.raises(KeyError):
        po.partition_index("z")


def test_append_skips_existing_columns():
    po = PartialOrder.build("t", [["a"]])
    extended = po.append(["a", "b", "c"])
    assert extended.partitions == (frozenset({"a"}), frozenset({"b", "c"}))
    assert po.append(["a"]) is po


def test_append_chain_orders_singletons():
    po = PartialOrder.build("t", [["a"]])
    extended = po.append_chain(["b", "c", "a"])
    assert extended.partitions == (
        frozenset({"a"}), frozenset({"b"}), frozenset({"c"}),
    )


def test_satisfied_by_paper_example():
    """<{col2, col3}, {col1}> admits exactly [col2,col3,col1] and
    [col3,col2,col1] (Sec. III-E)."""
    po = PartialOrder.build("t", [["col2", "col3"], ["col1"]])
    assert po.satisfied_by(("col2", "col3", "col1"))
    assert po.satisfied_by(("col3", "col2", "col1"))
    assert not po.satisfied_by(("col1", "col2", "col3"))
    assert not po.satisfied_by(("col2", "col1", "col3"))
    assert not po.satisfied_by(("col2", "col3"))


def test_total_orders_enumeration():
    po = PartialOrder.build("t", [["a", "b"], ["c"]])
    orders = set(po.total_orders())
    assert orders == {("a", "b", "c"), ("b", "a", "c")}
    assert all(po.satisfied_by(o) for o in orders)


def test_linearize_default_alphabetical():
    po = PartialOrder.build("t", [["b", "a"], ["c"]])
    assert po.linearize() == ("a", "b", "c")


def test_linearize_with_key():
    po = PartialOrder.build("t", [["a", "b"]])
    ranks = {"a": 2, "b": 1}
    assert po.linearize(key=lambda c: ranks[c]) == ("b", "a")


def test_str_representation():
    po = PartialOrder.build("t1", [["col1", "col2"], ["col3"]])
    assert str(po) == "t1:<{col1, col2}, {col3}>"
