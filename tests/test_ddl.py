"""DDL parser tests."""

import pytest

from repro.catalog import TypeKind
from repro.sqlparser.ddl import DdlError, parse_ddl


def test_basic_create_table():
    ddl = """
    CREATE TABLE users (
        id BIGINT NOT NULL,
        name VARCHAR(40),
        age INT,
        PRIMARY KEY (id)
    );
    """
    parsed = parse_ddl(ddl)
    assert len(parsed.tables) == 1
    table = parsed.tables[0]
    assert table.name == "users"
    assert table.primary_key == ("id",)
    assert table.column("name").ctype.kind is TypeKind.STRING
    assert table.column("age").ctype.kind is TypeKind.INTEGER
    assert not table.column("id").nullable
    assert table.column("name").nullable


def test_inline_primary_key():
    parsed = parse_ddl("CREATE TABLE t (pk INT PRIMARY KEY, v INT);")
    assert parsed.tables[0].primary_key == ("pk",)


def test_leading_id_convention():
    parsed = parse_ddl("CREATE TABLE t (id INT, v INT);")
    assert parsed.tables[0].primary_key == ("id",)


def test_missing_pk_raises():
    with pytest.raises(DdlError):
        parse_ddl("CREATE TABLE t (a INT, b INT);")


def test_composite_primary_key():
    parsed = parse_ddl(
        "CREATE TABLE lineitem (l_orderkey BIGINT, l_linenumber INT, "
        "qty INT, PRIMARY KEY (l_orderkey, l_linenumber));"
    )
    assert parsed.tables[0].primary_key == ("l_orderkey", "l_linenumber")


def test_type_mapping():
    parsed = parse_ddl(
        "CREATE TABLE t (id INT, a DECIMAL(10, 2), b DOUBLE, c DATE, "
        "d TIMESTAMP, e BOOLEAN, f TEXT, g CHAR(3), h UNKNOWNTYPE);"
    )
    table = parsed.tables[0]
    assert table.column("a").ctype.kind is TypeKind.DECIMAL
    assert table.column("b").ctype.kind is TypeKind.FLOAT
    assert table.column("c").ctype.kind is TypeKind.DATE
    assert table.column("d").ctype.kind is TypeKind.DATETIME
    assert table.column("e").ctype.kind is TypeKind.BOOLEAN
    assert table.column("g").ctype.width == 3
    assert table.column("h").ctype.kind is TypeKind.STRING


def test_varchar_width_is_average():
    parsed = parse_ddl("CREATE TABLE t (id INT, v VARCHAR(100));")
    assert parsed.tables[0].column("v").ctype.width == 50


def test_column_attributes_skipped():
    parsed = parse_ddl(
        "CREATE TABLE t (id BIGINT NOT NULL AUTO_INCREMENT, "
        "v INT DEFAULT 5, w VARCHAR(8) DEFAULT 'x' NOT NULL);"
    )
    table = parsed.tables[0]
    assert not table.column("w").nullable


def test_create_index():
    parsed = parse_ddl(
        "CREATE TABLE t (id INT, a INT, b INT);"
        "CREATE INDEX idx_ab ON t (a, b);"
        "CREATE UNIQUE INDEX ON t (b);"
    )
    assert len(parsed.indexes) == 2
    assert parsed.indexes[0].columns == ("a", "b")
    assert parsed.indexes[1].unique


def test_to_schema_registers_everything():
    parsed = parse_ddl(
        "CREATE TABLE t (id INT, a INT); CREATE INDEX ON t (a);"
    )
    schema = parsed.to_schema()
    assert schema.table("t")
    assert len(schema.indexes("t")) == 1


def test_unsupported_create_raises():
    with pytest.raises(DdlError):
        parse_ddl("CREATE VIEW v (a INT);")
