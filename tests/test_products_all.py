"""All seven Table II products build and behave to spec."""

import pytest

from repro.optimizer import CostEvaluator
from repro.workloads.production import PRODUCTS, build_product


@pytest.mark.parametrize("key", sorted(PRODUCTS))
def test_product_builds_to_spec(key):
    spec = PRODUCTS[key]
    product = build_product(spec)
    assert len(product.db.schema.tables) == spec.tables
    assert len(product.workload) >= spec.query_count
    # Every table has stats and a positive row count in the spec's range.
    for table in product.db.schema:
        rows = product.db.stats.row_count(table.name)
        assert spec.min_rows * 0.5 <= rows <= spec.max_rows * 2
    # A sample of statements must plan without errors.
    evaluator = CostEvaluator(product.db)
    for query in list(product.workload)[:25]:
        assert evaluator.cost(query.sql) > 0


def test_products_differ_from_each_other():
    f = build_product(PRODUCTS["F"])
    d = build_product(PRODUCTS["D"])
    assert {t.name for t in f.db.schema} != {t.name for t in d.db.schema} or \
        [q.sql for q in f.workload] != [q.sql for q in d.workload]
