"""Tests for the decision journal (repro.obs.events) and fleet reports."""

from __future__ import annotations

import json

import pytest

from repro.catalog import Index
from repro.core import AimAdvisor
from repro.core.continuous import ContinuousTuner
from repro.obs import (
    AdvisorDecision,
    CycleEnd,
    CycleStart,
    DdlApplied,
    EventJournal,
    IndexRollback,
    RegressionFlagged,
    Tracer,
    WorkloadDigest,
    decode_event,
    emit,
    get_journal,
    read_events,
    reset_telemetry,
    set_journal,
    set_tracer,
)
from repro.obs.events import SCHEMA_VERSION
from repro.obs.fleet_report import fleet_report_data, render_fleet_report
from repro.optimizer import CostEvaluator
from repro.workload import Workload, WorkloadMonitor


@pytest.fixture()
def journal():
    """A fresh process-wide journal, restored afterwards."""
    fresh = EventJournal()
    previous = set_journal(fresh)
    yield fresh
    set_journal(previous)


@pytest.fixture()
def tracer():
    fresh = Tracer()
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


# -- journal mechanics --------------------------------------------------------


def test_emit_envelope_and_sequence(journal):
    r1 = emit(AdvisorDecision(action="accepted", reason="knapsack_selected",
                              index="idx_a", table="t"))
    r2 = emit(IndexRollback(index="idx_a", table="t"))
    assert r1["seq"] == 0 and r2["seq"] == 1
    assert r1["v"] == SCHEMA_VERSION
    assert r1["type"] == "advisor_decision"
    assert r2["type"] == "index_rollback"
    assert len(journal) == 2
    assert [r["seq"] for r in journal.records()] == [0, 1]


def test_emit_links_current_span(journal, tracer):
    with tracer.span("advisor.knapsack") as span:
        record = emit(AdvisorDecision(action="accepted",
                                      reason="knapsack_selected",
                                      index="idx_a"))
    assert record["span"] == "advisor.knapsack"
    assert record["span_id"] == span.span_id
    outside = emit(IndexRollback(index="idx_a"))
    assert outside["span"] is None and outside["span_id"] is None


def test_emit_rejects_non_events(journal):
    with pytest.raises(TypeError):
        emit({"type": "advisor_decision"})
    with pytest.raises(TypeError):
        emit("not an event")


def test_disabled_journal_is_noop():
    j = EventJournal(enabled=False)
    assert j.emit(IndexRollback(index="x")) is None
    assert len(j) == 0


def test_in_memory_cap_counts_drops(journal):
    j = EventJournal(max_events=3)
    for i in range(5):
        j.emit(IndexRollback(index=f"i{i}"))
    assert len(j) == 3
    assert j.dropped == 2
    # Sequence numbering keeps going past the cap.
    assert j.emit(IndexRollback(index="last"))["seq"] == 5


def test_events_of_filters_by_type_or_class(journal):
    emit(CycleStart(database="a"))
    emit(IndexRollback(index="i"))
    emit(CycleStart(database="b"))
    assert len(journal.events_of("cycle_start")) == 2
    assert len(journal.events_of(CycleStart)) == 2
    assert len(journal.events_of(IndexRollback)) == 1


def test_reset_clears_buffer_and_sequence(journal):
    emit(CycleStart(database="a"))
    journal.reset()
    assert len(journal) == 0
    assert emit(CycleStart(database="a"))["seq"] == 0


# -- file round trip ----------------------------------------------------------


def test_journal_file_round_trip(tmp_path, journal):
    path = tmp_path / "j.jsonl"
    journal.bind(str(path))
    emit(CycleStart(database="db1", queries=3, budget_bytes=1024))
    emit(AdvisorDecision(action="accepted", reason="knapsack_selected",
                         index="idx_t_a", table="t", columns=("a", "b"),
                         benefit=1.5, database="db1"))
    emit(WorkloadDigest(database="db1", window=2, queries=1, executions=9,
                        top=({"sql": "SELECT 1", "executions": 9,
                              "cpu_avg": 0.1, "benefit": 0.4},)))
    emit(CycleEnd(database="db1", created=("idx_t_a",), improvement=0.25))
    journal.close()

    records = read_events(str(path))
    assert [r["seq"] for r in records] == [0, 1, 2, 3]
    assert records == journal.records()

    # decode_event rebuilds the typed dataclasses, tuples restored.
    decision = decode_event(records[1])
    assert isinstance(decision, AdvisorDecision)
    assert decision.columns == ("a", "b")
    assert decision.benefit == 1.5
    digest = decode_event(records[2])
    assert isinstance(digest, WorkloadDigest)
    assert digest.top[0]["executions"] == 9


def test_decode_event_tolerates_unknown_types():
    assert decode_event({"type": "from_the_future", "v": 1}) is None
    assert decode_event({"v": 1}) is None


def test_read_events_rejects_newer_schema(tmp_path):
    path = tmp_path / "future.jsonl"
    record = {"seq": 0, "ts": 0.0, "v": SCHEMA_VERSION + 1,
              "type": "cycle_start", "database": "x"}
    path.write_text(json.dumps(record) + "\n")
    with pytest.raises(ValueError, match="newer"):
        read_events(str(path))


def test_read_events_rejects_bad_json_and_missing_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json\n")
    with pytest.raises(ValueError, match="not a JSON record"):
        read_events(str(path))
    path.write_text(json.dumps({"seq": 0, "type": "cycle_start"}) + "\n")
    with pytest.raises(ValueError, match="schema version"):
        read_events(str(path))


# -- emitter integration ------------------------------------------------------


def tuning_workload() -> Workload:
    return Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 50.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 30.0),
    ])


def test_advisor_emits_decisions(db, journal, tracer):
    recommendation = AimAdvisor(db).recommend(
        tuning_workload(), budget_bytes=10 << 20
    )
    assert recommendation.created
    decisions = journal.events_of(AdvisorDecision)
    accepted = [d for d in decisions if d["action"] == "accepted"]
    assert {d["index"] for d in accepted} >= {
        rec.index.name for rec in recommendation.created
    }
    # Decisions are emitted inside advisor phase spans (span linkage).
    assert all(d["span"] for d in decisions)
    assert all(d["database"] == db.name for d in decisions)


def test_tuning_cycle_emits_lifecycle_events(db, journal, tracer):
    reset_telemetry()
    monitor = WorkloadMonitor()
    evaluator = CostEvaluator(db)
    for query in tuning_workload():
        for _ in range(10):
            monitor.record_plan(query.sql, evaluator.plan(query.sql))
    tuner = ContinuousTuner(db, budget_bytes=10 << 20, monitor=monitor)
    result = tuner.run_cycle()

    types = [r["type"] for r in journal.records()]
    assert types[0] == "cycle_start"
    assert types[-1] == "cycle_end"
    assert "workload_digest" in types
    ddl = journal.events_of(DdlApplied)
    assert {r["index"] for r in ddl if r["action"] == "create"} == {
        idx.name for idx in result.created
    }
    end = journal.events_of(CycleEnd)[0]
    assert tuple(end["created"]) == tuple(i.name for i in result.created)
    assert end["database"] == db.name


def test_regression_detector_emits_flag_with_parsed_suspects(journal):
    from repro.fleet.regression import ContinuousRegressionDetector

    detector = ContinuousRegressionDetector(regression_threshold=1.5)
    # `users` appears as a substring of `user_stats`; only the index on
    # the genuinely referenced table may be suspected.
    detector.note_index_created(Index("users", ("city",)))
    detector.note_index_created(Index("user_stats", ("day",)))
    sql = "SELECT day FROM user_stats WHERE day > 5"

    first = WorkloadMonitor()
    entry = first._entry(sql)
    entry.record(1.0, 100, 1)
    assert detector.observe_window(first, database="alpha") == []

    second = WorkloadMonitor()
    entry = second._entry(sql)
    entry.record(9.0, 100, 1)
    events = detector.observe_window(second, database="alpha")
    assert len(events) == 1
    suspect_names = [i.name for i in events[0].suspect_indexes]
    assert suspect_names == ["idx_user_stats_day"]

    flagged = journal.events_of(RegressionFlagged)
    assert len(flagged) == 1
    assert flagged[0]["suspects"] == ["idx_user_stats_day"]
    assert flagged[0]["database"] == "alpha"
    assert flagged[0]["ratio"] == pytest.approx(9.0)


# -- fleet report -------------------------------------------------------------


def test_fleet_report_replay_is_deterministic(tmp_path, db, journal, tracer):
    """Rendering the live journal and rendering its re-read file agree."""
    path = tmp_path / "journal.jsonl"
    journal.bind(str(path))
    monitor = WorkloadMonitor()
    evaluator = CostEvaluator(db)
    for query in tuning_workload():
        for _ in range(10):
            monitor.record_plan(query.sql, evaluator.plan(query.sql))
    ContinuousTuner(db, budget_bytes=10 << 20, monitor=monitor).run_cycle()
    emit(RegressionFlagged(normalized_sql="SELECT x FROM t", ratio=2.5,
                           before_cpu_avg=1.0, after_cpu_avg=2.5,
                           suspects=("idx_t_x",), database=db.name))
    emit(IndexRollback(index="idx_t_x", table="t", database=db.name))
    journal.close()

    live = render_fleet_report(journal.records())
    replayed = render_fleet_report(read_events(str(path)))
    assert live == replayed
    assert "decision audit:" in live
    assert "regression timeline:" in live
    assert "REGRESSED x2.50" in live
    assert "ROLLBACK idx_t_x" in live
    assert "workload digests:" in live

    data = fleet_report_data(read_events(str(path)))
    assert data == fleet_report_data(journal.records())
    assert data["cycles"][0]["database"] == db.name
    assert data["regressions"][-1]["kind"] == "rollback"


def test_fleet_report_empty_journal():
    report = render_fleet_report([])
    assert "empty" in report
    assert "no regressions observed" in report
