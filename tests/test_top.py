"""Tests for the ``repro top`` dashboard (repro.obs.top)."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs.top import render_top, run_top

STATUS = {
    "format": "repro.obs.snapshots",
    "v": 1,
    "source": "advise:aim",
    "pid": 4242,
    "started": 1000.0,
    "snapshots": [
        {
            "ts": 1000.0, "mono": 10.0, "pid": 4242,
            "metrics": {
                "counters": {
                    "optimizer.calls": {"kind=select": 5.0},
                    "whatif.evaluations": {"": 20.0},
                    "whatif.cache_hits": {"": 10.0},
                },
                "gauges": {}, "histograms": {},
            },
        },
        {
            "ts": 1010.0, "mono": 20.0, "pid": 4242,
            "metrics": {
                "counters": {
                    "advisor.runs": {"": 1.0},
                    "optimizer.calls": {"kind=select": 15.0},
                    "whatif.evaluations": {"": 40.0},
                    "whatif.cache_hits": {"": 30.0},
                    "whatif.canonical_hits": {"": 4.0},
                    "analyze.cache_hits": {"": 12.0},
                    "parallel.worker.chunks": {"pid=71": 2.0, "pid=72": 2.0},
                    "parallel.worker.spans": {"pid=71": 2.0, "pid=72": 2.0},
                    "parallel.worker.seconds": {"pid=71": 0.3, "pid=72": 0.1},
                    "parallel.worker.bytes": {"pid=71": 2048.0, "pid=72": 1024.0},
                },
                "gauges": {
                    "advisor.phase.active": {"phase=ranking": 1.0},
                },
                "histograms": {
                    "advisor.phase.seconds": {
                        "phase=baseline_cost": {"count": 1, "sum": 0.05, "max": 0.05},
                        "phase=ranking": {"count": 1, "sum": 0.002, "max": 0.002},
                    },
                },
            },
            "extras": {
                "journal_tail": [
                    {"seq": 0, "type": "cycle_start", "database": "db1",
                     "queries": 9},
                    {"seq": 1, "type": "advisor_decision", "action": "accepted",
                     "reason": "knapsack_selected",
                     "index": "idx_orders_user_id"},
                ],
                "profiler": {
                    "hz": 97.0, "samples": 120, "overhead_pct": 0.8,
                    "top_frames": [
                        {"frame": "optimizer.Optimizer.explain",
                         "samples": 60, "pct": 50.0},
                        {"frame": "selectivity.estimate",
                         "samples": 30, "pct": 25.0},
                    ],
                    "regions": {"advisor.ranking": 70, "cli.advise": 50},
                },
            },
        },
    ],
}

GOLDEN = """\
repro top — source advise:aim  pid 4242  snapshots 2  age 2.5s
==============================================================================
tuning cycles
  advisor runs      1   tuning cycles      0   indexes recommended      0
  phase                      runs   total ms     max ms    state
  baseline_cost                 1      50.00      50.00     idle
  ranking                       1       2.00       2.00  RUNNING

optimizer / what-if
  optimizer calls          15   (1.0/s)
  what-if requests         40   (2.0/s)
  cache hit rate        75.0%   (canonical 4, analyze 12)

parallel workers
  pid        chunks  spans   wall s   share  merge-back
  71              2      2    0.300   75.0%       2.0 KiB
  72              2      2    0.100   25.0%       1.0 KiB

journal tail
  [    0] cycle_start          db1 queries=9
  [    1] advisor_decision     accepted knapsack_selected idx_orders_user_id

top profiled frames (97 Hz, 120 samples, overhead 0.8%)
   50.0%  optimizer.Optimizer.explain
   25.0%  selectivity.estimate
  regions: advisor.ranking (70), cli.advise (50)"""


def test_render_top_golden():
    """The full frame is a pure function of (status, now): golden output."""
    assert render_top(STATUS, now=1012.5, window=30.0) == GOLDEN


def test_render_top_empty_status():
    frame = render_top({"source": "x", "pid": 1, "snapshots": []}, now=0.0)
    assert "no snapshots captured yet" in frame


def test_run_top_once_renders_file(tmp_path):
    path = tmp_path / "status.json"
    path.write_text(json.dumps(STATUS))
    out = io.StringIO()
    assert run_top(["--once", "--status", str(path)], out=out) == 0
    frame = out.getvalue()
    assert "repro top — source advise:aim" in frame
    assert "parallel workers" in frame
    assert "top profiled frames" in frame


def test_run_top_once_missing_status(tmp_path, capsys):
    assert run_top(["--once", "--status", str(tmp_path / "nope.json")]) == 2
    assert "no status" in capsys.readouterr().err


def test_run_top_rejects_newer_schema(tmp_path):
    path = tmp_path / "status.json"
    path.write_text(json.dumps({**STATUS, "v": 99}))
    assert run_top(["--once", "--status", str(path)]) == 2


@pytest.mark.slow
def test_advise_publishes_status_for_top(tmp_path, capsys):
    """End to end: `repro advise --status F` then `repro top --once`."""
    import pathlib

    examples = pathlib.Path(__file__).parent.parent / "examples" / "cli_files"
    status = tmp_path / "status.json"
    rc = main([
        "advise",
        "--schema", str(examples / "schema.sql"),
        "--workload", str(examples / "workload.sql"),
        "--budget", "64MB",
        "--status", str(status),
    ])
    assert rc == 0
    assert status.exists()
    capsys.readouterr()
    assert main(["top", "--once", "--status", str(status)]) == 0
    frame = capsys.readouterr().out
    assert "source advise:aim" in frame
    assert "advisor runs" in frame
    assert "cache hit rate" in frame
