"""Optimizer facade and what-if evaluator tests."""

import pytest

from repro.catalog import Index
from repro.optimizer import CostEvaluator, Optimizer
from repro.optimizer.cost_model import affected_rows, index_is_affected
from repro.sqlparser import parse


def test_explain_counts_calls(db):
    opt = Optimizer(db)
    opt.explain("SELECT name FROM users")
    opt.explain("SELECT name FROM users")
    assert opt.calls == 2


def test_dml_cost_includes_maintenance(db):
    opt = Optimizer(db)
    no_index = opt.explain("UPDATE users SET city = 'x' WHERE id = 1")
    db.create_index(Index("users", ("city",)))
    with_index = opt.explain("UPDATE users SET city = 'x' WHERE id = 1")
    assert with_index.maintenance_cost > no_index.maintenance_cost
    assert with_index.total_cost > no_index.total_cost


def test_update_untouched_index_free(db):
    db.create_index(Index("users", ("age",)))
    opt = Optimizer(db)
    p = opt.explain("UPDATE users SET name = 'x' WHERE id = 1")
    assert p.maintenance_cost == 0


def test_insert_and_delete_affect_every_index():
    insert = parse("INSERT INTO users (id) VALUES (1)")
    delete = parse("DELETE FROM users WHERE id = 1")
    update = parse("UPDATE users SET name = 'x' WHERE id = 1")
    idx = Index("users", ("age",))
    assert index_is_affected(insert, idx)
    assert index_is_affected(delete, idx)
    assert not index_is_affected(update, idx)
    assert not index_is_affected(insert, Index("orders", ("amount",)))


def test_affected_rows_estimates(db):
    opt = Optimizer(db)
    info = opt.analyze("DELETE FROM orders WHERE status = 'paid'")
    rows = affected_rows(info, db.schema, db.stats)
    assert 500 < rows < 2000   # ~1/3 of 3000


def test_materialized_only_ignores_dataless(db):
    db.create_index(Index("users", ("city", "name"), dataless=True))
    opt = Optimizer(db)
    p = opt.explain("SELECT name FROM users WHERE city = 'c1'", materialized_only=True)
    assert not p.used_indexes


def test_cost_evaluator_excludes_schema_indexes_by_default(indexed_db):
    ev = CostEvaluator(indexed_db)
    p = ev.plan("SELECT name FROM users WHERE city = 'c1'")
    assert not p.used_indexes


def test_cost_evaluator_include_schema_indexes(indexed_db):
    ev = CostEvaluator(indexed_db, include_schema_indexes=True)
    p = ev.plan("SELECT name FROM users WHERE city = 'c1' AND age > 70")
    assert "idx_users_city_age" in p.used_indexes


def test_cost_evaluator_caches_plans(db):
    ev = CostEvaluator(db)
    sql = "SELECT name FROM users WHERE city = 'c1'"
    ev.cost(sql)
    calls = ev.optimizer_calls
    ev.cost(sql)
    assert ev.optimizer_calls == calls
    assert ev.cache_hits >= 1


def test_cache_hits_metric_tracks_instance_counter(db):
    # The whatif.cache_hits registry counter must move in lockstep with
    # CostEvaluator.cache_hits even after the process registry is
    # swapped (import-time metric handles would keep pointing at the
    # old registry).
    from repro.obs import MetricsRegistry, get_registry, set_registry

    previous = get_registry()
    fresh = MetricsRegistry()
    set_registry(fresh)
    try:
        ev = CostEvaluator(db)
        sql = "SELECT name FROM users WHERE city = 'c1'"
        ev.cost(sql)
        ev.cost(sql)
        ev.cost(sql)
        assert ev.cache_hits == 2
        metric = fresh.counter("whatif.cache_hits").labels()
        assert metric.value == ev.cache_hits
    finally:
        set_registry(previous)


def test_cache_key_projects_config_onto_query_tables(db):
    ev = CostEvaluator(db)
    sql = "SELECT name FROM users WHERE city = 'c1'"
    orders_idx = Index("orders", ("status",), dataless=True)
    ev.cost(sql)
    calls = ev.optimizer_calls
    # An index on an unrelated table cannot change the plan: cache hit.
    ev.cost(sql, [orders_idx])
    assert ev.optimizer_calls == calls


def test_workload_cost_weights(db):
    ev = CostEvaluator(db)
    sql = "SELECT name FROM users WHERE city = 'c1'"
    single = ev.workload_cost([(sql, 1.0)])
    double = ev.workload_cost([(sql, 2.0)])
    assert double == pytest.approx(2 * single)


def test_used_subset(db):
    ev = CostEvaluator(db)
    useful = Index("users", ("city", "name"), dataless=True)
    useless = Index("users", ("score",), dataless=True)
    used = ev.used_subset(
        "SELECT name FROM users WHERE city = 'c1'", [useful, useless]
    )
    assert useful in used
    assert useless not in used


def test_more_indexes_never_hurt_reads(db):
    """Adding access paths can only keep or lower SELECT plan cost."""
    ev = CostEvaluator(db)
    sql = "SELECT u.name, o.amount FROM users u, orders o WHERE u.id = o.user_id AND o.status = 'paid'"
    base = ev.cost(sql)
    config = [
        Index("orders", ("status",), dataless=True),
        Index("orders", ("user_id", "status"), dataless=True),
        Index("users", ("city",), dataless=True),
    ]
    assert ev.cost(sql, config) <= base + 1e-9
