"""JOB workload package tests."""

import pytest

from repro.optimizer import CostEvaluator
from repro.workloads.job import ROW_COUNTS, job_database, job_workload


@pytest.fixture(scope="module")
def jdb():
    return job_database()


def test_schema_has_21_tables(jdb):
    assert len(jdb.schema.tables) == 21


def test_real_imdb_cardinalities(jdb):
    assert jdb.stats.row_count("cast_info") == ROW_COUNTS["cast_info"]
    assert jdb.stats.row_count("title") == 2_528_312


def test_all_families_parse_and_plan(jdb):
    workload = job_workload()
    assert len(workload) >= 20
    evaluator = CostEvaluator(jdb)
    for query in workload:
        cost = evaluator.cost(query.sql)
        assert cost > 0, query.name


def test_queries_are_multi_join(jdb):
    evaluator = CostEvaluator(jdb)
    for query in job_workload():
        info = evaluator.analyze(query.sql)
        assert len(info.bindings) >= 4, query.name
        assert info.join_edges, query.name


def test_self_join_families_use_aliases(jdb):
    evaluator = CostEvaluator(jdb)
    workload = job_workload()
    info = evaluator.analyze(workload.by_name("33c").sql)
    tables = list(info.bindings.values())
    assert tables.count("title") == 2
    assert tables.count("kind_type") == 2


def test_aim_improves_job_strongly(jdb):
    """JOB is selective-join-heavy: indexes help by an order of magnitude
    (the Fig 4c shape)."""
    from repro.baselines import AimAlgorithm

    result = AimAlgorithm(jdb).select(job_workload(), 8 << 30)
    assert result.relative_cost < 0.3
