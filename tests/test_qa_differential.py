"""Differential sweep: engine vs. naive reference over 200 seeded cases.

Each case runs every generated statement through both
``repro.executor`` and the full-scan reference interpreter
(:mod:`repro.qa.reference`) -- twice, the second time with a
materialized sargable index so index scans and DML index maintenance
are exercised -- and requires row-for-row agreement.  A separate sweep
asserts the EXPLAIN ANALYZE root actuals equal the returned row counts,
so the instrumentation can never drift from the result set.
"""

import pytest

from repro.executor import Executor
from repro.qa import GenConfig, ReferenceDatabase, generate_case
from repro.qa.oracles import OracleConfig, differential_oracle
from repro.sqlparser import parse
from repro.sqlparser.ast import Select

# Small row counts keep 200 cases (x2 runs x ~7 statements) fast while
# still covering empty tables, DML churn, and multi-row group-bys.
_CONFIG = GenConfig(rows=(0, 60))
_SWEEP = range(1000, 1200)


@pytest.mark.parametrize("chunk", range(0, len(_SWEEP), 25))
def test_engine_matches_reference(chunk):
    for seed in list(_SWEEP)[chunk:chunk + 25]:
        case = generate_case(seed, _CONFIG)
        violations = differential_oracle(case, OracleConfig())
        assert not violations, (
            f"seed {seed}: "
            + "; ".join(f"[{v.statement}] {v.detail}" for v in violations)
        )


def test_explain_analyze_actuals_match_rowcounts():
    for seed in range(2000, 2025):
        case = generate_case(seed, _CONFIG)
        db = case.database()
        executor = Executor(db)
        for sql in case.statements:
            stmt = parse(sql)
            result = executor.execute(stmt, analyze=True)
            if isinstance(stmt, Select):
                assert result.actual is not None, f"seed {seed}: {sql}"
                assert result.actual.rows == result.rowcount, (
                    f"seed {seed}: root actual {result.actual.rows} != "
                    f"rowcount {result.rowcount} for {sql}"
                )


def test_reference_agrees_on_known_aggregate():
    case = generate_case(7, _CONFIG)
    ref = ReferenceDatabase(case.tables, case.rows)
    db = case.database()
    executor = Executor(db)
    table = next(iter(case.tables))
    sql = f"SELECT COUNT(*) FROM {table.name}"
    got = executor.execute(parse(sql))
    want = ref.execute(parse(sql))
    assert list(got.rows) == list(want.rows)
    assert got.rows[0][0] == len(case.rows.get(table.name, []))
