"""Continuous tuning tests (Sec. II-B, VI-D)."""

from repro.catalog import Index
from repro.core import (
    ContinuousTuner,
    find_prefix_redundant_indexes,
    find_unused_indexes,
)
from repro.workload import Workload, WorkloadMonitor


def test_find_unused_indexes(indexed_db):
    w = Workload.from_sql(
        [("SELECT amount FROM orders WHERE created < 10000", 10.0)]
    )
    unused = find_unused_indexes(indexed_db, w)
    names = {i.name for i in unused}
    assert "idx_users_city_age" in names
    assert "idx_orders_created" not in names


def test_find_prefix_redundant(db):
    db.create_index(Index("orders", ("user_id",)))
    db.create_index(Index("orders", ("user_id", "status")))
    redundant = find_prefix_redundant_indexes(db)
    assert [i.name for i in redundant] == ["idx_orders_user_id"]


def test_tuner_cycle_creates_and_cleans(db):
    from repro.engine import ExecutionMetrics

    monitor = WorkloadMonitor()
    sql = "SELECT amount FROM orders WHERE created < 10000"
    for _ in range(50):
        monitor.record_execution(
            sql, ExecutionMetrics(rows_read=3000, rows_sent=30), 8.0
        )
    tuner = ContinuousTuner(db, budget_bytes=20 << 20, monitor=monitor)
    result = tuner.run_cycle()
    assert result.changed
    assert any("created" in i.columns for i in result.created)
    assert db.schema.indexes(include_dataless=False)
    assert tuner.history == [result]


def test_tuner_cycle_is_idempotent_when_tuned(db):
    from repro.engine import ExecutionMetrics

    monitor = WorkloadMonitor()
    sql = "SELECT amount FROM orders WHERE created < 10000"
    for _ in range(50):
        monitor.record_execution(
            sql, ExecutionMetrics(rows_read=3000, rows_sent=30), 8.0
        )
    tuner = ContinuousTuner(db, budget_bytes=20 << 20, monitor=monitor)
    first = tuner.run_cycle()
    created_names = {i.name for i in first.created}
    second = tuner.run_cycle()
    # Nothing new to create; existing useful indexes are kept.
    assert not second.created
    remaining = {i.name for i in db.schema.indexes(include_dataless=False)}
    assert created_names <= remaining


def test_tuner_drops_unused_after_workload_change(db):
    from repro.engine import ExecutionMetrics

    db.create_index(Index("users", ("score", "name")))
    monitor = WorkloadMonitor()
    sql = "SELECT amount FROM orders WHERE created < 10000"
    for _ in range(50):
        monitor.record_execution(
            sql, ExecutionMetrics(rows_read=3000, rows_sent=30), 8.0
        )
    tuner = ContinuousTuner(db, budget_bytes=20 << 20, monitor=monitor)
    result = tuner.run_cycle()
    dropped = {i.name for i in result.dropped}
    assert "idx_users_score_name" in dropped


def test_tuner_respects_remaining_budget(db):
    from repro.engine import ExecutionMetrics

    monitor = WorkloadMonitor()
    sql = "SELECT amount FROM orders WHERE created < 10000"
    for _ in range(50):
        monitor.record_execution(
            sql, ExecutionMetrics(rows_read=3000, rows_sent=30), 8.0
        )
    tiny = ContinuousTuner(db, budget_bytes=1, monitor=monitor)
    result = tiny.run_cycle()
    assert not result.created


def test_tuner_noop_on_empty_monitor(db):
    tuner = ContinuousTuner(db, budget_bytes=20 << 20)
    result = tuner.run_cycle()
    assert not result.changed
