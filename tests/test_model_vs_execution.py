"""Randomized cross-validation: the executor agrees with brute force,
and plans with indexes never change results.

These are the repository's strongest correctness guards: for a corpus of
randomized single-table and join queries, (a) executor results equal a
Python brute-force evaluation, and (b) adding indexes never changes the
result set, only the metrics.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import Index
from repro.executor import Executor

OPS = ["=", "<", ">", "<=", ">="]


def random_condition(rng: random.Random) -> tuple[str, callable]:
    """A random orders-table predicate as (sql, python_check)."""
    kind = rng.randrange(5)
    if kind == 0:
        v = rng.randint(0, 999)
        return (f"amount = {v}", lambda o: o["amount"] == v)
    if kind == 1:
        v = rng.randint(0, 1_000_000)
        op = rng.choice(OPS)
        checks = {
            "=": lambda o: o["created"] == v,
            "<": lambda o: o["created"] < v,
            ">": lambda o: o["created"] > v,
            "<=": lambda o: o["created"] <= v,
            ">=": lambda o: o["created"] >= v,
        }
        return (f"created {op} {v}", checks[op])
    if kind == 2:
        vals = sorted(rng.sample(["new", "paid", "done"], rng.randint(1, 3)))
        quoted = ", ".join(f"'{v}'" for v in vals)
        return (f"status IN ({quoted})", lambda o: o["status"] in vals)
    if kind == 3:
        lo = rng.randint(0, 800)
        hi = lo + rng.randint(0, 200)
        return (
            f"amount BETWEEN {lo} AND {hi}",
            lambda o: lo <= o["amount"] <= hi,
        )
    v = rng.randint(0, 499)
    return (f"user_id = {v}", lambda o: o["user_id"] == v)


@pytest.mark.parametrize("seed", range(12))
def test_random_single_table_queries_match_brute_force(db, order_rows, seed):
    rng = random.Random(seed)
    executor = Executor(db)
    conds = [random_condition(rng) for _ in range(rng.randint(1, 3))]
    connector = " AND " if rng.random() < 0.7 else " OR "
    where = connector.join(sql for sql, _ in conds)
    sql = f"SELECT oid FROM orders WHERE {where}"

    result = executor.execute(sql)
    if connector == " AND ":
        expected = {
            o["oid"] for o in order_rows if all(c(o) for _s, c in conds)
        }
    else:
        expected = {
            o["oid"] for o in order_rows if any(c(o) for _s, c in conds)
        }
    assert {row[0] for row in result.rows} == expected


@pytest.mark.parametrize("seed", range(8))
def test_indexes_never_change_results(db, seed):
    rng = random.Random(100 + seed)
    executor = Executor(db)
    conds = [random_condition(rng) for _ in range(2)]
    sql = (
        "SELECT u.name, o.amount FROM users u, orders o "
        f"WHERE u.id = o.user_id AND {conds[0][0]} AND u.age > {rng.randint(18, 70)}"
    )
    before = sorted(executor.execute(sql).rows)
    created = [
        db.create_index(Index("orders", ("user_id", "status"))),
        db.create_index(Index("orders", ("created", "amount"))),
        db.create_index(Index("users", ("age", "name"))),
        db.create_index(Index("orders", ("amount",))),
    ]
    after = sorted(executor.execute(sql).rows)
    assert before == after
    for index in created:
        db.drop_index(index)


@pytest.mark.parametrize("seed", range(6))
def test_estimated_rows_out_within_order_of_magnitude(db, order_rows, seed):
    """Cardinality estimates stay within ~10x of truth for sane predicates
    (the bound that keeps join orders reasonable)."""
    from repro.optimizer import Optimizer

    rng = random.Random(200 + seed)
    sql_cond, check = random_condition(rng)
    sql = f"SELECT oid FROM orders WHERE {sql_cond}"
    plan = Optimizer(db).explain(sql)
    actual = sum(1 for o in order_rows if check(o))
    if actual >= 30:   # below that, estimation noise dominates
        assert actual / 10 <= plan.rows_out <= actual * 10
