"""Executor edge cases and failure injection."""

import pytest

from repro.catalog import Index
from repro.executor import Executor


def test_vanished_index_degrades_to_seq_scan(indexed_db):
    """If an index disappears from storage between planning and
    execution, the scan degrades safely instead of crashing."""
    executor = Executor(indexed_db)
    # Remove the physical structure but keep the catalog entry.
    indexed_db.storage["orders"].drop_index("idx_orders_created")
    result = executor.execute("SELECT amount FROM orders WHERE created < 10000")
    assert result.rows   # correct results via the fallback scan


def test_update_changing_pk_maintains_lookup(db):
    executor = Executor(db)
    executor.execute("UPDATE users SET id = 100000 WHERE id = 3")
    gone = executor.execute("SELECT name FROM users WHERE id = 3")
    assert gone.rows == []
    moved = executor.execute("SELECT name FROM users WHERE id = 100000")
    assert moved.rows == [("n3",)]


def test_delete_via_index_path(indexed_db, order_rows):
    executor = Executor(indexed_db)
    expected = sum(1 for o in order_rows if o["created"] < 5000)
    result = executor.execute("DELETE FROM orders WHERE created < 5000")
    assert result.rowcount == expected
    # The index no longer returns the deleted rows.
    check = executor.execute("SELECT COUNT(*) FROM orders WHERE created < 5000")
    assert check.rows[0][0] == 0


def test_left_join_treated_as_inner_documented(db):
    """LEFT JOIN parses and executes with inner-join semantics (a
    documented substrate simplification, DESIGN.md)."""
    executor = Executor(db)
    result = executor.execute(
        "SELECT u.name FROM users u LEFT JOIN orders o ON u.id = o.user_id "
        "WHERE o.amount > 995"
    )
    inner = executor.execute(
        "SELECT u.name FROM users u, orders o WHERE u.id = o.user_id "
        "AND o.amount > 995"
    )
    assert sorted(result.rows) == sorted(inner.rows)


def test_empty_in_list_rejected(db):
    from repro.sqlparser import ParseError

    executor = Executor(db)
    with pytest.raises(ParseError):
        executor.execute("SELECT name FROM users WHERE id IN ()")


def test_limit_zero_returns_nothing(db):
    executor = Executor(db)
    result = executor.execute("SELECT name FROM users LIMIT 0")
    assert result.rows == []


def test_offset_beyond_rows(db):
    executor = Executor(db)
    result = executor.execute("SELECT name FROM users ORDER BY id LIMIT 5 OFFSET 10000")
    assert result.rows == []


def test_large_in_list_expansion_capped(indexed_db):
    """An IN list beyond the subrange cap falls back to a wider scan and
    still returns correct results."""
    executor = Executor(indexed_db)
    values = ", ".join(str(v) for v in range(0, 500_000, 500))
    result = executor.execute(
        f"SELECT COUNT(*) FROM orders WHERE created IN ({values})"
    )
    assert result.rows[0][0] >= 0   # correctness: no crash, exact count below
    brute = executor.execute("SELECT created FROM orders")
    expected = sum(1 for (c,) in brute.rows if c in set(range(0, 500_000, 500)))
    assert result.rows[0][0] == expected


def test_aggregate_over_empty_group_returns_nulls(db):
    executor = Executor(db)
    result = executor.execute(
        "SELECT COUNT(*), SUM(amount), MIN(amount), AVG(amount) "
        "FROM orders WHERE amount > 99999"
    )
    assert result.rows == [(0, None, None, None)]


def test_distinct_with_nulls(db):
    executor = Executor(db)
    result = executor.execute("SELECT DISTINCT score FROM users WHERE score IS NULL")
    assert result.rows == [(None,)]
