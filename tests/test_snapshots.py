"""Tests for the metrics snapshot bus and status publication."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsSnapshotBus,
    capture_now,
    counter_deltas,
    counter_rates,
    default_status_path,
    get_bus,
    load_status,
    serve_status,
    set_bus,
    set_registry,
)
from repro.obs.snapshots import SNAPSHOT_FORMAT, SNAPSHOT_VERSION


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture()
def no_bus():
    previous = set_bus(None)
    yield
    bus = set_bus(previous)
    if bus is not None:
        bus.stop(final_capture=False)


def test_capture_and_window(registry, no_bus):
    bus = MetricsSnapshotBus(capacity=10)
    calls = registry.counter("c")
    for i in range(4):
        calls.inc(10)
        bus.capture(now=1000.0 + i, mono=float(i))
    assert len(bus) == 4
    assert [s["mono"] for s in bus.window(1.5)] == [2.0, 3.0]
    assert bus.latest()["metrics"]["counters"]["c"] == {"": 40.0}


def test_delta_and_rate_math(registry, no_bus):
    bus = MetricsSnapshotBus()
    calls = registry.counter("opt.calls")
    calls.inc(5, kind="select")
    bus.capture(now=0.0, mono=0.0)
    calls.inc(15, kind="select")
    calls.inc(3, kind="update")
    bus.capture(now=10.0, mono=10.0)
    assert bus.deltas() == {"opt.calls": {"kind=select": 15.0, "kind=update": 3.0}}
    assert bus.rates() == {"opt.calls": {"kind=select": 1.5, "kind=update": 0.3}}


def test_counter_reset_handled_like_prometheus():
    def snap(mono, value):
        return {"ts": mono, "mono": mono,
                "metrics": {"counters": {"c": {"": value}}}}

    # The producing process restarted: the counter went 100 -> 7.  The
    # post-restart value is the delta, not -93.
    deltas = counter_deltas([snap(0.0, 100.0), snap(5.0, 7.0)])
    assert deltas == {"c": {"": 7.0}}
    rates = counter_rates([snap(0.0, 100.0), snap(5.0, 7.0)])
    assert rates == {"c": {"": pytest.approx(1.4)}}


def test_delta_edge_cases():
    assert counter_deltas([]) == {}
    assert counter_deltas([{"mono": 0.0, "metrics": {}}]) == {}
    same = [
        {"mono": 0.0, "metrics": {"counters": {"c": {"": 5.0}}}},
        {"mono": 0.0, "metrics": {"counters": {"c": {"": 5.0}}}},
    ]
    assert counter_deltas(same) == {}        # no increment -> omitted
    assert counter_rates(same) == {}         # zero elapsed -> no rates


def test_ring_capacity(registry, no_bus):
    bus = MetricsSnapshotBus(capacity=3)
    for i in range(10):
        bus.capture(now=float(i), mono=float(i))
    assert len(bus) == 3
    assert [s["mono"] for s in bus.snapshots()] == [7.0, 8.0, 9.0]


def test_write_load_round_trip(tmp_path, registry, no_bus):
    registry.counter("c").inc(2)
    bus = MetricsSnapshotBus(source="test-run")
    bus.capture(now=1.0, mono=1.0)
    path = bus.write(str(tmp_path / "status.json"))
    status = load_status(path)
    assert status["format"] == SNAPSHOT_FORMAT
    assert status["v"] == SNAPSHOT_VERSION
    assert status["source"] == "test-run"
    assert status["snapshots"][0]["metrics"]["counters"]["c"] == {"": 2.0}


def test_load_status_rejects_foreign_and_newer(tmp_path):
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError, match="not a"):
        load_status(str(foreign))
    newer = tmp_path / "newer.json"
    newer.write_text(json.dumps({"format": SNAPSHOT_FORMAT, "v": 99}))
    with pytest.raises(ValueError, match="newer"):
        load_status(str(newer))


def test_journal_tail_in_extras(registry, no_bus):
    from repro.obs import CycleStart, emit, get_journal

    get_journal().reset()
    emit(CycleStart(database="db1", queries=3, budget_bytes=1))
    bus = MetricsSnapshotBus()
    snap = bus.capture(now=0.0, mono=0.0)
    tail = snap["extras"]["journal_tail"]
    assert tail[-1]["type"] == "cycle_start"
    get_journal().reset()


def test_capture_now_with_and_without_bus(tmp_path, registry, no_bus):
    capture_now()   # no bus installed: must be a silent no-op
    path = tmp_path / "status.json"
    bus = MetricsSnapshotBus(path=str(path), source="hook")
    set_bus(bus)
    assert get_bus() is bus
    registry.counter("c").inc()
    capture_now()
    assert len(bus) == 1
    assert load_status(str(path))["source"] == "hook"
    set_bus(None)


def test_background_sampler_thread(tmp_path, registry, no_bus):
    path = tmp_path / "status.json"
    bus = MetricsSnapshotBus(interval=0.02, path=str(path))
    bus.start()
    try:
        deadline = 50
        while len(bus) < 2 and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
    finally:
        bus.stop(final_capture=True)
    assert len(bus) >= 2
    assert load_status(str(path))["snapshots"]


def test_default_status_path_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_STATUS_FILE", "/tmp/custom-status.json")
    assert default_status_path() == "/tmp/custom-status.json"
    monkeypatch.delenv("REPRO_STATUS_FILE")
    assert default_status_path().endswith("repro-status.json")


def _http_get(port: int) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/") as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def test_serve_status_from_bus(registry, no_bus):
    registry.counter("c").inc(4)
    bus = MetricsSnapshotBus(source="served")
    bus.capture(now=0.0, mono=0.0)
    server = serve_status(bus, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        status, body = _http_get(server.server_address[1])
    finally:
        server.shutdown()
        server.server_close()
    assert status == 200
    assert body["source"] == "served"
    assert body["snapshots"][0]["metrics"]["counters"]["c"] == {"": 4.0}


def test_serve_status_from_file_missing_is_503(tmp_path):
    server = serve_status(str(tmp_path / "absent.json"), port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        status, body = _http_get(server.server_address[1])
    finally:
        server.shutdown()
        server.server_close()
    assert status == 503
    assert "error" in body
