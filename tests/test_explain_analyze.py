"""Tests for EXPLAIN ANALYZE: per-operator actuals and Q-error."""

from __future__ import annotations

import pytest

from repro.catalog import Index
from repro.executor import Executor, q_error, render_explain_analyze
from repro.obs import EventJournal, PlanEstimate, set_journal


@pytest.fixture()
def journal():
    fresh = EventJournal()
    previous = set_journal(fresh)
    yield fresh
    set_journal(previous)


def test_q_error_definition():
    assert q_error(10, 10) == 1.0
    assert q_error(100, 10) == pytest.approx(10.0)
    assert q_error(10, 100) == pytest.approx(10.0)
    # Zero sides clamp to one row: 0-vs-0 is perfect, 0-vs-N degrades to N.
    assert q_error(0, 0) == 1.0
    assert q_error(0, 50) == pytest.approx(50.0)
    assert q_error(50, 0) == pytest.approx(50.0)


def test_analyze_off_by_default(db, journal):
    result = Executor(db).execute("SELECT id FROM users WHERE age > 40")
    assert result.actual is None
    assert journal.events_of(PlanEstimate) == []


def test_actuals_match_execution_metrics(db, journal):
    """The ActualPlanStats tree must agree with ExecutionMetrics totals."""
    executor = Executor(db)
    sql = ("SELECT u.name, o.amount FROM users u, orders o "
           "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'")
    result = executor.execute(sql, analyze=True)
    actual = result.actual
    assert actual is not None
    assert actual.label == "Result"

    # Root actual rows == rows the statement returned.
    assert actual.rows == result.rowcount

    nodes = [node for _depth, node in actual.walk()]
    assert sum(n.rows_scanned for n in nodes) == result.metrics.rows_read
    assert sum(n.pages_read for n in nodes) == (
        result.metrics.seq_pages + result.metrics.random_pages
    )
    # Wall time is inclusive: the root covers every child.
    assert all(actual.wall_seconds >= c.wall_seconds
               for c in actual.children)
    assert all(n.loops >= 1 for n in nodes if n.label != "Sort")


def test_index_scan_actuals_and_loops(db, journal):
    db.create_index(Index("orders", ("user_id",)))
    executor = Executor(db)
    sql = ("SELECT u.name, o.amount FROM users u, orders o "
           "WHERE u.id = o.user_id AND u.city = 'c2'")
    result = executor.execute(sql, analyze=True)
    actual = result.actual
    scans = actual.find("IndexScan")
    if scans:   # nested-loop inner side: one probe per outer row
        inner = scans[0]
        drive = actual.find("SeqScan")[0]
        assert inner.loops == drive.rows
    assert sum(n.rows_scanned for _d, n in actual.walk()) == (
        result.metrics.rows_read
    )


def test_sort_node_appears_for_order_by(db, journal):
    result = Executor(db).execute(
        "SELECT id, age FROM users WHERE city = 'c3' ORDER BY age",
        analyze=True,
    )
    sorts = result.actual.find("Sort")
    assert len(sorts) == 1
    assert sorts[0].rows == result.rowcount


def test_plan_estimate_events_emitted(db, journal):
    Executor(db).execute(
        "SELECT id FROM users WHERE age > 40", analyze=True
    )
    events = journal.events_of(PlanEstimate)
    assert events, "analyze runs must journal per-node estimates"
    assert {e["node"] for e in events} >= {"Result"}
    for event in events:
        assert event["q_error"] >= 1.0
        assert "users" in event["sql"] or event["node"] in ("Result", "Sort")


def test_render_explain_analyze(db):
    result = Executor(db).execute(
        "SELECT id FROM users WHERE age > 40", analyze=True
    )
    text = render_explain_analyze(result.plan, result.actual)
    assert text.startswith("EXPLAIN ANALYZE")
    assert "est rows" in text and "act rows" in text and "Q-err" in text
    assert "Result" in text
    assert "worst node Q-error" in text
    # Without actuals it degrades to the estimated plan.
    assert render_explain_analyze(result.plan, None) == result.plan.describe()


def test_actual_to_dict_shape(db):
    result = Executor(db).execute("SELECT id FROM users", analyze=True)
    payload = result.actual.to_dict()
    assert payload["label"] == "Result"
    assert payload["q_error"] >= 1.0
    assert isinstance(payload["children"], list)
    child_labels = [c["label"] for c in payload["children"]]
    assert any("SeqScan" in label for label in child_labels)
