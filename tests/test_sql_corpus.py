"""Corpus test: every workload shipped with the repository parses,
normalizes stably, renders back to itself, and analyzes cleanly."""

import pytest

from repro.optimizer import analyze_query
from repro.sqlparser import normalize_sql, parse


def all_corpus_workloads():
    from repro.workloads.job import job_database, job_workload
    from repro.workloads.production import PRODUCTS, build_product
    from repro.workloads.starjoin import starjoin_database, starjoin_workload
    from repro.workloads.tpch import tpch_database, tpch_workload
    from repro.workloads.tpcds import tpcds_database, tpcds_workload

    product = build_product(PRODUCTS["F"])
    return [
        ("tpch", tpch_database(0.1), tpch_workload()),
        ("tpch-seeded", tpch_database(0.1), tpch_workload(seed=3)),
        ("job", job_database(), job_workload()),
        ("tpcds", tpcds_database(0.1), tpcds_workload()),
        ("starjoin", starjoin_database(), starjoin_workload()),
        ("product-F", product.db, product.workload),
    ]


@pytest.fixture(scope="module")
def corpus():
    return all_corpus_workloads()


def test_corpus_parses_and_roundtrips(corpus):
    checked = 0
    for _name, _db, workload in corpus:
        for query in workload:
            stmt = parse(query.sql)
            rendered = stmt.to_sql()
            assert parse(rendered).to_sql() == rendered, query.sql
            checked += 1
    assert checked > 130


def test_corpus_normalization_stable(corpus):
    for _name, _db, workload in corpus:
        for query in workload:
            normalized = normalize_sql(query.sql)
            assert normalize_sql(normalized) == normalized


def test_corpus_analyzes_against_schema(corpus):
    for name, db, workload in corpus:
        for query in workload:
            info = analyze_query(parse(query.sql), db.schema)
            assert info.bindings, f"{name}: {query.sql[:60]}"
            for binding, table in info.bindings.items():
                assert db.schema.table(table)
            # Every referenced column exists.
            for binding, columns in info.referenced.items():
                table = db.schema.table(info.bindings[binding])
                for column in columns:
                    assert table.has_column(column), (
                        f"{name}: {binding}.{column}"
                    )


def test_corpus_seeded_tpch_differs_from_default(corpus):
    default = next(w for n, _d, w in corpus if n == "tpch")
    seeded = next(w for n, _d, w in corpus if n == "tpch-seeded")
    assert [q.sql for q in default] != [q.sql for q in seeded]
    # ... but the normalized forms mostly coincide (same structures).
    same = sum(
        1
        for a, b in zip(default, seeded)
        if normalize_sql(a.sql) == normalize_sql(b.sql)
    )
    assert same >= len(default) * 0.8
