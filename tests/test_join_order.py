"""Join order planning tests."""

import pytest

from repro.catalog import Index
from repro.optimizer import Optimizer
from repro.sqlparser import parse


def plan(db, sql, extra=()):
    return Optimizer(db).explain(sql, extra_indexes=list(extra))


def test_single_table_plan_shape(db):
    p = plan(db, "SELECT name FROM users WHERE city = 'c1'")
    assert len(p.steps) == 1
    assert p.steps[0].join_method == "drive"
    assert p.total_cost > 0


def test_selective_table_drives_join(db):
    # users filtered to ~1 city (50 rows); orders unfiltered (3000 rows).
    p = plan(
        db,
        "SELECT u.name, o.amount FROM users u, orders o "
        "WHERE u.id = o.user_id AND u.city = 'c1'",
    )
    assert p.steps[0].path.binding == "u"


def test_straight_join_fixes_order(db):
    p = plan(
        db,
        "SELECT o.amount FROM orders o STRAIGHT_JOIN users u ON u.id = o.user_id",
    )
    assert p.steps[0].path.binding == "o"


def test_nlj_uses_inner_index_via_pk(db):
    p = plan(
        db,
        "SELECT u.name, o.amount FROM orders o, users u "
        "WHERE u.id = o.user_id AND o.amount < 5",
    )
    nlj_steps = [s for s in p.steps if s.join_method == "nlj"]
    if nlj_steps:
        assert nlj_steps[0].path.method in ("pk", "index")


def test_join_cardinality_reasonable(db, user_rows, order_rows):
    p = plan(
        db,
        "SELECT u.name, o.amount FROM users u, orders o WHERE u.id = o.user_id",
    )
    # Every order matches exactly one user: ~3000 rows out.
    assert p.rows_out == pytest.approx(3000, rel=0.5)


def test_extra_join_index_lowers_cost(db):
    sql = (
        "SELECT u.name, o.amount FROM users u, orders o "
        "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'"
    )
    base = plan(db, sql).total_cost
    improved = plan(db, sql, [Index("orders", ("user_id", "status"), dataless=True)])
    assert improved.total_cost <= base


def test_sort_elision_with_interesting_order(db):
    idx = Index("users", ("age",), dataless=True)
    with_idx = plan(db, "SELECT age FROM users ORDER BY age LIMIT 5", [idx])
    without = plan(db, "SELECT age FROM users ORDER BY age LIMIT 5")
    assert with_idx.sort_rows == 0
    assert without.sort_rows > 0
    assert with_idx.total_cost < without.total_cost


def test_group_by_cardinality(db):
    p = plan(db, "SELECT status, COUNT(*) FROM orders GROUP BY status")
    assert p.rows_out <= 5


def test_having_reduces_rows(db):
    base = plan(db, "SELECT status, COUNT(*) FROM orders GROUP BY status")
    having = plan(
        db,
        "SELECT status, COUNT(*) FROM orders GROUP BY status HAVING COUNT(*) > 10",
    )
    assert having.rows_out < base.rows_out


def test_limit_caps_rows_out(db):
    p = plan(db, "SELECT name FROM users LIMIT 7")
    assert p.rows_out == 7


def test_io_savings_attribution(db):
    idx = Index("users", ("city", "name"), dataless=True)
    p = plan(db, "SELECT name FROM users WHERE city = 'c1'", [idx])
    if p.uses_index(idx):
        savings = p.io_savings()
        assert savings[idx.name] > 0


def test_plan_describe_mentions_steps(db):
    p = plan(db, "SELECT u.name FROM users u, orders o WHERE u.id = o.user_id")
    text = p.describe()
    assert "->" in text and "total=" in text


def test_cross_product_without_edges_planned(db):
    p = plan(db, "SELECT u.name FROM users u, orders o WHERE u.city = 'c1' AND o.amount = 5")
    assert len(p.steps) == 2
    assert p.total_cost > 0


def test_many_table_greedy_fallback():
    """> DP_LIMIT tables still plan (greedy)."""
    from repro.catalog import Column, INT, Table
    from repro.engine import Database

    tables = []
    for i in range(12):
        cols = [Column("id", INT), Column("v", INT)]
        if i > 0:
            cols.append(Column(f"t{i-1}_id", INT))
        tables.append(Table(f"t{i}", cols, ("id",)))
    db12 = Database.from_tables(tables, with_storage=False)
    from repro.stats import SyntheticColumn, synthesize_table

    for i in range(12):
        spec = {"id": SyntheticColumn(ndv=-1, lo=1, hi=1000), "v": SyntheticColumn(ndv=10)}
        if i > 0:
            spec[f"t{i-1}_id"] = SyntheticColumn(ndv=1000, lo=1, hi=1000)
        db12.set_stats(f"t{i}", synthesize_table(1000, spec))
    froms = ", ".join(f"t{i}" for i in range(12))
    conds = " AND ".join(f"t{i}.t{i-1}_id = t{i-1}.id" for i in range(1, 12))
    p = Optimizer(db12).explain(f"SELECT t0.v FROM {froms} WHERE {conds}")
    assert len(p.steps) == 12
