"""SortedIndex (B-tree emulation) tests."""

from repro.engine.btree import SortedIndex, wrap_key


def build(entries):
    idx = SortedIndex(2)
    for key, rid in entries:
        idx.insert(key, rid)
    return idx


def test_insert_and_len():
    idx = build([((1, "a"), 0), ((2, "b"), 1)])
    assert len(idx) == 2


def test_delete_existing_and_missing():
    idx = build([((1, "a"), 0)])
    assert idx.delete((1, "a"), 0) is True
    assert idx.delete((1, "a"), 0) is False
    assert len(idx) == 0


def test_scan_all_in_key_order():
    idx = build([((3,), 0), ((1,), 1), ((2,), 2)])
    rids = [rid for _k, rid in idx.scan_all()]
    assert rids == [1, 2, 0]


def test_scan_all_reverse():
    idx = build([((1,), 1), ((2,), 2)])
    rids = [rid for _k, rid in idx.scan_all(reverse=True)]
    assert rids == [2, 1]


def test_scan_prefix_equality():
    idx = build([((1, 10), 0), ((1, 20), 1), ((2, 10), 2)])
    rids = [rid for _k, rid in idx.scan_prefix((1,))]
    assert rids == [0, 1]


def test_scan_prefix_with_range_bounds():
    idx = build([((1, i), i) for i in range(10)])
    rids = [rid for _k, rid in idx.scan_prefix((1,), low=3, high=6)]
    assert rids == [3, 4, 5, 6]
    rids = [
        rid for _k, rid in idx.scan_prefix(
            (1,), low=3, high=6, low_inclusive=False, high_inclusive=False
        )
    ]
    assert rids == [4, 5]


def test_scan_open_low_bound():
    idx = build([((1, i), i) for i in range(5)])
    rids = [rid for _k, rid in idx.scan_prefix((1,), high=2)]
    assert rids == [0, 1, 2]


def test_nulls_sort_first():
    idx = build([((None,), 0), ((1,), 1), (("x",), 2)])
    rids = [rid for _k, rid in idx.scan_all()]
    assert rids == [0, 1, 2]   # NULL < number < string


def test_duplicate_keys_tie_break_by_rowid():
    idx = build([((1,), 5), ((1,), 2), ((1,), 9)])
    rids = [rid for _k, rid in idx.scan_prefix((1,))]
    assert rids == [2, 5, 9]


def test_wrap_key_equality_and_ordering():
    assert wrap_key((1, "a")) == wrap_key((1, "a"))
    assert wrap_key((None,)) < wrap_key((0,))
    assert wrap_key((0,)) < wrap_key(("",))
    assert wrap_key((True,)) == wrap_key((1,))


def test_clear():
    idx = build([((1,), 0)])
    idx.clear()
    assert len(idx) == 0
