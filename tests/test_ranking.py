"""Ranking (Eq. 7 / Eq. 8) and knapsack tests."""

import pytest

from repro.catalog import Index
from repro.core import (
    CandidateGenerator,
    GeneratorConfig,
    MODE_NON_COVERING,
    knapsack_exact,
    knapsack_select,
    rank_candidates,
)
from repro.core.ranking import RankedCandidate
from repro.optimizer import CostEvaluator
from repro.workload import Workload


def build_candidates(db, workload):
    ev = CostEvaluator(db)
    gen = CandidateGenerator(db.schema, db.stats, GeneratorConfig())
    queries = [
        (q.normalized_sql, ev.analyze(q.sql), MODE_NON_COVERING)
        for q in workload
        if not q.is_dml
    ]
    return ev, gen.generate(queries)


def test_useful_candidate_gets_positive_benefit(db):
    w = Workload.from_sql([("SELECT amount FROM orders WHERE created < 10000", 10.0)])
    ev, cs = build_candidates(db, w)
    ranked = rank_candidates(ev, db, w, cs)
    useful = [c for c in ranked if "created" in c.index.columns]
    assert useful and useful[0].benefit > 0
    assert useful[0].size_bytes > 0


def test_gain_scales_with_weight(db):
    sql = "SELECT amount FROM orders WHERE created < 10000"
    w1 = Workload.from_sql([(sql, 1.0)])
    w10 = Workload.from_sql([(sql, 10.0)])
    ev1, cs1 = build_candidates(db, w1)
    ev10, cs10 = build_candidates(db, w10)
    top1 = rank_candidates(ev1, db, w1, cs1)[0]
    top10 = rank_candidates(ev10, db, w10, cs10)[0]
    assert top10.benefit == pytest.approx(10 * top1.benefit, rel=0.01)


def test_dml_charges_maintenance(db):
    w = Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 5.0),
        ("INSERT INTO orders (oid, user_id, amount, status, created) "
         "VALUES (99999, 1, 2, 'new', 3)", 100.0),
    ])
    ev, cs = build_candidates(db, w)
    ranked = rank_candidates(ev, db, w, cs)
    orders_candidates = [c for c in ranked if c.index.table == "orders"]
    assert all(c.maintenance > 0 for c in orders_candidates)


def test_utility_is_benefit_minus_maintenance():
    c = RankedCandidate(index=Index("t", ("a",)), benefit=10.0, maintenance=3.0,
                        size_bytes=100)
    assert c.utility == pytest.approx(7.0)
    assert c.density == pytest.approx(0.07)


def test_knapsack_respects_budget():
    candidates = [
        RankedCandidate(Index("t", (f"c{i}",)), benefit=10.0 - i,
                        size_bytes=100)
        for i in range(5)
    ]
    chosen = knapsack_select(candidates, budget_bytes=250)
    assert len(chosen) == 2
    assert sum(c.size_bytes for c in chosen) <= 250


def test_knapsack_orders_by_density():
    dense = RankedCandidate(Index("t", ("a",)), benefit=10.0, size_bytes=10)
    sparse = RankedCandidate(Index("t", ("b",)), benefit=100.0, size_bytes=10_000)
    chosen = knapsack_select([sparse, dense], budget_bytes=50)
    assert [c.index.name for c in chosen] == ["idx_t_a"]


def test_knapsack_skips_non_positive_utility():
    bad = RankedCandidate(Index("t", ("a",)), benefit=1.0, maintenance=5.0,
                          size_bytes=10)
    assert knapsack_select([bad], budget_bytes=1000) == []


def test_knapsack_prunes_prefix_redundancy():
    wide = RankedCandidate(Index("t", ("a", "b")), benefit=50.0, size_bytes=20)
    narrow = RankedCandidate(Index("t", ("a",)), benefit=10.0, size_bytes=10)
    chosen = knapsack_select([wide, narrow], budget_bytes=100)
    assert [c.index.name for c in chosen] == ["idx_t_a_b"]
    both = knapsack_select([wide, narrow], budget_bytes=100, prune_prefixes=False)
    assert len(both) == 2


def test_knapsack_exact_beats_greedy_on_adversarial_instance():
    # Greedy-by-density picks the 60-byte item; exact packs the two 50s.
    a = RankedCandidate(Index("t", ("a",)), benefit=61.0, size_bytes=60)
    b = RankedCandidate(Index("t", ("b",)), benefit=50.0, size_bytes=50)
    c = RankedCandidate(Index("t", ("c",)), benefit=50.0, size_bytes=50)
    exact = knapsack_exact([a, b, c], budget_bytes=100, granularity=10)
    assert sum(x.benefit for x in exact) == pytest.approx(100.0)


def test_knapsack_exact_respects_budget():
    items = [
        RankedCandidate(Index("t", (f"c{i}",)), benefit=float(i + 1),
                        size_bytes=(i + 1) * 1000)
        for i in range(6)
    ]
    chosen = knapsack_exact(items, budget_bytes=5000, granularity=1000)
    assert sum(c.size_bytes for c in chosen) <= 5000
