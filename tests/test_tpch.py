"""TPC-H workload package tests."""

import pytest

from repro.executor import Executor
from repro.optimizer import CostEvaluator
from repro.sqlparser import parse
from repro.workloads.tpch import (
    day,
    load_tpch,
    row_counts,
    tpch_database,
    tpch_workload,
)


@pytest.fixture(scope="module")
def db10():
    return tpch_database(scale_factor=10)


@pytest.fixture(scope="module")
def tiny():
    return load_tpch(scale_factor=0.002, seed=1)


def test_row_counts_scale():
    sf1 = row_counts(1)
    sf10 = row_counts(10)
    assert sf1["lineitem"] == 6_000_000
    assert sf10["lineitem"] == 60_000_000
    assert sf10["nation"] == 25   # fixed tables don't scale


def test_day_helper():
    assert day(1992, 1, 1) == 0
    assert day(1993, 1, 1) == 366   # 1992 is a leap year


def test_schema_has_eight_tables(db10):
    assert len(db10.schema.tables) == 8
    assert db10.stats.row_count("lineitem") == 60_000_000


def test_all_22_queries_parse_and_plan(db10):
    workload = tpch_workload()
    assert len(workload) == 22
    evaluator = CostEvaluator(db10)
    for query in workload:
        parse(query.sql)
        cost = evaluator.cost(query.sql)
        assert cost > 0, query.name


def test_seeded_instantiation_is_deterministic():
    a = tpch_workload(seed=5)
    b = tpch_workload(seed=5)
    c = tpch_workload(seed=6)
    assert [q.sql for q in a] == [q.sql for q in b]
    assert [q.sql for q in a] != [q.sql for q in c]


def test_queries_named_q1_to_q22():
    names = [q.name for q in tpch_workload()]
    assert names == [f"Q{i}" for i in range(1, 23)]


def test_datagen_loads_and_analyzes(tiny):
    assert tiny.storage["lineitem"].row_count == row_counts(0.002)["lineitem"]
    assert tiny.stats.row_count("orders") > 0
    assert tiny.stats.table("lineitem").column("l_shipmode").ndv == 7


def test_queries_execute_on_generated_data(tiny):
    executor = Executor(tiny)
    workload = tpch_workload()
    # Executable spot checks across shapes: scan+group, join, DNF monster.
    for name in ("Q1", "Q6", "Q12", "Q19"):
        query = workload.by_name(name)
        result = executor.execute(query.sql)
        assert result.metrics.rows_read > 0, name


def test_q1_aggregation_is_correct(tiny):
    executor = Executor(tiny)
    q1 = tpch_workload().by_name("Q1")
    result = executor.execute(q1.sql)
    cutoff = day(1998, 12, 1) - 90
    rows = [
        r for r in tiny.storage["lineitem"].rows.values()
        if r["l_shipdate"] <= cutoff
    ]
    expected_groups = {(r["l_returnflag"], r["l_linestatus"]) for r in rows}
    assert {(row[0], row[1]) for row in result.rows} == expected_groups
    total_count = sum(row[8] for row in result.rows)
    assert total_count == len(rows)


def test_advisor_runs_on_tpch(db10):
    from repro.baselines import AimAlgorithm

    result = AimAlgorithm(db10).select(tpch_workload(), 15 << 30)
    assert result.relative_cost < 0.95
    assert result.total_size_bytes <= 15 << 30
    assert result.runtime_seconds < 30
