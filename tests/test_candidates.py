"""Candidate generation tests (paper Sec. IV, Algorithms 2-7)."""

import pytest

from repro.catalog import Column, INT, Schema, Table, varchar
from repro.core import (
    CandidateGenerator,
    GeneratorConfig,
    MODE_COVERING,
    MODE_NON_COVERING,
    PartialOrder,
    joined_tables_powerset,
)
from repro.optimizer import analyze_query
from repro.sqlparser import parse
from repro.stats import StatsCatalog, SyntheticColumn, synthesize_table


@pytest.fixture(scope="module")
def t1_schema():
    """The paper's running example: table t1 with col1..col5."""
    table = Table(
        "t1",
        [Column("id", INT)] + [Column(f"col{i}", INT) for i in range(1, 6)],
        ("id",),
    )
    return Schema.from_tables([table])


@pytest.fixture(scope="module")
def t1_stats():
    stats = StatsCatalog()
    spec = {"id": SyntheticColumn(ndv=-1, lo=1, hi=10_000)}
    for i in range(1, 6):
        spec[f"col{i}"] = SyntheticColumn(ndv=100 * i, lo=0, hi=1000)
    stats.set_table("t1", synthesize_table(10_000, spec))
    return stats


def generator(schema, stats, **kwargs):
    return CandidateGenerator(schema, stats, GeneratorConfig(**kwargs))


def gen_orders(schema, stats, sql, mode=MODE_NON_COVERING, **kwargs):
    info = analyze_query(parse(sql), schema)
    return generator(schema, stats, **kwargs).generate_for_query(info, mode)


def test_projection_example_q1(t1_schema, t1_stats):
    """Sec. IV-A Q1: covering mode yields <{col5}, {col2, col3}>."""
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT col2, col3 FROM t1 WHERE col5 < 2",
        mode=MODE_COVERING,
    )
    assert PartialOrder.build("t1", [["col5"], ["col2", "col3"]]) in orders


def test_selection_example_e1(t1_schema, t1_stats):
    """Sec. IV-B: col1 = ? AND col2 = ? AND col3 = ? -> <{col1,col2,col3}>."""
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT id FROM t1 WHERE col1 = 1 AND col2 = 2 AND col3 = 3",
    )
    assert PartialOrder.build("t1", [["col1", "col2", "col3"]]) in orders


def test_selection_example_e3(t1_schema, t1_stats):
    """E3: eq on col1,col2 + ranges on col3,col4 -> <{col1,col2},{range}>
    with ONE range column chosen via Algorithm 5."""
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT id FROM t1 WHERE col1 = 5 AND col2 = 6 AND col3 > 5 AND col4 < 2",
    )
    matching = [
        po for po in orders
        if po.partitions and po.partitions[0] == frozenset({"col1", "col2"})
    ]
    assert matching
    two_part = [po for po in matching if len(po.partitions) == 2]
    assert two_part and all(len(po.partitions[1]) == 1 for po in two_part)
    assert all(
        next(iter(po.partitions[1])) in ("col3", "col4") for po in two_part
    )


def test_group_by_example_q3(t1_schema, t1_stats):
    """Q3: GROUP BY col3 -> <{col3}> in non-covering mode."""
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT col3, COUNT(*) FROM t1 GROUP BY col3",
    )
    assert PartialOrder.build("t1", [["col3"]]) in orders


def test_group_by_example_q4_covering(t1_schema, t1_stats):
    """Q4: covering grouping index <{col2}, {col3}, {col1}> (Sec. IV-D)."""
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT col3, SUM(col1) FROM t1 WHERE col2 = 5 GROUP BY col3",
        mode=MODE_COVERING,
    )
    assert PartialOrder.build("t1", [["col2"], ["col3"], ["col1"]]) in orders


def test_order_by_non_covering(t1_schema, t1_stats):
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT id FROM t1 WHERE col2 IN (1, 2) ORDER BY col3 LIMIT 5",
    )
    assert PartialOrder.chain("t1", ["col3"]) in orders


def test_order_by_covering_puts_ipp_first(t1_schema, t1_stats):
    orders = gen_orders(
        t1_schema, t1_stats,
        "SELECT col4 FROM t1 WHERE col2 = 1 ORDER BY col3 LIMIT 5",
        mode=MODE_COVERING,
    )
    expected = PartialOrder.build("t1", [["col2"], ["col3"], ["col4"]])
    assert expected in orders


def test_pk_prefix_candidates_pruned(t1_schema, t1_stats):
    orders = gen_orders(t1_schema, t1_stats, "SELECT col1 FROM t1 WHERE id = 5")
    assert PartialOrder.build("t1", [["id"]]) not in orders


def test_joined_tables_powerset_bounds(db):
    info = analyze_query(
        parse(
            "SELECT u.name FROM users u, orders o WHERE u.id = o.user_id"
        ),
        db.schema,
    )
    subsets = joined_tables_powerset(info, "o", 1)
    assert frozenset() in subsets
    assert frozenset({"u"}) in subsets
    # j = 0 degrades to the empty set only.
    assert joined_tables_powerset(info, "o", 0) == [frozenset()]


def test_join_candidates_include_join_column(db, order_rows):
    schema, stats = db.schema, db.stats
    orders = gen_orders(
        schema, stats,
        "SELECT u.name FROM users u, orders o "
        "WHERE u.id = o.user_id AND o.status = 'paid'",
        join_parameter=1,
    )
    by_table = {po for po in orders if po.table == "orders"}
    assert any("user_id" in po.columns and "status" in po.columns for po in by_table)
    assert any(po.columns == {"status"} for po in by_table)


def test_width_cap_truncates(t1_schema, t1_stats):
    info = analyze_query(
        parse(
            "SELECT col4, col5 FROM t1 "
            "WHERE col1 = 1 AND col2 = 2 AND col3 = 3"
        ),
        t1_schema,
    )
    gen = generator(t1_schema, t1_stats, max_index_width=2)
    cs = gen.generate([("q", info, MODE_COVERING)])
    assert cs.indexes
    assert all(idx.width <= 2 for idx in cs.indexes)


def test_generate_merges_and_attributes(t1_schema, t1_stats):
    sql_a = "SELECT id FROM t1 WHERE col1 = 1 AND col2 = 2 AND col3 = 3"
    sql_b = "SELECT id FROM t1 WHERE col2 = 2 AND col3 = 3"
    gen = generator(t1_schema, t1_stats)
    queries = [
        ("a", analyze_query(parse(sql_a), t1_schema), MODE_NON_COVERING),
        ("b", analyze_query(parse(sql_b), t1_schema), MODE_NON_COVERING),
    ]
    cs = gen.generate(queries)
    # The merged order exists in the fixpoint (its concrete index may
    # deduplicate with the unmerged order's linearization).
    from repro.core import merge_by_table

    merged = PartialOrder.build("t1", [["col2", "col3"], ["col1"]])
    source_orders = {
        PartialOrder.build("t1", [["col1", "col2", "col3"]]),
        PartialOrder.build("t1", [["col2", "col3"]]),
    }
    assert merged in merge_by_table(source_orders)
    merged_index = next(
        idx for idx in cs.indexes
        if set(idx.columns) == {"col1", "col2", "col3"}
        and set(idx.columns[:2]) == {"col2", "col3"}
    )
    # The merged index serves BOTH queries.
    assert merged_index in cs.attribution["a"]
    assert merged_index in cs.attribution["b"]


def test_merge_disabled_keeps_originals_only(t1_schema, t1_stats):
    sql_a = "SELECT id FROM t1 WHERE col1 = 1 AND col2 = 2 AND col3 = 3"
    sql_b = "SELECT id FROM t1 WHERE col2 = 2 AND col3 = 3"
    gen = generator(t1_schema, t1_stats, merge_orders=False)
    queries = [
        ("a", analyze_query(parse(sql_a), t1_schema), MODE_NON_COVERING),
        ("b", analyze_query(parse(sql_b), t1_schema), MODE_NON_COVERING),
    ]
    cs = gen.generate(queries)
    merged = PartialOrder.build("t1", [["col2", "col3"], ["col1"]])
    assert merged not in cs.orders


def test_index_linearization_most_selective_first(t1_schema, t1_stats):
    gen = generator(t1_schema, t1_stats)
    po = PartialOrder.build("t1", [["col1", "col5"]])
    index = gen.index_for_order(po)
    # col5 has ndv 500 > col1's 100: most selective first.
    assert index.columns == ("col5", "col1")


def test_candidates_are_dataless(t1_schema, t1_stats):
    orders = gen_orders(
        t1_schema, t1_stats, "SELECT id FROM t1 WHERE col1 = 1"
    )
    gen = generator(t1_schema, t1_stats)
    for po in orders:
        idx = gen.index_for_order(po)
        if idx is not None:
            assert idx.dataless
