"""Selectivity estimation tests."""

import pytest

from repro.optimizer.selectivity import (
    UNKNOWN_SELECTIVITY,
    atomic_selectivity,
    combined_range_selectivity,
    constant_value,
    expr_selectivity,
)
from repro.sqlparser import classify_atomic, parse_select
from repro.stats import ColumnStats, analyze_column


def atom(condition: str):
    stmt = parse_select(f"SELECT a FROM t WHERE {condition}")
    pred = classify_atomic(stmt.where)
    assert pred is not None
    return pred


def atoms(condition: str):
    from repro.sqlparser import split_conjuncts

    stmt = parse_select(f"SELECT a FROM t WHERE {condition}")
    return [classify_atomic(c) for c in split_conjuncts(stmt.where)]


UNIFORM = analyze_column(list(range(1000)))


def test_constant_value_literals_and_arith():
    stmt = parse_select("SELECT a FROM t WHERE x > 5 + 3 * 2")
    assert constant_value(stmt.where.right) == 11
    stmt2 = parse_select("SELECT a FROM t WHERE x > y")
    assert constant_value(stmt2.where.right) is None
    stmt3 = parse_select("SELECT a FROM t WHERE x > 1 / 0")
    assert constant_value(stmt3.where.right) is None


def test_eq_selectivity_with_and_without_value():
    stats = ColumnStats(ndv=200)
    assert atomic_selectivity(atom("x = 5"), stats) == pytest.approx(1 / 200)
    assert atomic_selectivity(atom("x = ?"), stats) == pytest.approx(1 / 200)


def test_range_selectivity_uses_histogram():
    sel = atomic_selectivity(atom("x > 900"), UNIFORM)
    assert sel == pytest.approx(0.1, abs=0.03)
    sel_le = atomic_selectivity(atom("x <= 100"), UNIFORM)
    assert sel_le == pytest.approx(0.1, abs=0.03)


def test_between_selectivity():
    sel = atomic_selectivity(atom("x BETWEEN 100 AND 299"), UNIFORM)
    assert sel == pytest.approx(0.2, abs=0.03)


def test_in_and_not_in():
    stats = ColumnStats(ndv=100)
    assert atomic_selectivity(atom("x IN (1, 2, 3)"), stats) == pytest.approx(0.03, abs=0.02)
    assert atomic_selectivity(atom("x NOT IN (1, 2, 3)"), stats) > 0.9


def test_is_null_variants():
    stats = analyze_column([None] * 30 + list(range(70)))
    assert atomic_selectivity(atom("x IS NULL"), stats) == pytest.approx(0.3)
    assert atomic_selectivity(atom("x IS NOT NULL"), stats) == pytest.approx(0.7)


def test_like_and_not_like():
    stats = ColumnStats(ndv=100)
    like = atomic_selectivity(atom("x LIKE 'abc%'"), stats)
    assert 0 < like < 0.25
    not_like = atomic_selectivity(atom("x NOT LIKE 'abc%'"), stats)
    assert not_like == pytest.approx(1 - like, abs=0.01)


def test_bang_equal():
    stats = ColumnStats(ndv=100)
    assert atomic_selectivity(atom("x != 5"), stats) == pytest.approx(0.99)


def test_combined_range_is_interval_not_product():
    """`x >= 400 AND x < 500` must estimate the 10% interval."""
    preds = atoms("x >= 400 AND x < 500")
    sel = combined_range_selectivity(preds, UNIFORM)
    assert sel == pytest.approx(0.1, abs=0.03)


def test_combined_range_tightest_bounds_win():
    preds = atoms("x > 100 AND x > 400 AND x < 500 AND x <= 900")
    sel = combined_range_selectivity(preds, UNIFORM)
    assert sel == pytest.approx(0.1, abs=0.03)


def test_combined_range_between_intersects():
    preds = atoms("x BETWEEN 0 AND 999 AND x >= 900")
    sel = combined_range_selectivity(preds, UNIFORM)
    assert sel == pytest.approx(0.1, abs=0.03)


def test_combined_range_unknown_params():
    preds = atoms("x > ? AND x < ?")
    sel = combined_range_selectivity(preds, UNIFORM)
    assert 0 < sel < 1


def test_expr_selectivity_and_or_not():
    lookup = lambda ref: ColumnStats(ndv=10)
    stmt = parse_select("SELECT a FROM t WHERE x = 1 AND y = 2")
    assert expr_selectivity(stmt.where, lookup) == pytest.approx(0.01)
    stmt2 = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2")
    assert expr_selectivity(stmt2.where, lookup) == pytest.approx(0.19)
    stmt3 = parse_select("SELECT a FROM t WHERE NOT x = 1")
    assert expr_selectivity(stmt3.where, lookup) == pytest.approx(0.9)


def test_expr_selectivity_unknown_forms():
    lookup = lambda ref: ColumnStats(ndv=10)
    stmt = parse_select("SELECT a FROM t WHERE x = y")
    assert expr_selectivity(stmt.where, lookup) == UNKNOWN_SELECTIVITY
    assert expr_selectivity(None, lookup) == 1.0


def test_selectivities_always_in_unit_interval():
    stats = analyze_column([1] * 999 + [2])
    for cond in ("x = 1", "x > 0", "x < 5", "x IN (1, 2)", "x != 1"):
        sel = atomic_selectivity(atom(cond), stats)
        assert 0 <= sel <= 1
