"""Property-based tests (hypothesis) for core invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Index
from repro.core import PartialOrder, merge_candidates_pairwise, merge_partial_orders
from repro.core.knapsack import knapsack_exact, knapsack_select
from repro.core.ranking import RankedCandidate
from repro.engine.btree import SortedIndex, wrap_key
from repro.sqlparser import normalize_sql, parse
from repro.stats import ColumnStats, Histogram, analyze_column

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

column_names = st.sampled_from([f"c{i}" for i in range(6)])


@st.composite
def partial_orders(draw, table="t"):
    columns = draw(
        st.lists(column_names, min_size=1, max_size=5, unique=True)
    )
    partitions = []
    remaining = list(columns)
    while remaining:
        size = draw(st.integers(1, len(remaining)))
        partitions.append(remaining[:size])
        remaining = remaining[size:]
    return PartialOrder.build(table, partitions)


values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.ascii_lowercase, max_size=6),
    st.none(),
)


# ---------------------------------------------------------------------------
# partial orders & merging
# ---------------------------------------------------------------------------


@given(partial_orders())
def test_linearize_satisfies_own_order(po):
    assert po.satisfied_by(po.linearize())


@given(partial_orders())
def test_total_orders_all_satisfy(po):
    count = 0
    for total in po.total_orders():
        assert po.satisfied_by(total)
        count += 1
        if count > 50:
            break


@given(partial_orders(), partial_orders())
def test_merge_result_serves_p_as_prefix(p, q):
    """Whenever a merge succeeds, every linear extension of the result
    starts with a valid linear extension of P and extends Q."""
    merged = merge_candidates_pairwise(p, q)
    if merged is None:
        return
    assert merged.columns == q.columns
    total = merged.linearize()
    prefix = total[: p.width]
    assert set(prefix) == set(p.columns)
    assert p.satisfied_by(prefix)
    assert q.satisfied_by(total)


@given(st.lists(partial_orders(), min_size=1, max_size=5))
@settings(deadline=None)
def test_merge_fixpoint_contains_inputs(orders):
    result = merge_partial_orders(set(orders), max_orders=128)
    assert set(orders) <= result


@given(partial_orders())
def test_self_merge_identity(po):
    assert merge_candidates_pairwise(po, po) == po


# ---------------------------------------------------------------------------
# sorted index vs model
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 100)),
        max_size=60,
    )
)
def test_sorted_index_matches_sorted_list_model(entries):
    index = SortedIndex(1)
    model = []
    for key, rid in entries:
        index.insert((key,), rid)
        model.append(((key,), rid))
    model.sort(key=lambda e: (wrap_key(e[0]), e[1]))
    assert [rid for _k, rid in index.scan_all()] == [rid for _k, rid in model]


@given(
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 50)), max_size=40),
    st.integers(0, 10),
    st.integers(0, 10),
)
def test_sorted_index_range_scan_model(entries, low, high):
    if low > high:
        low, high = high, low
    index = SortedIndex(1)
    for key, rid in entries:
        index.insert((key,), rid)
    got = sorted(rid for _k, rid in index.scan_prefix((), low=low, high=high))
    expected = sorted(rid for key, rid in entries if low <= key <= high)
    assert got == expected


# ---------------------------------------------------------------------------
# parser / normalizer
# ---------------------------------------------------------------------------

sql_statements = st.sampled_from([
    "SELECT a FROM t WHERE x = 5",
    "SELECT a, b FROM t WHERE x IN (1, 2, 3) AND y > 1.5",
    "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
    "SELECT t1.a FROM t1, t2 WHERE t1.id = t2.id ORDER BY t1.a DESC LIMIT 3",
    "UPDATE t SET a = 5 WHERE b BETWEEN 1 AND 2",
    "DELETE FROM t WHERE a LIKE 'x%'",
    "INSERT INTO t (a, b) VALUES (1, 'two')",
])


@given(sql_statements)
def test_to_sql_roundtrip_is_stable(sql):
    once = parse(sql).to_sql()
    twice = parse(once).to_sql()
    assert once == twice


@given(sql_statements)
def test_normalization_idempotent(sql):
    once = normalize_sql(sql)
    assert normalize_sql(once) == once


@given(st.integers(-100, 100), st.integers(1, 50))
def test_normalization_erases_constants(value, limit):
    a = normalize_sql(f"SELECT a FROM t WHERE x = {value} LIMIT {limit}")
    b = normalize_sql("SELECT a FROM t WHERE x = 0 LIMIT 1")
    assert a == b


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


@given(st.lists(st.one_of(st.integers(-50, 50), st.none()), max_size=200))
def test_analyze_column_invariants(values_list):
    stats = analyze_column(values_list)
    assert stats.ndv >= 1
    assert 0.0 <= stats.null_frac <= 1.0
    assert 0.0 <= stats.eq_selectivity() <= 1.0
    assert 0.0 <= stats.is_null_selectivity() <= 1.0


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=300), st.integers(0, 1000))
def test_histogram_fraction_below_is_monotone_and_bounded(values_list, probe):
    hist = Histogram.from_values(values_list)
    frac = hist.fraction_below(probe)
    assert 0.0 <= frac <= 1.0
    assert frac <= hist.fraction_below(probe, inclusive=True)


@given(
    st.lists(st.integers(0, 1000), min_size=1, max_size=200),
    st.integers(0, 1000),
    st.integers(0, 1000),
)
def test_histogram_between_consistent(values_list, a, b):
    low, high = min(a, b), max(a, b)
    hist = Histogram.from_values(values_list)
    frac = hist.fraction_between(low, high)
    assert 0.0 <= frac <= 1.0


# ---------------------------------------------------------------------------
# knapsack
# ---------------------------------------------------------------------------

candidates_strategy = st.lists(
    st.tuples(
        st.integers(0, 9),                       # column id
        st.floats(-10, 1000),                    # utility ~ benefit
        st.integers(1, 1_000_000),               # size
    ),
    max_size=12,
)


@given(candidates_strategy, st.integers(0, 2_000_000))
def test_knapsack_never_exceeds_budget(items, budget):
    candidates = [
        RankedCandidate(Index("t", (f"c{i}", f"d{n}")), benefit=b, size_bytes=s)
        for n, (i, b, s) in enumerate(items)
    ]
    chosen = knapsack_select(candidates, budget)
    assert sum(c.size_bytes for c in chosen) <= budget
    assert all(c.utility > 0 for c in chosen)


small_candidates = st.lists(
    st.tuples(st.integers(0, 9), st.floats(-10, 1000), st.integers(1, 2000)),
    max_size=10,
)


@given(small_candidates, st.integers(1, 5000))
def test_exact_knapsack_at_least_matches_greedy(items, budget):
    candidates = [
        RankedCandidate(Index("t", (f"c{i}", f"d{n}")), benefit=b, size_bytes=s)
        for n, (i, b, s) in enumerate(items)
    ]
    greedy = knapsack_select(candidates, budget, prune_prefixes=False)
    exact = knapsack_exact(candidates, budget, granularity=1)
    assert sum(c.size_bytes for c in exact) <= budget
    greedy_value = sum(c.utility for c in greedy)
    exact_value = sum(c.utility for c in exact)
    assert exact_value >= greedy_value - 1e-6


# ---------------------------------------------------------------------------
# selectivity estimation (driven by the seeded repro.qa generator)
# ---------------------------------------------------------------------------

from repro.optimizer.selectivity import MIN_SELECTIVITY, expr_selectivity
from repro.qa import GenConfig, ReferenceDatabase, generate_case
from repro.sqlparser import ast as _ast

_EPS = 1e-9


def _where_clauses(case):
    """(where-expr, stats-lookup) pairs for every generated SELECT."""
    from repro.sqlparser import parse

    db = case.database()
    reference = ReferenceDatabase(case.tables, case.rows)
    pairs = []
    for sql in case.statements:
        stmt = parse(sql)
        if not isinstance(stmt, _ast.Select) or stmt.where is None:
            continue
        bindings = {ref.binding: ref.name for ref in stmt.tables}
        for join in stmt.joins:
            bindings[join.table.binding] = join.table.name

        def lookup(ref, _bindings=bindings):
            binding = reference._resolve(ref, _bindings)
            return db.stats.table(_bindings[binding]).column(ref.column)

        pairs.append((stmt.where, lookup))
    return pairs


@pytest.mark.parametrize("seed", range(300, 310))
def test_selectivity_bounded_on_generated_predicates(seed):
    for where, lookup in _where_clauses(generate_case(seed)):
        sel = expr_selectivity(where, lookup)
        assert 0.0 <= sel <= 1.0, f"{where}: {sel}"


@pytest.mark.parametrize("seed", range(300, 310))
def test_and_selectivity_never_exceeds_cheapest_conjunct(seed):
    for where, lookup in _where_clauses(generate_case(seed)):
        if not isinstance(where, _ast.And):
            continue
        sel = expr_selectivity(where, lookup)
        parts = [expr_selectivity(item, lookup) for item in where.items]
        assert sel <= max(min(parts), MIN_SELECTIVITY) + _EPS


@pytest.mark.parametrize("seed", range(300, 310))
def test_or_selectivity_within_union_bounds(seed):
    for where, lookup in _where_clauses(generate_case(seed)):
        if not isinstance(where, _ast.Or):
            continue
        sel = expr_selectivity(where, lookup)
        parts = [expr_selectivity(item, lookup) for item in where.items]
        low = max(parts) - _EPS
        high = max(min(1.0, sum(parts)), MIN_SELECTIVITY) + _EPS
        assert low <= sel <= high


def test_histogram_and_ndv_fallback_agree_on_uniform_data():
    # On perfectly uniform data the histogram's measured fraction for
    # `col = v` must agree with the uniform-assumption fallback
    # non_null/ndv the optimizer uses when no histogram exists.
    ndv, repeat = 16, 8                        # 128 rows <= exact sample
    values = [v for v in range(ndv) for _ in range(repeat)]
    stats = analyze_column(values)
    assert stats.ndv == ndv
    fallback = ColumnStats(ndv=ndv)            # no histogram
    for v in range(ndv):
        with_hist = stats.eq_selectivity(v)
        without = fallback.eq_selectivity(v)
        assert with_hist == pytest.approx(without, rel=1e-6), (
            f"value {v}: histogram {with_hist} vs fallback {without}"
        )
    # And a range over half the domain measures ~half the rows.
    assert stats.between_selectivity(0, ndv // 2 - 1) == pytest.approx(
        0.5, abs=0.05
    )
