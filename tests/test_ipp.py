"""IPP classification and predicate factorization tests (Sec. IV-B)."""

import pytest

from repro.catalog import Schema
from repro.core import factorize_index_predicates, is_ipp, is_range
from repro.core.ipp import RangeColumnChooser
from repro.optimizer import analyze_query
from repro.sqlparser import classify_atomic, parse, parse_select

from .conftest import orders_table, users_table


@pytest.fixture(scope="module")
def schema():
    return Schema.from_tables([users_table(), orders_table()])


def atom(cond):
    stmt = parse_select(f"SELECT a FROM t WHERE {cond}")
    return classify_atomic(stmt.where)


def info_for(sql, schema):
    return analyze_query(parse(sql), schema)


def test_ipp_operators():
    """Sec. IV-B2: =, <=>, IN, IS NULL are IPPs."""
    assert is_ipp(atom("x = 5"))
    assert is_ipp(atom("x <=> 5"))
    assert is_ipp(atom("x IN (1, 2)"))
    assert is_ipp(atom("x IS NULL"))


def test_range_operators_are_not_ipp():
    for cond in ("x > 5", "x <= 5", "x BETWEEN 1 AND 2"):
        pred = atom(cond)
        assert not is_ipp(pred)
        assert is_range(pred)


def test_like_prefix_is_range_not_ipp():
    pred = atom("x LIKE 'abc%'")
    assert not is_ipp(pred)
    assert is_range(pred)
    assert not is_range(atom("x LIKE '%abc'"))


def test_simple_conjunction_single_group(schema):
    info = info_for(
        "SELECT name FROM users WHERE city = 'a' AND age > 30", schema
    )
    groups = factorize_index_predicates(info, "users")
    assert len(groups) == 1
    assert groups[0].ipp_columns == {"city"}
    assert groups[0].range_columns == {"age"}


def test_paper_e2_factorization(schema):
    """E2's DNF yields two groups: {col1,col2,col3} and {col2,col4}."""
    info = info_for(
        "SELECT name FROM users WHERE "
        "(city = 'a' AND name = 'b' AND age > 5) OR (name = 'x' AND score < 2)",
        schema,
    )
    groups = factorize_index_predicates(info, "users")
    signatures = {
        (frozenset(g.ipp_columns), frozenset(g.range_columns)) for g in groups
    }
    assert (frozenset({"city", "name"}), frozenset({"age"})) in signatures
    assert (frozenset({"name"}), frozenset({"score"})) in signatures


def test_join_columns_join_every_group(schema):
    info = info_for(
        "SELECT u.name FROM users u, orders o "
        "WHERE u.id = o.user_id AND (o.status = 'a' OR o.amount > 5)",
        schema,
    )
    groups = factorize_index_predicates(info, "o", join_columns={"user_id"})
    assert len(groups) == 2
    assert all("user_id" in g.ipp_columns for g in groups)


def test_empty_predicates_no_groups(schema):
    info = info_for("SELECT name FROM users", schema)
    assert factorize_index_predicates(info, "users") == []


def test_join_columns_alone_form_group(schema):
    info = info_for(
        "SELECT u.name FROM users u, orders o WHERE u.id = o.user_id", schema
    )
    groups = factorize_index_predicates(info, "o", join_columns={"user_id"})
    assert len(groups) == 1
    assert groups[0].ipp_columns == {"user_id"}


def test_range_chooser_single_candidate(schema):
    info = info_for("SELECT name FROM users WHERE age > 70", schema)
    group = factorize_index_predicates(info, "users")[0]
    chooser = RangeColumnChooser()
    assert chooser.choose(info, group, "users") == "age"


def test_range_chooser_selectivity_fallback(db):
    """Without an evaluator, the most selective range column wins."""
    from repro.optimizer import analyze_query as aq

    info = aq(
        parse("SELECT name FROM users WHERE age > 79 AND score > 1"),
        db.schema,
    )
    groups = factorize_index_predicates(info, "users")
    chooser = RangeColumnChooser(
        stats_lookup=lambda table, col: db.stats.table(table).column(col)
    )
    # age > 79 matches ~1/60 of rows; score > 1 matches nearly all.
    assert chooser.choose(info, groups[0], "users") == "age"


def test_range_chooser_dataless_guidance(db):
    """Algorithm 5 line 6: dataless index costs pick the range column."""
    from repro.optimizer import CostEvaluator, analyze_query as aq

    evaluator = CostEvaluator(db)
    info = aq(
        parse("SELECT name FROM users WHERE age > 79 AND score > 1"),
        db.schema,
    )
    groups = factorize_index_predicates(info, "users")
    chooser = RangeColumnChooser(evaluator=evaluator)
    assert chooser.choose(info, groups[0], "users") == "age"


def test_chooser_returns_none_without_range(schema):
    info = info_for("SELECT name FROM users WHERE city = 'a'", schema)
    group = factorize_index_predicates(info, "users")[0]
    assert RangeColumnChooser().choose(info, group, "users") is None
