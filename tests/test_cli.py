"""CLI tests."""

import json

import pytest

from repro.cli import main, parse_size, parse_workload_file

SCHEMA_SQL = """
CREATE TABLE orders (
    oid BIGINT NOT NULL,
    user_id BIGINT,
    amount INT,
    status VARCHAR(16),
    created TIMESTAMP,
    PRIMARY KEY (oid)
);
CREATE TABLE users (
    id BIGINT NOT NULL,
    city VARCHAR(24),
    name VARCHAR(40),
    PRIMARY KEY (id)
);
"""

WORKLOAD_SQL = """
-- the hot dashboard query
-- weight: 120
SELECT amount FROM orders WHERE status = 'paid' AND created > 3000;

-- weight: 40
SELECT u.name, o.amount FROM users u, orders o
WHERE u.id = o.user_id AND u.city = 'nyc';

UPDATE orders SET status = 'done' WHERE oid = 5;
"""


@pytest.fixture()
def files(tmp_path):
    schema = tmp_path / "schema.sql"
    schema.write_text(SCHEMA_SQL)
    workload = tmp_path / "workload.sql"
    workload.write_text(WORKLOAD_SQL)
    return schema, workload


def test_parse_size():
    assert parse_size("1024") == 1024
    assert parse_size("2KiB") == 2048
    assert parse_size("1.5 MB") == int(1.5 * (1 << 20))
    assert parse_size("10GiB") == 10 << 30
    with pytest.raises(Exception):
        parse_size("two bananas")


def test_parse_workload_file_weights_and_splitting():
    workload = parse_workload_file(WORKLOAD_SQL)
    assert len(workload) == 3
    assert workload.queries[0].weight == 120.0
    assert workload.queries[1].weight == 40.0
    assert workload.queries[2].weight == 1.0
    assert workload.queries[2].is_dml


def test_cli_text_output(files, capsys):
    schema, workload = files
    rc = main([
        "--schema", str(schema), "--workload", str(workload),
        "--budget", "512MiB", "--rows", "orders=500000",
        "--rows", "users=50000",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "AIM recommendation" in out
    assert "CREATE INDEX" in out
    assert "orders" in out


def test_cli_json_output(files, capsys):
    schema, workload = files
    rc = main([
        "--schema", str(schema), "--workload", str(workload),
        "--budget", "512MiB", "--format", "json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["indexes"]
    assert payload["cost_after"] < payload["cost_before"]
    assert 0 < payload["improvement"] <= 1


def test_cli_other_algorithm(files, capsys):
    schema, workload = files
    rc = main([
        "--schema", str(schema), "--workload", str(workload),
        "--algorithm", "dexter", "--format", "json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["algorithm"] == "dexter"
    assert payload["relative_cost"] <= 1.0


def test_cli_rejects_bad_rows(files, capsys):
    schema, workload = files
    rc = main([
        "--schema", str(schema), "--workload", str(workload),
        "--rows", "nonsense",
    ])
    assert rc == 2


def test_cli_rejects_empty_workload(files, tmp_path):
    schema, _ = files
    empty = tmp_path / "empty.sql"
    empty.write_text("-- nothing here\n")
    rc = main(["--schema", str(schema), "--workload", str(empty)])
    assert rc == 2


def test_cli_engine_profiles(files, capsys):
    schema, workload = files
    for engine in ("innodb", "rocksdb", "hdd"):
        rc = main([
            "--schema", str(schema), "--workload", str(workload),
            "--engine", engine, "--format", "json",
        ])
        assert rc == 0
        json.loads(capsys.readouterr().out)
