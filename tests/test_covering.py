"""TryCoveringIndex decision tests (Sec. III-D)."""

from repro.catalog import Index
from repro.core import (
    CoveringPolicy,
    MODE_COVERING,
    MODE_NON_COVERING,
    try_covering_index,
)
from repro.core.covering import covering_extension
from repro.optimizer import CostEvaluator


def test_bootstrap_without_plan_is_non_covering(db):
    ev = CostEvaluator(db)
    info = ev.analyze("SELECT name FROM users WHERE city = 'c1'")
    assert try_covering_index(info, None) == MODE_NON_COVERING


def test_seek_heavy_index_plan_triggers_covering(db):
    ev = CostEvaluator(db)
    sql = "SELECT amount FROM orders WHERE created < 30000"
    idx = Index("orders", ("created",), dataless=True)
    plan = ev.plan(sql, [idx])
    assert plan.uses_index(idx)
    info = ev.analyze(sql)
    policy = CoveringPolicy(seek_threshold=10.0)
    assert try_covering_index(info, plan, policy) == MODE_COVERING


def test_low_seek_count_stays_non_covering(db):
    ev = CostEvaluator(db)
    sql = "SELECT amount FROM orders WHERE created < 30000"
    idx = Index("orders", ("created",), dataless=True)
    plan = ev.plan(sql, [idx])
    policy = CoveringPolicy(seek_threshold=1e9)   # SSD-high threshold
    info = ev.analyze(sql)
    assert try_covering_index(info, plan, policy) == MODE_NON_COVERING


def test_unsaturated_ipp_prefix_stays_non_covering(db):
    """Selectivity can still improve: an index missing an IPP column."""
    ev = CostEvaluator(db)
    sql = "SELECT amount FROM orders WHERE status = 'paid' AND user_id = 3"
    idx = Index("orders", ("status",), dataless=True)   # user_id missing
    plan = ev.plan(sql, [idx])
    if plan.uses_index(idx):
        info = ev.analyze(sql)
        policy = CoveringPolicy(seek_threshold=1.0)
        assert try_covering_index(info, plan, policy) == MODE_NON_COVERING


def test_no_ipp_seq_scan_triggers_covering(db):
    """With no IPP columns at all, a heavy seq scan justifies covering."""
    ev = CostEvaluator(db)
    sql = "SELECT amount FROM orders WHERE amount > 990"
    plan = ev.plan(sql, [])
    info = ev.analyze(sql)
    policy = CoveringPolicy(seek_threshold=100.0)
    assert try_covering_index(info, plan, policy) == MODE_COVERING


def test_weight_gate(db):
    ev = CostEvaluator(db)
    sql = "SELECT amount FROM orders WHERE amount > 990"
    plan = ev.plan(sql, [])
    info = ev.analyze(sql)
    policy = CoveringPolicy(seek_threshold=100.0, min_weight=1000.0)
    assert try_covering_index(info, plan, policy, weight=1.0) == MODE_NON_COVERING
    assert try_covering_index(info, plan, policy, weight=2000.0) == MODE_COVERING


def test_covering_extension_lists_missing_referenced(db):
    ev = CostEvaluator(db)
    info = ev.analyze("SELECT name, score FROM users WHERE city = 'c1'")
    extension = covering_extension(info, "users", ["city"])
    assert extension == ["name", "score"]
    assert covering_extension(info, "users", ["city", "name", "score"]) == []
