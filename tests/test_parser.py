"""Parser unit tests."""

import pytest

from repro.sqlparser import ast, parse, parse_select
from repro.sqlparser.parser import ParseError


def test_minimal_select():
    stmt = parse_select("SELECT a FROM t")
    assert stmt.tables == (ast.TableRef("t"),)
    assert stmt.items[0].expr == ast.ColumnRef(None, "a")


def test_select_star():
    stmt = parse_select("SELECT * FROM t")
    assert isinstance(stmt.items[0].expr, ast.Star)


def test_qualified_star():
    stmt = parse_select("SELECT t.* FROM t")
    assert stmt.items[0].expr == ast.Star("t")


def test_column_alias_with_and_without_as():
    stmt = parse_select("SELECT a AS x, b y FROM t")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"


def test_table_alias():
    stmt = parse_select("SELECT u.a FROM users u")
    assert stmt.tables[0] == ast.TableRef("users", "u")
    assert stmt.tables[0].binding == "u"


def test_comma_join_and_explicit_join():
    stmt = parse_select(
        "SELECT a FROM t1, t2 INNER JOIN t3 ON t2.x = t3.y"
    )
    assert len(stmt.tables) == 2
    assert len(stmt.joins) == 1
    assert stmt.joins[0].kind == "INNER"
    assert isinstance(stmt.joins[0].condition, ast.Comparison)


def test_left_join_outer_optional():
    stmt = parse_select("SELECT a FROM t1 LEFT OUTER JOIN t2 ON t1.x = t2.y")
    assert stmt.joins[0].kind == "LEFT"


def test_straight_join():
    stmt = parse_select("SELECT a FROM t1 STRAIGHT_JOIN t2 ON t1.x = t2.y")
    assert stmt.joins[0].kind == "STRAIGHT"


def test_where_precedence_and_over_or():
    stmt = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
    assert isinstance(stmt.where, ast.Or)
    assert isinstance(stmt.where.items[1], ast.And)


def test_not_binds_tighter_than_and():
    stmt = parse_select("SELECT a FROM t WHERE NOT x = 1 AND y = 2")
    assert isinstance(stmt.where, ast.And)
    assert isinstance(stmt.where.items[0], ast.Not)


def test_parenthesized_or_inside_and():
    stmt = parse_select("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
    assert isinstance(stmt.where, ast.And)
    assert isinstance(stmt.where.items[0], ast.Or)


def test_in_list():
    stmt = parse_select("SELECT a FROM t WHERE x IN (1, 2, 3)")
    assert isinstance(stmt.where, ast.InList)
    assert len(stmt.where.items) == 3


def test_not_in():
    stmt = parse_select("SELECT a FROM t WHERE x NOT IN (1)")
    assert stmt.where.negated


def test_between_and_not_between():
    stmt = parse_select("SELECT a FROM t WHERE x BETWEEN 1 AND 10")
    assert isinstance(stmt.where, ast.Between)
    stmt2 = parse_select("SELECT a FROM t WHERE x NOT BETWEEN 1 AND 10")
    assert stmt2.where.negated


def test_like_and_not_like():
    stmt = parse_select("SELECT a FROM t WHERE x LIKE 'p%'")
    assert isinstance(stmt.where, ast.Comparison)
    assert stmt.where.op == "LIKE"
    stmt2 = parse_select("SELECT a FROM t WHERE x NOT LIKE 'p%'")
    assert isinstance(stmt2.where, ast.Not)


def test_is_null_and_is_not_null():
    stmt = parse_select("SELECT a FROM t WHERE x IS NULL")
    assert isinstance(stmt.where, ast.IsNull)
    stmt2 = parse_select("SELECT a FROM t WHERE x IS NOT NULL")
    assert stmt2.where.negated


def test_null_safe_equal():
    stmt = parse_select("SELECT a FROM t WHERE x <=> 5")
    assert stmt.where.op == "<=>"


def test_diamond_normalizes_to_bang_equal():
    stmt = parse_select("SELECT a FROM t WHERE x <> 5")
    assert stmt.where.op == "!="


def test_arithmetic_precedence():
    stmt = parse_select("SELECT a + b * 2 FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, ast.Arithmetic)
    assert expr.op == "+"
    assert isinstance(expr.right, ast.Arithmetic)
    assert expr.right.op == "*"


def test_negative_literal_folds():
    stmt = parse_select("SELECT a FROM t WHERE x > -5")
    assert stmt.where.right == ast.Literal(-5)


def test_aggregates():
    stmt = parse_select(
        "SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(z), COUNT(DISTINCT x) FROM t"
    )
    count = stmt.items[0].expr
    assert isinstance(count, ast.FuncCall) and count.star
    distinct = stmt.items[5].expr
    assert distinct.distinct


def test_group_by_having_order_limit_offset():
    stmt = parse_select(
        "SELECT x, COUNT(*) FROM t WHERE y > 0 GROUP BY x "
        "HAVING COUNT(*) > 5 ORDER BY x DESC LIMIT 10 OFFSET 20"
    )
    assert stmt.group_by == (ast.ColumnRef(None, "x"),)
    assert stmt.having is not None
    assert stmt.order_by[0].desc
    assert stmt.limit == 10
    assert stmt.offset == 20


def test_mysql_limit_offset_comma_form():
    stmt = parse_select("SELECT a FROM t LIMIT 20, 10")
    assert stmt.limit == 10
    assert stmt.offset == 20


def test_parameterized_query_parses():
    stmt = parse_select("SELECT a FROM t WHERE x = ? AND y IN (?) LIMIT ?")
    assert isinstance(stmt.where.items[0].right, ast.Param)
    assert stmt.limit == -1   # unknown nominal bound


def test_insert():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, ast.Insert)
    assert stmt.columns == ("a", "b")
    assert len(stmt.rows) == 2


def test_update():
    stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 5")
    assert isinstance(stmt, ast.Update)
    assert stmt.assignments[0][0] == "a"
    assert isinstance(stmt.assignments[1][1], ast.Arithmetic)


def test_delete():
    stmt = parse("DELETE FROM t WHERE id = 5")
    assert isinstance(stmt, ast.Delete)


def test_trailing_semicolon_ok():
    parse("SELECT a FROM t;")


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t garbage junk")


def test_unsupported_statement_raises():
    with pytest.raises(ParseError):
        parse("CREATE TABLE t (a INT)")


def test_parse_select_rejects_dml():
    with pytest.raises(ParseError):
        parse_select("DELETE FROM t")


def test_roundtrip_to_sql_reparses():
    sql = (
        "SELECT u.name, COUNT(*) FROM users AS u INNER JOIN orders "
        "ON u.id = orders.user_id WHERE u.age > 30 AND "
        "(orders.status = 'paid' OR orders.amount IN (1, 2)) "
        "GROUP BY u.name ORDER BY u.name LIMIT 5"
    )
    first = parse(sql).to_sql()
    second = parse(first).to_sql()
    assert first == second
