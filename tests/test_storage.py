"""TableStorage tests: row CRUD with index maintenance accounting."""

import pytest

from repro.catalog import Column, INT, Index, Table, varchar
from repro.engine import ExecutionMetrics
from repro.engine.storage import StorageError, TableStorage


def make_storage():
    table = Table(
        "t",
        [Column("id", INT), Column("a", INT), Column("b", varchar(8))],
        ("id",),
    )
    return TableStorage(table)


def test_insert_assigns_row_ids_and_maintains_pk():
    storage = make_storage()
    rid = storage.insert_row({"id": 1, "a": 10, "b": "x"})
    assert storage.get_row(rid)["a"] == 10
    assert len(storage.pk_index) == 1


def test_insert_counts_maintenance_entries():
    storage = make_storage()
    storage.build_index(Index("t", ("a",)))
    metrics = ExecutionMetrics()
    storage.insert_row({"id": 1, "a": 10, "b": "x"}, metrics)
    assert metrics.index_entries_written == 2   # PK + secondary


def test_missing_columns_stored_as_null():
    storage = make_storage()
    rid = storage.insert_row({"id": 1})
    assert storage.get_row(rid)["a"] is None


def test_delete_row_maintains_all_indexes():
    storage = make_storage()
    idx = storage.build_index(Index("t", ("a",)))
    rid = storage.insert_row({"id": 1, "a": 10, "b": "x"})
    storage.delete_row(rid)
    assert storage.row_count == 0
    assert len(idx) == 0
    with pytest.raises(StorageError):
        storage.delete_row(rid)


def test_update_only_touches_affected_indexes():
    storage = make_storage()
    idx_a = storage.build_index(Index("t", ("a",)))
    idx_b = storage.build_index(Index("t", ("b",)))
    rid = storage.insert_row({"id": 1, "a": 10, "b": "x"})
    storage.update_row(rid, {"a": 20})
    assert [k[0].value for k, _ in idx_a.scan_all()] == [20]
    assert [k[0].value for k, _ in idx_b.scan_all()] == ["x"]


def test_update_missing_row_raises():
    storage = make_storage()
    with pytest.raises(StorageError):
        storage.update_row(99, {"a": 1})


def test_build_index_over_existing_rows():
    storage = make_storage()
    for i in range(5):
        storage.insert_row({"id": i, "a": 5 - i, "b": "x"})
    idx = storage.build_index(Index("t", ("a",)))
    values = [k[0].value for k, _ in idx.scan_all()]
    assert values == [1, 2, 3, 4, 5]


def test_build_index_is_idempotent():
    storage = make_storage()
    first = storage.build_index(Index("t", ("a",)))
    second = storage.build_index(Index("t", ("a",)))
    assert first is second


def test_build_index_wrong_table_rejected():
    storage = make_storage()
    with pytest.raises(StorageError):
        storage.build_index(Index("u", ("a",)))


def test_drop_index():
    storage = make_storage()
    storage.build_index(Index("t", ("a",)))
    storage.drop_index("idx_t_a")
    assert storage.get_index("idx_t_a") is None


def test_column_values():
    storage = make_storage()
    storage.insert_row({"id": 1, "a": 10, "b": "x"})
    storage.insert_row({"id": 2, "a": 20, "b": "y"})
    assert sorted(storage.column_values("a")) == [10, 20]


def test_secondary_key_includes_pk_for_stability():
    storage = make_storage()
    idx = storage.build_index(Index("t", ("a",)))
    storage.insert_row({"id": 2, "a": 1, "b": "x"})
    storage.insert_row({"id": 1, "a": 1, "b": "y"})
    keys = [tuple(w.value for w in k) for k, _ in idx.scan_all()]
    assert keys == [(1, 1), (1, 2)]   # same a, ordered by appended PK
