"""Star-join workload tests (the Fig 6 substrate)."""

import pytest

from repro.core import AimAdvisor, AimConfig
from repro.optimizer import CostEvaluator
from repro.workloads.starjoin import (
    starjoin_database,
    starjoin_tables,
    starjoin_workload,
)


@pytest.fixture(scope="module")
def sdb():
    return starjoin_database()


def test_schema_shape(sdb):
    assert len(sdb.schema.tables) == 4
    fact = sdb.schema.table("fact")
    for i in range(3):
        assert fact.has_column(f"k{i}a")
        assert fact.has_column(f"k{i}b")


def test_composite_keys_individually_weak(sdb):
    stats = sdb.stats.table("fact")
    assert stats.column("k0a").ndv <= 50
    # ... but jointly strong.
    assert stats.distinct_values(("k0a", "k0b")) > stats.column("k0a").ndv


def test_workload_mix(sdb):
    workload = starjoin_workload()
    stars = [q for q in workload if q.name.startswith("star")]
    dml = [q for q in workload if q.is_dml]
    assert len(stars) >= 20
    assert dml


def test_workload_is_deterministic():
    a = starjoin_workload(seed=17)
    b = starjoin_workload(seed=17)
    assert [q.sql for q in a] == [q.sql for q in b]


def test_all_queries_plan(sdb):
    evaluator = CostEvaluator(sdb)
    for query in starjoin_workload():
        assert evaluator.cost(query.sql) > 0


def test_join_parameter_shape(sdb):
    """The Fig 6 property: j=2 dominates j=1; j=3 adds nothing."""
    workload = starjoin_workload()
    evaluator = CostEvaluator(sdb)
    base = evaluator.workload_cost(workload.pairs())
    rel = {}
    for j in (1, 2, 3):
        rec = AimAdvisor(sdb, AimConfig(join_parameter=j)).recommend(
            workload, 16 << 30
        )
        cost = evaluator.workload_cost(
            workload.pairs(), [i.as_dataless() for i in rec.indexes]
        )
        rel[j] = cost / base
    assert rel[2] < rel[1] * 0.5
    assert rel[3] == pytest.approx(rel[2], rel=0.25)
