"""Executor correctness tests against brute-force expectations."""

import pytest

from repro.catalog import Index
from repro.executor import Executor


@pytest.fixture()
def ex(db):
    return Executor(db)


@pytest.fixture()
def indexed_ex(indexed_db):
    return Executor(indexed_db)


def brute_users(user_rows, cond):
    return [u for u in user_rows if cond(u)]


def test_point_select(ex, user_rows):
    r = ex.execute("SELECT name FROM users WHERE id = 42")
    assert r.rows == [("n42",)]
    assert r.metrics.rows_sent == 1


def test_filter_and_projection(ex, user_rows):
    r = ex.execute("SELECT name, age FROM users WHERE city = 'c3' AND age > 40")
    expected = sorted(
        (u["name"], u["age"])
        for u in user_rows
        if u["city"] == "c3" and u["age"] > 40
    )
    assert sorted(r.rows) == expected


def test_index_scan_matches_seq_scan_results(indexed_ex, order_rows):
    # 1% selective range on orders.created: the index wins clearly.
    sql = "SELECT amount FROM orders WHERE created < 10000"
    indexed = indexed_ex.execute(sql)
    expected = sorted(o["amount"] for o in order_rows if o["created"] < 10000)
    assert sorted(r[0] for r in indexed.rows) == expected
    assert indexed.plan.used_indexes == {"idx_orders_created"}
    # Far fewer rows touched than the 3000-row table.
    assert indexed.metrics.rows_read < 100


def test_or_predicate(ex, user_rows):
    r = ex.execute("SELECT id FROM users WHERE age < 20 OR age > 78")
    expected = sorted(
        (u["id"],) for u in user_rows if u["age"] < 20 or u["age"] > 78
    )
    assert sorted(r.rows) == expected


def test_in_and_between(ex, order_rows):
    r = ex.execute(
        "SELECT COUNT(*) FROM orders WHERE status IN ('paid', 'new') "
        "AND amount BETWEEN 100 AND 200"
    )
    expected = sum(
        1
        for o in order_rows
        if o["status"] in ("paid", "new") and 100 <= o["amount"] <= 200
    )
    assert r.rows[0][0] == expected


def test_is_null(ex, user_rows):
    r = ex.execute("SELECT COUNT(*) FROM users WHERE score IS NULL")
    assert r.rows[0][0] == sum(1 for u in user_rows if u["score"] is None)
    r2 = ex.execute("SELECT COUNT(*) FROM users WHERE score IS NOT NULL")
    assert r.rows[0][0] + r2.rows[0][0] == len(user_rows)


def test_null_comparison_never_matches(ex, user_rows):
    r = ex.execute("SELECT COUNT(*) FROM users WHERE score > 0")
    expected = sum(1 for u in user_rows if u["score"] is not None and u["score"] > 0)
    assert r.rows[0][0] == expected


def test_like_patterns(ex, user_rows):
    r = ex.execute("SELECT COUNT(*) FROM users WHERE name LIKE 'n1%'")
    expected = sum(1 for u in user_rows if u["name"].startswith("n1"))
    assert r.rows[0][0] == expected
    r2 = ex.execute("SELECT COUNT(*) FROM users WHERE name LIKE 'n_'")
    expected2 = sum(1 for u in user_rows if len(u["name"]) == 2)
    assert r2.rows[0][0] == expected2


def test_order_by_asc_desc_limit_offset(ex, user_rows):
    r = ex.execute("SELECT id, age FROM users ORDER BY age DESC, id LIMIT 5")
    expected = sorted(
        ((u["id"], u["age"]) for u in user_rows), key=lambda t: (-t[1], t[0])
    )[:5]
    assert r.rows == expected
    r2 = ex.execute("SELECT id FROM users ORDER BY id LIMIT 3 OFFSET 10")
    assert r2.rows == [(10,), (11,), (12,)]


def test_order_by_with_index_early_exit(indexed_ex, order_rows):
    r = indexed_ex.execute("SELECT created FROM orders ORDER BY created LIMIT 5")
    expected = sorted(o["created"] for o in order_rows)[:5]
    assert [row[0] for row in r.rows] == expected


def test_order_by_desc_via_index_reverse_scan(indexed_ex, order_rows):
    r = indexed_ex.execute("SELECT created FROM orders ORDER BY created DESC LIMIT 5")
    expected = sorted((o["created"] for o in order_rows), reverse=True)[:5]
    assert [row[0] for row in r.rows] == expected


def test_group_by_with_aggregates(ex, order_rows):
    r = ex.execute(
        "SELECT status, COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) "
        "FROM orders GROUP BY status ORDER BY status"
    )
    from collections import defaultdict

    groups = defaultdict(list)
    for o in order_rows:
        groups[o["status"]].append(o["amount"])
    expected = [
        (
            s,
            len(v),
            sum(v),
            min(v),
            max(v),
            sum(v) / len(v),
        )
        for s, v in sorted(groups.items())
    ]
    assert [
        (row[0], row[1], row[2], row[3], row[4], pytest.approx(row[5]))
        for row in r.rows
    ] == [
        (e[0], e[1], e[2], e[3], e[4], pytest.approx(e[5])) for e in expected
    ]


def test_count_distinct(ex, order_rows):
    r = ex.execute("SELECT COUNT(DISTINCT status) FROM orders")
    assert r.rows[0][0] == len({o["status"] for o in order_rows})


def test_having_filters_groups(ex, order_rows):
    r = ex.execute(
        "SELECT user_id, COUNT(*) FROM orders GROUP BY user_id HAVING COUNT(*) > 10"
    )
    from collections import Counter

    counts = Counter(o["user_id"] for o in order_rows)
    expected = {(u, c) for u, c in counts.items() if c > 10}
    assert set(r.rows) == expected


def test_global_aggregate_without_group(ex, order_rows):
    r = ex.execute("SELECT COUNT(*), SUM(amount) FROM orders WHERE amount > 990")
    matching = [o["amount"] for o in order_rows if o["amount"] > 990]
    assert r.rows == [(len(matching), sum(matching) if matching else None)]


def test_arithmetic_in_projection(ex):
    r = ex.execute("SELECT age * 2 + 1 FROM users WHERE id = 0")
    age = ex.execute("SELECT age FROM users WHERE id = 0").rows[0][0]
    assert r.rows[0][0] == age * 2 + 1


def test_distinct(ex, order_rows):
    r = ex.execute("SELECT DISTINCT status FROM orders")
    assert sorted(row[0] for row in r.rows) == sorted({o["status"] for o in order_rows})


def test_join_matches_brute_force(ex, user_rows, order_rows):
    r = ex.execute(
        "SELECT u.name, o.amount FROM users u, orders o "
        "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c3'"
    )
    users_by_id = {u["id"]: u for u in user_rows}
    expected = sorted(
        (users_by_id[o["user_id"]]["name"], o["amount"])
        for o in order_rows
        if o["status"] == "paid" and users_by_id[o["user_id"]]["city"] == "c3"
    )
    assert sorted(r.rows) == expected


def test_join_with_indexes_same_results(indexed_ex, ex):
    sql = (
        "SELECT u.name, o.amount FROM users u, orders o "
        "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c3'"
    )
    assert sorted(indexed_ex.execute(sql).rows) == sorted(ex.execute(sql).rows)


def test_three_way_join(ex, db, user_rows, order_rows):
    r = ex.execute(
        "SELECT COUNT(*) FROM users u, orders o1, orders o2 "
        "WHERE u.id = o1.user_id AND u.id = o2.user_id "
        "AND o1.status = 'paid' AND o2.status = 'done' AND u.city = 'c1'"
    )
    users_by_id = {u["id"]: u for u in user_rows}
    paid = [o for o in order_rows if o["status"] == "paid"]
    done = [o for o in order_rows if o["status"] == "done"]
    expected = sum(
        1
        for a in paid
        for b in done
        if a["user_id"] == b["user_id"]
        and users_by_id[a["user_id"]]["city"] == "c1"
    )
    assert r.rows[0][0] == expected


def test_insert_visible_to_select(ex):
    ex.execute("INSERT INTO users (id, age, city, name) VALUES (9999, 30, 'cx', 'new')")
    r = ex.execute("SELECT name FROM users WHERE id = 9999")
    assert r.rows == [("new",)]


def test_update_applies_and_counts(ex, order_rows):
    expected = sum(1 for o in order_rows if o["user_id"] == 10)
    r = ex.execute("UPDATE orders SET status = 'void' WHERE user_id = 10")
    assert r.rowcount == expected
    check = ex.execute("SELECT COUNT(*) FROM orders WHERE status = 'void'")
    assert check.rows[0][0] == expected


def test_update_maintains_indexes(indexed_ex, indexed_db):
    indexed_ex.execute("UPDATE orders SET status = 'void' WHERE user_id = 10")
    direct = indexed_ex.execute(
        "SELECT COUNT(*) FROM orders WHERE user_id = 10 AND status = 'void'"
    )
    assert direct.plan.used_indexes   # via idx_orders_user_id_status
    brute = sum(
        1
        for row in indexed_db.storage["orders"].rows.values()
        if row["user_id"] == 10 and row["status"] == "void"
    )
    assert direct.rows[0][0] == brute


def test_delete_applies(ex, order_rows):
    expected = sum(1 for o in order_rows if o["amount"] < 20)
    r = ex.execute("DELETE FROM orders WHERE amount < 20")
    assert r.rowcount == expected
    check = ex.execute("SELECT COUNT(*) FROM orders WHERE amount < 20")
    assert check.rows[0][0] == 0


def test_metrics_rows_sent_matches(ex):
    r = ex.execute("SELECT id FROM users WHERE age > 50")
    assert r.metrics.rows_sent == len(r.rows)


def test_executor_requires_storage():
    from repro.engine import Database
    from .conftest import users_table

    stats_only = Database.from_tables([users_table()], with_storage=False)
    with pytest.raises(RuntimeError):
        Executor(stats_only)


def test_parameterized_query_rejected(ex):
    with pytest.raises(ValueError):
        ex.execute("SELECT name FROM users WHERE id = ?")
