"""Access path enumeration and costing tests."""

import pytest

from repro.catalog import Index
from repro.engine import INNODB
from repro.optimizer.access_path import (
    ProbeContext,
    best_no_index_cost,
    best_path,
    enumerate_paths,
)
from repro.optimizer.query_info import OrderColumn
from repro.sqlparser import classify_atomic, parse_select, split_conjuncts
from repro.stats import ColumnStats, Histogram, TableStats

from .conftest import users_table


def make_stats(rows=100_000):
    return TableStats(
        row_count=rows,
        columns={
            "id": ColumnStats(ndv=rows),
            "age": ColumnStats(ndv=60, histogram=Histogram(tuple(range(18, 81)))),
            "city": ColumnStats(ndv=50),
            "name": ColumnStats(ndv=rows),
            "score": ColumnStats(ndv=100, histogram=Histogram(tuple(range(101)))),
        },
    )


def preds(condition):
    stmt = parse_select(f"SELECT name FROM users WHERE {condition}")
    out = []
    for conjunct in split_conjuncts(stmt.where):
        atom = classify_atomic(conjunct)
        if atom is not None:
            out.append(atom)
    return out


def paths_for(condition="", indexes=(), referenced=None, **kwargs):
    return enumerate_paths(
        users_table(),
        make_stats(),
        INNODB,
        preds(condition) if condition else [],
        list(indexes),
        referenced or {"name", "city", "age"},
        **kwargs,
    )


def test_seq_scan_always_present():
    paths = paths_for()
    assert paths[0].method == "seq"
    assert paths[0].rows_examined == 100_000


def test_selective_index_beats_seq_scan():
    idx = Index("users", ("city",))
    paths = paths_for("city = 'c1'", [idx])
    chosen = best_path(paths)
    assert chosen.method == "index"
    assert chosen.eq_columns == ("city",)
    assert chosen.cost < paths[0].cost


def test_eq_chain_then_range_prefix():
    idx = Index("users", ("city", "age", "name"))
    paths = paths_for("city = 'c1' AND age > 70 AND name = 'x'", [idx])
    path = next(p for p in paths if p.index is not None)
    assert path.eq_columns == ("city",)
    assert path.range_column == "age"
    # name = 'x' is after the range column: ICP, not prefix.
    assert path.index_selectivity < 1 / 50


def test_prefix_breaks_on_gap():
    idx = Index("users", ("city", "age"))
    paths = paths_for("age = 30", [idx])   # no city predicate: gap at col 1
    path = next((p for p in paths if p.index is not None), None)
    assert path is None or path.eq_columns == ()


def test_covering_avoids_lookups():
    covering = Index("users", ("city", "name"))
    lookup = Index("users", ("city",))
    paths = paths_for("city = 'c1'", [covering, lookup], referenced={"city", "name"})
    by_name = {p.index.name: p for p in paths if p.index is not None}
    assert by_name["idx_users_city_name"].covering
    assert not by_name["idx_users_city"].covering
    assert by_name["idx_users_city_name"].cost < by_name["idx_users_city"].cost
    assert by_name["idx_users_city"].lookup_rows > 0


def test_pk_counts_as_covering():
    paths = paths_for("id = 5")
    pk = next(p for p in paths if p.method == "pk")
    assert pk.covering
    assert pk.eq_columns == ("id",)
    assert pk.cost < paths[0].cost


def test_order_satisfaction_after_eq_prefix():
    idx = Index("users", ("city", "age"))
    paths = paths_for(
        "city = 'c1'", [idx],
        order_cols=[OrderColumn("users", "age", False)],
    )
    path = next(p for p in paths if p.index is not None)
    assert path.order_satisfied


def test_in_prefix_breaks_order_satisfaction():
    idx = Index("users", ("city", "age"))
    paths = paths_for(
        "city IN ('a', 'b')", [idx],
        order_cols=[OrderColumn("users", "age", False)],
    )
    path = next(p for p in paths if p.index is not None)
    assert not path.order_satisfied


def test_mixed_direction_order_not_satisfied():
    idx = Index("users", ("city", "age", "name"))
    paths = paths_for(
        "city = 'c1'", [idx],
        order_cols=[
            OrderColumn("users", "age", False),
            OrderColumn("users", "name", True),
        ],
    )
    path = next(p for p in paths if p.index is not None)
    assert not path.order_satisfied


def test_group_satisfaction_any_permutation():
    idx = Index("users", ("age", "city"))
    paths = paths_for(group_cols=["city", "age"], indexes=[idx])
    path = next(p for p in paths if p.index is not None)
    assert path.group_satisfied


def test_limit_early_exit_reduces_cost():
    idx = Index("users", ("age",))
    with_limit = paths_for(
        indexes=[idx],
        order_cols=[OrderColumn("users", "age", False)],
        limit=10,
    )
    without = paths_for(
        indexes=[idx],
        order_cols=[OrderColumn("users", "age", False)],
    )
    limited = next(p for p in with_limit if p.index is not None)
    full = next(p for p in without if p.index is not None)
    assert limited.cost < full.cost
    assert limited.rows_out <= 10


def test_probe_context_enables_join_index():
    idx = Index("users", ("id",))
    probe = ProbeContext({"id": 1 / 100_000})
    paths = enumerate_paths(
        users_table(), make_stats(), INNODB, [], [idx], {"name"}, probe=probe
    )
    chosen = best_path(paths)
    assert chosen.method in ("pk", "index")
    assert chosen.rows_examined < 10


def test_best_no_index_cost_ignores_secondary():
    idx = Index("users", ("city",))
    paths = paths_for("city = 'c1'", [idx])
    no_index = best_no_index_cost(paths)
    assert no_index >= paths[0].cost or no_index == paths[0].cost


def test_residual_selectivity_scales_rows_out():
    full = paths_for()[0]
    half = enumerate_paths(
        users_table(), make_stats(), INNODB, [], [], {"name"},
        residual_selectivity=0.5,
    )[0]
    assert half.rows_out == pytest.approx(full.rows_out * 0.5)
