"""Fleet / operational layer tests (Sec. VII, VIII)."""

import pytest

from repro.catalog import Index
from repro.core import AimConfig
from repro.engine import ExecutionMetrics
from repro.fleet import (
    ContinuousRegressionDetector,
    FleetCoordinator,
    MyShadow,
    PubSubChannel,
    ReplayConfig,
    ReplaySimulator,
    ReplicaSet,
    StatsExportDaemon,
    StatsWarehouse,
    incremental_index_events,
)
from repro.workload import Workload, WorkloadMonitor, WorkloadQuery
from repro.workloads.production import PRODUCTS, build_product


@pytest.fixture(scope="module")
def product():
    return build_product(PRODUCTS["F"])


@pytest.fixture()
def replica_set(product):
    product.db.drop_all_secondary_indexes()
    return ReplicaSet(product.db, n_replicas=3)


def test_reads_round_robin(replica_set, product):
    query = next(q for q in product.workload if not q.is_dml)
    for _ in range(3):
        replica_set.serve_read(query)
    counts = [len(r.monitor.stats) for r in replica_set.replicas]
    assert counts == [1, 1, 1]


def test_writes_hit_every_replica(replica_set, product):
    write = next(q for q in product.workload if q.is_dml)
    replica_set.serve_write(write)
    assert all(len(r.monitor.stats) == 1 for r in replica_set.replicas)


def test_ddl_is_replicated(replica_set, product):
    table = next(iter(product.db.schema.tables))
    column = product.db.schema.table(table).column_names[1]
    replica_set.apply_ddl(create=[Index(table, (column,))])
    for replica in replica_set.replicas:
        assert replica.db.schema.indexes(table)


def test_stats_export_aggregates_and_clears(replica_set, product):
    channel = PubSubChannel()
    warehouse = StatsWarehouse()
    channel.subscribe(warehouse.ingest)
    daemon = StatsExportDaemon("F", replica_set, channel)
    query = next(q for q in product.workload if not q.is_dml)
    for _ in range(6):
        replica_set.serve_read(query)
    exported = daemon.run_once()
    assert exported == 3            # one record per replica
    assert channel.published == 3
    merged = warehouse.monitor_for("F")
    assert next(iter(merged.stats.values())).executions == 6
    # Replica monitors reset after export.
    assert all(not r.monitor.stats for r in replica_set.replicas)


def test_coordinator_triggers_tuning(replica_set, product):
    channel = PubSubChannel()
    warehouse = StatsWarehouse()
    channel.subscribe(warehouse.ingest)
    daemon = StatsExportDaemon("F", replica_set, channel)
    from repro.workloads.oltp import WorkloadSampler

    sampler = WorkloadSampler(product.workload, seed=1)
    for query in sampler.sample(300):
        replica_set.serve(query)
    daemon.run_once()
    coordinator = FleetCoordinator(warehouse, budget_bytes=1 << 30)
    coordinator.register("F", replica_set)
    assert coordinator.needs_tuning("F")
    results = coordinator.scan_and_tune()
    assert results["F"].created
    assert product.db.schema.indexes(include_dataless=False)


def test_coordinator_skips_quiet_databases(product):
    warehouse = StatsWarehouse()
    coordinator = FleetCoordinator(warehouse, budget_bytes=1 << 30)
    rs = ReplicaSet(product.db, n_replicas=1)
    coordinator.register("quiet", rs)
    assert not coordinator.needs_tuning("quiet")
    assert coordinator.scan_and_tune() == {}


def test_myshadow_flags_regressions(db):
    shadow = MyShadow(db)
    w = Workload.from_sql(
        [("SELECT amount FROM orders WHERE created < 10000", 5.0)]
    )
    good = [Index("orders", ("created",), dataless=True)]
    report = shadow.validate(w, good)
    assert report.safe
    assert report.improved
    assert report.cost_after < report.cost_before


def test_myshadow_sampling(db):
    shadow = MyShadow(db, sample_fraction=0.5, seed=1)
    w = Workload.from_sql([(f"SELECT name FROM users WHERE id = {i}", 1.0) for i in range(10)])
    assert len(shadow.sample_traffic(w)) == 5


def test_regression_detector_windows():
    detector = ContinuousRegressionDetector(regression_threshold=1.5)
    added = Index("orders", ("status",))
    detector.note_index_created(added)

    baseline = WorkloadMonitor()
    baseline.record_execution(
        "SELECT amount FROM orders WHERE status = 'a'",
        ExecutionMetrics(rows_read=10, rows_sent=10), 1.0,
    )
    assert detector.observe_window(baseline) == []

    regressed = WorkloadMonitor()
    regressed.record_execution(
        "SELECT amount FROM orders WHERE status = 'a'",
        ExecutionMetrics(rows_read=10, rows_sent=10), 5.0,
    )
    events = detector.observe_window(regressed)
    assert len(events) == 1
    assert events[0].ratio == pytest.approx(5.0)
    assert added in detector.flagged_for_removal(events)


def test_regression_detector_ages_suspects_out():
    detector = ContinuousRegressionDetector(suspect_windows=2)
    detector.note_index_created(Index("t", ("a",)))
    monitor = WorkloadMonitor()
    monitor.record_execution(
        "SELECT a FROM orders WHERE status = 'x'",
        ExecutionMetrics(rows_read=1, rows_sent=1), 1.0,
    )
    detector.observe_window(monitor)   # window 1: suspect survives
    assert detector._recent_ddl
    detector.observe_window(monitor)   # window 2: suspect ages out
    assert detector._recent_ddl == {}


def test_replay_cpu_drops_as_indexes_build(product):
    product.db.drop_all_secondary_indexes()
    from repro.baselines import AimAlgorithm

    recommendation = AimAlgorithm(product.db).select(product.workload, 1 << 30)
    sim = ReplaySimulator(
        product.db, product.workload,
        ReplayConfig(ticks=24, arrivals_per_tick=30, capacity=2e6, seed=3),
    )
    events = incremental_index_events(recommendation.indexes[:6], start_tick=8, interval=2)
    timeline = sim.run(events)
    before = timeline.mean_cpu(0, 8)
    after = timeline.mean_cpu(20, 24)
    assert after < before
    assert timeline.points[0].n_indexes == 0
    assert timeline.points[-1].n_indexes == 6


def test_replay_saturation_clips_throughput(product):
    product.db.drop_all_secondary_indexes()
    sim = ReplaySimulator(
        product.db, product.workload,
        ReplayConfig(ticks=5, arrivals_per_tick=50, capacity=1.0, seed=3),
    )
    timeline = sim.run()
    assert all(p.cpu_pct == 100.0 for p in timeline.points)
    assert all(p.throughput < 50 for p in timeline.points)


def test_replay_workload_shift(product):
    from repro.workloads.oltp import workload_shift

    sim = ReplaySimulator(
        product.db, product.workload,
        ReplayConfig(ticks=4, arrivals_per_tick=10, capacity=1e9, seed=3),
    )
    new_query = WorkloadQuery("SELECT c0 FROM t0 WHERE c1 = 5", 1e6, name="new")
    shifted = workload_shift(product.workload, [new_query], hot_weight=1e6)
    sim.run({2: lambda s: s.set_workload(shifted)})
    assert sim.workload.by_name("new") is not None
