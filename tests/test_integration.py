"""Cross-module integration tests: advisor decisions verified against
*measured* execution on stored data, plus full operational scenarios."""

import pytest

from repro.baselines import AimAlgorithm, ExtendAlgorithm
from repro.core import AimAdvisor, AimConfig, ContinuousTuner
from repro.engine import ExecutionMetrics
from repro.workload import (
    MonitoredExecutor,
    SelectionPolicy,
    Workload,
    WorkloadMonitor,
)


def measured_workload_cost(db, workload):
    """Actually execute every query and sum measured CPU seconds."""
    from repro.executor import Executor

    executor = Executor(db)
    total = 0.0
    for query in workload:
        result = executor.execute(query.sql)
        total += query.weight * result.metrics.cpu_seconds(db.params)
    return total


def test_bootstrap_recommendation_improves_measured_execution(db):
    """The headline loop: monitor -> recommend -> materialize -> faster."""
    workload = Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 20.0),
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'c1'", 10.0),
        ("SELECT created FROM orders ORDER BY created DESC LIMIT 10", 10.0),
    ])
    before = measured_workload_cost(db, workload)
    recommendation = AimAdvisor(db).recommend(workload, budget_bytes=20 << 20)
    assert recommendation.created
    for index in recommendation.indexes:
        db.create_index(index)
    after = measured_workload_cost(db, workload)
    assert after < before * 0.7


def test_monitor_driven_end_to_end(db):
    """Replay traffic through the monitored executor, tune from the
    monitor, verify the new indexes get used."""
    monitored = MonitoredExecutor(db)
    hot = "SELECT amount FROM orders WHERE created < {}"
    for i in range(20):
        monitored.execute(hot.format(5000 + i * 10))
    advisor = AimAdvisor(db, monitor=monitored.monitor)
    rec = advisor.recommend_from_monitor(
        budget_bytes=20 << 20,
        policy=SelectionPolicy(min_executions=2, min_benefit=0.001),
    )
    assert rec.created
    for index in rec.indexes:
        db.create_index(index)
    result = monitored.execute(hot.format(9000))
    assert result.plan.used_indexes


def test_continuous_tuning_reacts_to_workload_shift(db):
    """Sec. VI-D: a new code push introduces an unindexed hot query; the
    next tuning cycle fixes it."""
    monitored = MonitoredExecutor(db)
    tuner = ContinuousTuner(
        db, budget_bytes=30 << 20, monitor=monitored.monitor,
        selection=SelectionPolicy(min_executions=2, min_benefit=0.001),
    )
    for i in range(10):
        monitored.execute(f"SELECT amount FROM orders WHERE created < {9000 + i}")
    first = tuner.run_cycle()
    assert first.changed

    # The shift: new endpoint filtering users by score.
    monitored.monitor.clear()
    for i in range(10):
        monitored.execute(f"SELECT name FROM users WHERE score = {50 + i % 3}")
    second = tuner.run_cycle()
    created = {i.name for i in second.created}
    assert any("score" in name for name in created)
    # And the query now uses it.
    result = monitored.execute("SELECT name FROM users WHERE score = 51")
    assert result.plan.used_indexes


def test_estimated_improvements_track_measured_ones(db):
    """Cost-model validation: the optimizer's predicted improvement ratio
    for an index agrees in direction and rough magnitude with measured
    execution (keeps the simulator honest)."""
    from repro.catalog import Index
    from repro.executor import Executor
    from repro.optimizer import CostEvaluator

    sql = "SELECT amount FROM orders WHERE created < 10000"
    ev = CostEvaluator(db)
    est_before = ev.cost(sql)
    est_after = ev.cost(sql, [Index("orders", ("created", "amount"), dataless=True)])

    executor = Executor(db)
    measured_before = executor.execute(sql).metrics.cpu_seconds(db.params)
    db.create_index(Index("orders", ("created", "amount")))
    measured_after = executor.execute(sql).metrics.cpu_seconds(db.params)

    est_ratio = est_after / est_before
    measured_ratio = measured_after / measured_before
    assert measured_ratio < 0.5          # the index clearly helps for real
    assert est_ratio < 0.5               # ... and the model predicts that
    assert est_ratio == pytest.approx(measured_ratio, abs=0.35)


def test_aim_vs_greedy_on_join_workload(db):
    """Sec. VI-C's claim in miniature: on join-heavy workloads AIM's
    coordinated candidates match or beat one-column-at-a-time greedy."""
    workload = Workload.from_sql([
        ("SELECT u.name, o.amount FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.status = 'paid' AND o.amount < 50 "
         "AND u.city = 'c2'", 10.0),
        ("SELECT u.name, o.created FROM users u, orders o "
         "WHERE u.id = o.user_id AND o.created < 40000 AND u.age > 70", 10.0),
    ])
    aim = AimAlgorithm(db).select(workload, 20 << 20)
    greedy = ExtendAlgorithm(db).select(workload, 20 << 20)
    # The paper's claim is *comparable* quality at a fraction of the
    # optimizer calls (AIM trades solution granularity for convergence).
    assert aim.cost_after <= greedy.cost_after * 1.5
    assert aim.optimizer_calls < greedy.optimizer_calls / 3


def test_no_regression_guarantee_under_validation(db):
    """Every SELECT's estimated cost under the recommendation stays within
    (1 + λ3) of its baseline (Eq. 4)."""
    from repro.optimizer import CostEvaluator

    workload = Workload.from_sql([
        ("SELECT amount FROM orders WHERE created < 10000", 20.0),
        ("SELECT name FROM users WHERE city = 'c3' AND age > 75", 10.0),
        ("UPDATE orders SET amount = 5 WHERE oid = 3", 100.0),
    ])
    config = AimConfig(lambda3=0.1)
    rec = AimAdvisor(db, config).recommend(workload, 20 << 20)
    ev = CostEvaluator(db)
    for query in workload:
        if query.is_dml:
            continue
        base = ev.cost(query.sql)
        with_rec = ev.cost(query.sql, rec.indexes)
        assert with_rec <= base * 1.1 + 1e-9
