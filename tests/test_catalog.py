"""Catalog tests: types, tables, indexes, schemas."""

import pytest

from repro.catalog import (
    BIGINT,
    CatalogError,
    Column,
    INT,
    Index,
    Schema,
    Table,
    TypeKind,
    char,
    varchar,
)


def make_table():
    return Table(
        "t",
        [Column("id", BIGINT), Column("a", INT), Column("b", varchar(16))],
        ("id",),
    )


def test_type_widths():
    assert INT.width == 4
    assert BIGINT.width == 8
    assert varchar(33).width == 33
    assert char(5).kind is TypeKind.STRING


def test_table_row_width_includes_overhead():
    t = make_table()
    assert t.row_width == 8 + 4 + 16 + t.row_overhead


def test_table_pk_width():
    assert make_table().pk_width == 8


def test_table_column_lookup_and_error():
    t = make_table()
    assert t.column("a").ctype is INT
    assert t.has_column("b")
    with pytest.raises(CatalogError):
        t.column("missing")


def test_table_duplicate_columns_rejected():
    with pytest.raises(CatalogError):
        Table("t", [Column("a", INT), Column("a", INT)], ("a",))


def test_table_requires_primary_key():
    with pytest.raises(CatalogError):
        Table("t", [Column("a", INT)], ())
    with pytest.raises(CatalogError):
        Table("t", [Column("a", INT)], ("missing",))


def test_index_name_deterministic():
    idx = Index("t", ("a", "b"))
    assert idx.name == "idx_t_a_b"
    assert idx.width == 2


def test_index_rejects_empty_and_duplicates():
    with pytest.raises(ValueError):
        Index("t", ())
    with pytest.raises(ValueError):
        Index("t", ("a", "a"))


def test_index_prefix_relation():
    narrow = Index("t", ("a",))
    wide = Index("t", ("a", "b"))
    other = Index("t", ("b", "a"))
    assert narrow.is_prefix_of(wide)
    assert wide.is_prefix_of(wide)
    assert not wide.is_prefix_of(narrow)
    assert not narrow.is_prefix_of(other)
    assert not narrow.is_prefix_of(Index("u", ("a", "b")))


def test_index_dataless_transitions():
    idx = Index("t", ("a",), dataless=True)
    assert idx.materialized().dataless is False
    assert idx.materialized().name == idx.name
    assert idx.materialized().as_dataless() == idx


def test_index_entry_width_excludes_pk_duplicates():
    t = make_table()
    with_pk = Index("t", ("a",))
    including_pk = Index("t", ("a", "id"))
    # Both carry key + pk exactly once.
    assert with_pk.entry_width(t) == including_pk.entry_width(t)


def test_schema_add_and_lookup():
    schema = Schema.from_tables([make_table()])
    assert schema.table("t").name == "t"
    with pytest.raises(CatalogError):
        schema.table("nope")
    with pytest.raises(CatalogError):
        schema.add_table(make_table())


def test_schema_index_validation():
    schema = Schema.from_tables([make_table()])
    with pytest.raises(CatalogError):
        schema.add_index(Index("t", ("missing",)))
    with pytest.raises(CatalogError):
        schema.add_index(Index("unknown", ("a",)))


def test_schema_index_lifecycle():
    schema = Schema.from_tables([make_table()])
    idx = Index("t", ("a",), dataless=True)
    schema.add_index(idx)
    assert schema.has_index(idx)
    assert len(schema.indexes("t")) == 1
    assert schema.indexes("t", include_dataless=False) == []
    # Materializing upgrades in place.
    schema.add_index(idx.materialized())
    assert schema.indexes("t", include_dataless=False)[0].dataless is False
    schema.drop_index(idx)
    assert not schema.has_index(idx)


def test_schema_clear_dataless():
    schema = Schema.from_tables([make_table()])
    schema.add_index(Index("t", ("a",), dataless=True))
    schema.add_index(Index("t", ("b",)))
    schema.clear_dataless()
    names = [i.name for i in schema.indexes()]
    assert names == ["idx_t_b"]


def test_schema_copy_isolates_indexes():
    schema = Schema.from_tables([make_table()])
    clone = schema.copy()
    clone.add_index(Index("t", ("a",)))
    assert schema.indexes() == []
    assert len(clone.indexes()) == 1
