"""TPC-DS workload package tests."""

import pytest

from repro.optimizer import CostEvaluator
from repro.workloads.tpcds import row_counts, tpcds_database, tpcds_workload


@pytest.fixture(scope="module")
def dsdb():
    return tpcds_database(scale_factor=10)


def test_row_counts_scale():
    sf1 = row_counts(1)
    sf10 = row_counts(10)
    assert sf10["store_sales"] == 10 * sf1["store_sales"]
    assert sf10["date_dim"] == sf1["date_dim"]       # fixed dimension
    assert sf10["customer_demographics"] == sf1["customer_demographics"]


def test_schema_tables(dsdb):
    assert len(dsdb.schema.tables) == 11
    assert dsdb.stats.row_count("store_sales") == 28_804_040


def test_all_queries_parse_and_plan(dsdb):
    workload = tpcds_workload()
    assert len(workload) == 15
    evaluator = CostEvaluator(dsdb)
    for query in workload:
        assert evaluator.cost(query.sql) > 0, query.name


def test_queries_are_star_joins(dsdb):
    evaluator = CostEvaluator(dsdb)
    joins = 0
    for query in tpcds_workload():
        info = evaluator.analyze(query.sql)
        if info.is_join_query:
            joins += 1
            assert info.join_edges
    assert joins >= 12


def test_aim_improves_tpcds(dsdb):
    """The paper: TPC-DS "followed the same trend" as TPC-H/JOB."""
    from repro.baselines import AimAlgorithm

    result = AimAlgorithm(dsdb).select(tpcds_workload(), 10 << 30)
    assert result.relative_cost < 0.8
    assert result.runtime_seconds < 30
