"""IPP relaxation tests (paper Sec. V-A, third granularity lever)."""

import pytest

from repro.catalog import Column, INT, Schema, Table
from repro.core import CandidateGenerator, GeneratorConfig, MODE_NON_COVERING
from repro.optimizer import analyze_query
from repro.sqlparser import parse
from repro.stats import StatsCatalog, SyntheticColumn, synthesize_table


@pytest.fixture(scope="module")
def schema():
    table = Table(
        "t",
        [Column("id", INT), Column("hi_ndv", INT), Column("mid_ndv", INT),
         Column("lo_ndv", INT), Column("tiny_ndv", INT)],
        ("id",),
    )
    return Schema.from_tables([table])


@pytest.fixture(scope="module")
def stats():
    catalog = StatsCatalog()
    catalog.set_table("t", synthesize_table(1_000_000, {
        "id": SyntheticColumn(ndv=-1, lo=1, hi=1_000_000),
        "hi_ndv": SyntheticColumn(ndv=100_000),
        "mid_ndv": SyntheticColumn(ndv=1_000),
        "lo_ndv": SyntheticColumn(ndv=10),
        "tiny_ndv": SyntheticColumn(ndv=2),
    }))
    return catalog


SQL = (
    "SELECT id FROM t WHERE hi_ndv = 1 AND mid_ndv = 2 "
    "AND lo_ndv = 3 AND tiny_ndv = 4"
)


def orders_for(schema, stats, threshold):
    gen = CandidateGenerator(
        schema, stats, GeneratorConfig(ipp_relaxation_rows=threshold)
    )
    info = analyze_query(parse(SQL), schema)
    return gen.generate_for_query(info, MODE_NON_COVERING)


def test_no_relaxation_keeps_all_ipp_columns(schema, stats):
    orders = orders_for(schema, stats, None)
    widths = {po.width for po in orders}
    assert 4 in widths


def test_relaxation_drops_redundant_columns(schema, stats):
    """hi_ndv alone matches ~10 rows; with threshold 100 the other three
    columns add width without additive selectivity and are dropped."""
    orders = orders_for(schema, stats, 100.0)
    assert all(po.width <= 2 for po in orders)
    assert any(po.columns == {"hi_ndv"} for po in orders)


def test_relaxation_keeps_enough_columns_for_target(schema, stats):
    """With threshold 1, one column (10 rows) is not enough: the next
    most selective column joins until ~1 row is reached."""
    orders = orders_for(schema, stats, 1.0)
    widest = max(po.width for po in orders)
    assert widest >= 2
    assert any({"hi_ndv", "mid_ndv"} <= po.columns for po in orders)


def test_relaxation_never_empties_the_prefix(schema, stats):
    orders = orders_for(schema, stats, 1e12)   # absurdly lax threshold
    assert all(po.width >= 1 for po in orders)


def test_relaxation_smaller_candidates_same_query_service(schema, stats):
    """The relaxed candidate still serves the query (its columns are a
    subset of the query's IPP columns)."""
    orders = orders_for(schema, stats, 100.0)
    query_cols = {"hi_ndv", "mid_ndv", "lo_ndv", "tiny_ndv"}
    assert all(po.columns <= query_cols for po in orders)


def test_advisor_config_plumbs_through(db):
    from repro.core import AimAdvisor, AimConfig
    from repro.workload import Workload

    w = Workload.from_sql(
        [("SELECT name FROM users WHERE city = 'c1' AND age = 30", 10.0)]
    )
    relaxed = AimAdvisor(
        db, AimConfig(ipp_relaxation_rows=1000.0, covering_phase=False)
    ).recommend(w, 50 << 20)
    # city alone leaves ~50 rows <= 1000: the age column is dropped.
    assert all(idx.width == 1 for idx in relaxed.indexes)
