"""Synthetic production workload (Products A-G) tests."""

import pytest

from repro.optimizer import CostEvaluator
from repro.workloads.production import (
    PRODUCTS,
    build_product,
    dba_index_set,
    jaccard_similarity,
)


@pytest.fixture(scope="module")
def product_f():
    return build_product(PRODUCTS["F"])


def test_table_counts_match_table_ii():
    assert PRODUCTS["A"].tables == 147
    assert PRODUCTS["B"].join_queries == 733
    assert PRODUCTS["F"].tables == 5
    assert len(PRODUCTS) == 7


def test_product_generation_is_deterministic():
    a = build_product(PRODUCTS["F"])
    b = build_product(PRODUCTS["F"])
    assert [q.sql for q in a.workload] == [q.sql for q in b.workload]
    assert a.db.stats.row_count("t0") == b.db.stats.row_count("t0")


def test_schema_shape(product_f):
    assert len(product_f.db.schema.tables) == 5
    for table in product_f.db.schema:
        assert table.primary_key == ("id",)
        assert product_f.db.stats.row_count(table.name) > 0


def test_workload_queries_all_plan(product_f):
    evaluator = CostEvaluator(product_f.db)
    for query in product_f.workload:
        assert evaluator.cost(query.sql) > 0


def test_join_query_count_respected(product_f):
    join_queries = [
        q for q in product_f.workload
        if not q.is_dml and len(
            CostEvaluator(product_f.db).analyze(q.sql).bindings
        ) > 1
    ]
    # Some join walks may degrade to single-table; most survive.
    assert len(join_queries) >= PRODUCTS["F"].join_queries * 0.5


def test_write_heavy_products_have_more_dml():
    d = build_product(PRODUCTS["D"])   # write heavy
    f = build_product(PRODUCTS["F"])   # read heavy
    frac_d = sum(q.is_dml for q in d.workload) / len(d.workload)
    frac_f = sum(q.is_dml for q in f.workload) / len(f.workload)
    assert frac_d > frac_f


def test_weights_are_zipf_skewed(product_f):
    weights = sorted((q.weight for q in product_f.workload), reverse=True)
    assert weights[0] > 10 * weights[len(weights) // 2]


def test_dba_index_set_properties(product_f):
    dba = dba_index_set(product_f, budget_bytes=1 << 30)
    assert dba
    names = [i.name for i in dba]
    assert len(names) == len(set(names))
    assert all(not i.dataless for i in dba)
    # FK habit: at least one pure FK index.
    fk_columns = {fk for _c, fk, _p in product_f.fk_edges}
    assert any(i.columns[0] in fk_columns and i.width == 1 for i in dba)


def test_jaccard_similarity_bounds(product_f):
    from repro.catalog import Index

    a = [Index("t0", ("c0",)), Index("t0", ("c1",))]
    b = [Index("t0", ("c0",))]
    assert jaccard_similarity(a, a) == 1.0
    assert jaccard_similarity(a, b) == pytest.approx(0.5)
    assert jaccard_similarity([], []) == 1.0
    assert jaccard_similarity(a, []) == 0.0


def test_aim_matches_dba_with_fewer_indexes(product_f):
    """The Table II pattern: comparable cost, fewer/smaller indexes."""
    from repro.baselines import AimAlgorithm

    budget = 1 << 30
    aim = AimAlgorithm(product_f.db).select(product_f.workload, budget)
    dba = dba_index_set(product_f, budget)
    evaluator = CostEvaluator(product_f.db)
    dba_cost = evaluator.workload_cost(product_f.workload.pairs(), dba)
    assert aim.cost_after <= dba_cost * 1.25
    dba_size = sum(product_f.db.index_size_bytes(i) for i in dba)
    # Comparable storage footprint (the Table II bench reports per-product
    # numbers; AIM's covering indexes can be individually wider).
    assert aim.total_size_bytes <= dba_size * 2.0
    assert 0 < jaccard_similarity(aim.indexes, dba) < 1.0
