"""Database facade tests."""

import pytest

from repro.catalog import Index
from repro.engine import Database, INNODB, INNODB_HDD, ROCKSDB

from .conftest import make_user_rows, users_table


def test_load_and_analyze(db):
    assert db.stats.row_count("users") == 500
    assert db.stats.row_count("orders") == 3000
    assert db.stats.table("users").column("city").ndv == 10


def test_create_materialized_index_builds_structure(db):
    idx = db.create_index(Index("users", ("city",)))
    storage = db.storage["users"]
    assert storage.get_index(idx.name) is not None


def test_create_dataless_index_skips_storage(db):
    idx = db.create_index(Index("users", ("city",), dataless=True))
    assert db.storage["users"].get_index(idx.name) is None
    assert db.schema.has_index(idx)


def test_drop_index(indexed_db):
    indexed_db.drop_index("idx_users_city_age")
    assert indexed_db.schema.get_index("idx_users_city_age") is None
    assert indexed_db.storage["users"].get_index("idx_users_city_age") is None


def test_drop_all_secondary_indexes(indexed_db):
    dropped = indexed_db.drop_all_secondary_indexes()
    assert len(dropped) == 3
    assert indexed_db.schema.indexes() == []


def test_clear_dataless(db):
    db.create_index(Index("users", ("city",), dataless=True))
    db.create_index(Index("users", ("age",)))
    db.clear_dataless()
    assert [i.name for i in db.schema.indexes()] == ["idx_users_age"]


def test_index_size_scales_with_rows_and_width(db):
    narrow = db.index_size_bytes(Index("users", ("age",)))
    wide = db.index_size_bytes(Index("users", ("age", "name")))
    assert 0 < narrow < wide
    assert db.total_secondary_index_bytes() == 0


def test_table_size_bytes(db):
    assert db.table_size_bytes("users") > 0


def test_stats_clone_shares_stats_owns_indexes(db):
    clone = db.stats_clone()
    clone.create_index(Index("users", ("city",), dataless=True))
    assert db.schema.indexes() == []
    assert clone.stats is db.stats
    assert clone.storage is None


def test_full_clone_copies_rows(db):
    db.create_index(Index("users", ("city",)))
    clone = db.full_clone()
    assert clone.storage["users"].row_count == 500
    assert clone.storage["users"].get_index("idx_users_city") is not None
    # Mutating the clone leaves the source untouched.
    clone.storage["users"].delete_row(next(iter(clone.storage["users"].rows)))
    assert db.storage["users"].row_count == 500


def test_stats_only_database_rejects_loads():
    stats_db = Database.from_tables([users_table()], with_storage=False)
    with pytest.raises(RuntimeError):
        stats_db.load_rows("users", make_user_rows(3))
    with pytest.raises(RuntimeError):
        stats_db.analyze()


def test_engine_profiles_differ():
    assert ROCKSDB.write_amplification < INNODB.write_amplification
    assert INNODB_HDD.random_page_cost > INNODB.random_page_cost


def test_pages_for_and_btree_height():
    assert INNODB.pages_for(0, 100) == 0
    assert INNODB.pages_for(1, 100) == 1
    assert INNODB.pages_for(10_000, INNODB.page_size) == 10_000
    assert INNODB.btree_height(1) == 1
    assert INNODB.btree_height(10_000_000) >= 2
