"""Lexer unit tests."""

import pytest

from repro.sqlparser.lexer import LexError, tokenize
from repro.sqlparser.tokens import TokenKind


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


def test_keywords_are_canonicalized_upper():
    assert texts("select From WHERE") == ["SELECT", "FROM", "WHERE"]
    assert all(k is TokenKind.KEYWORD for k in kinds("select from where"))


def test_identifiers_keep_case():
    tokens = tokenize("lineItem l_shipdate")
    assert tokens[0].text == "lineItem"
    assert tokens[1].text == "l_shipdate"
    assert tokens[0].kind is TokenKind.IDENT


def test_integer_and_float_numbers():
    assert texts("1 42 3.14 .5 1e6 2.5E-3") == ["1", "42", "3.14", ".5", "1e6", "2.5E-3"]
    assert all(k is TokenKind.NUMBER for k in kinds("1 3.14 1e6"))


def test_single_quoted_string_with_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].kind is TokenKind.STRING
    assert tokens[0].text == "it's"


def test_double_quoted_string():
    assert tokenize('"hello"')[0].text == "hello"


def test_backquoted_identifier():
    token = tokenize("`select`")[0]
    assert token.kind is TokenKind.IDENT
    assert token.text == "select"


def test_param_placeholder():
    assert tokenize("?")[0].kind is TokenKind.PARAM


def test_multi_char_operators_lex_greedily():
    assert texts("<=> <> <= >= != ||") == ["<=>", "<>", "<=", ">=", "!=", "||"]


def test_single_char_symbols():
    assert texts("( ) , . ; * + - / %") == list("(),.;*+-/%")


def test_line_comment_skipped():
    assert texts("SELECT -- comment\n 1") == ["SELECT", "1"]


def test_block_comment_skipped():
    assert texts("SELECT /* anything * here */ 1") == ["SELECT", "1"]


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("SELECT @")


def test_eof_token_always_present():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_token_helpers():
    token = tokenize("SELECT")[0]
    assert token.is_keyword("SELECT", "FROM")
    assert not token.is_keyword("FROM")
    sym = tokenize("(")[0]
    assert sym.is_symbol("(", ")")
    assert not sym.is_symbol(")")
