"""Workload, monitor and representative selection tests (Sec. III-C)."""

import pytest

from repro.engine import ExecutionMetrics
from repro.workload import (
    MonitoredExecutor,
    QueryStatistics,
    SelectionPolicy,
    Workload,
    WorkloadMonitor,
    WorkloadQuery,
    select_representative_workload,
    tuning_targets,
)


def test_workload_from_sql_with_weights():
    w = Workload.from_sql([("SELECT a FROM t", 5.0), "SELECT b FROM t"])
    assert w.queries[0].weight == 5.0
    assert w.queries[1].weight == 1.0
    assert w.total_weight == 6.0
    assert len(w) == 2


def test_workload_query_is_dml():
    assert WorkloadQuery("INSERT INTO t (a) VALUES (1)").is_dml
    assert not WorkloadQuery("SELECT a FROM t").is_dml


def test_selects_only():
    w = Workload.from_sql(["SELECT a FROM t", "DELETE FROM t WHERE a = 1"])
    assert len(w.selects_only()) == 1


def test_query_statistics_ddr_and_benefit():
    """Eq. 5: B = (1 - ddr) * cpu_avg with ddr = sent/read."""
    stats = QueryStatistics("q")
    stats.record(cpu=10.0, rows_read=1000, rows_sent=100)
    assert stats.ddr_avg == pytest.approx(0.1)
    assert stats.cpu_avg == pytest.approx(10.0)
    assert stats.expected_benefit == pytest.approx(0.9 * 10.0)


def test_efficient_query_has_low_benefit():
    stats = QueryStatistics("q")
    stats.record(cpu=10.0, rows_read=100, rows_sent=100)
    assert stats.expected_benefit == pytest.approx(0.0)


def test_statistics_merge_across_replicas():
    a = QueryStatistics("q", executions=2, total_cpu=10, rows_read=100, rows_sent=10)
    b = QueryStatistics("q", executions=3, total_cpu=20, rows_read=200, rows_sent=20)
    a.merge(b)
    assert a.executions == 5
    assert a.total_cpu == 30
    with pytest.raises(ValueError):
        a.merge(QueryStatistics("other"))


def test_monitor_groups_by_normalized_sql():
    monitor = WorkloadMonitor()
    m = ExecutionMetrics(rows_read=100, rows_sent=10)
    monitor.record_execution("SELECT a FROM t WHERE x = 1", m, 1.0)
    monitor.record_execution("SELECT a FROM t WHERE x = 2", m, 3.0)
    assert len(monitor.stats) == 1
    entry = next(iter(monitor.stats.values()))
    assert entry.executions == 2
    assert entry.cpu_avg == pytest.approx(2.0)
    assert entry.example_sql == "SELECT a FROM t WHERE x = 1"


def test_monitor_top_by_benefit_ordering():
    monitor = WorkloadMonitor()
    wasteful = ExecutionMetrics(rows_read=1000, rows_sent=1)
    efficient = ExecutionMetrics(rows_read=10, rows_sent=10)
    monitor.record_execution("SELECT a FROM t WHERE x = 1", wasteful, 10.0)
    monitor.record_execution("SELECT b FROM t WHERE y = 1", efficient, 10.0)
    top = monitor.top_by_benefit()
    assert "x" in top[0].normalized_sql


def test_monitor_merge():
    m1, m2 = WorkloadMonitor(), WorkloadMonitor()
    metrics = ExecutionMetrics(rows_read=10, rows_sent=1)
    m1.record_execution("SELECT a FROM t WHERE x = 1", metrics, 1.0)
    m2.record_execution("SELECT a FROM t WHERE x = 9", metrics, 1.0)
    m2.record_execution("SELECT b FROM u WHERE y = 1", metrics, 1.0)
    m1.merge(m2)
    assert len(m1.stats) == 2
    assert next(
        s for s in m1.stats.values() if "t" in s.normalized_sql
    ).executions == 2


def test_selection_frequency_threshold():
    monitor = WorkloadMonitor()
    m = ExecutionMetrics(rows_read=1000, rows_sent=1)
    monitor.record_execution("SELECT a FROM t WHERE x = 1", m, 100.0)  # once
    policy = SelectionPolicy(min_executions=2, min_benefit=0.01)
    assert len(select_representative_workload(monitor, policy)) == 0


def test_selection_benefit_threshold():
    monitor = WorkloadMonitor()
    cheap = ExecutionMetrics(rows_read=1000, rows_sent=1)
    for _ in range(10):
        monitor.record_execution("SELECT a FROM t WHERE x = 1", cheap, 0.0001)
    policy = SelectionPolicy(min_executions=2, min_benefit=0.05)
    assert len(select_representative_workload(monitor, policy)) == 0


def test_selection_weights_are_execution_counts():
    monitor = WorkloadMonitor()
    m = ExecutionMetrics(rows_read=1000, rows_sent=1)
    for _ in range(7):
        monitor.record_execution("SELECT a FROM t WHERE x = 1", m, 10.0)
    workload = select_representative_workload(
        monitor, SelectionPolicy(min_executions=2, min_benefit=0.01)
    )
    assert workload.queries[0].weight == 7.0


def test_selection_carries_dml_with_zero_benefit_role():
    monitor = WorkloadMonitor()
    m = ExecutionMetrics(rows_read=1000, rows_sent=1)
    for _ in range(5):
        monitor.record_execution("SELECT a FROM t WHERE x = 1", m, 10.0)
        monitor.record_execution(
            "UPDATE t SET a = 1 WHERE x = 2", ExecutionMetrics(), 0.5
        )
    workload = select_representative_workload(
        monitor, SelectionPolicy(min_executions=2, min_benefit=0.01)
    )
    assert any(q.is_dml for q in workload)
    without_dml = select_representative_workload(
        monitor, SelectionPolicy(min_executions=2, min_benefit=0.01),
        include_dml=False,
    )
    assert not any(q.is_dml for q in without_dml)


def test_selection_max_queries_cap():
    monitor = WorkloadMonitor()
    m = ExecutionMetrics(rows_read=1000, rows_sent=1)
    for i in range(10):
        for _ in range(5):
            monitor.record_execution(f"SELECT a FROM t WHERE x = {i} AND y{i} = 1", m, 10.0)
    policy = SelectionPolicy(min_executions=2, min_benefit=0.01, max_queries=3)
    assert len(tuning_targets(monitor, policy)) == 3


def test_monitored_executor_records(db):
    monitored = MonitoredExecutor(db)
    monitored.execute("SELECT name FROM users WHERE city = 'c1'")
    assert len(monitored.monitor.stats) == 1
    entry = next(iter(monitored.monitor.stats.values()))
    assert entry.rows_read == 500
    assert entry.total_cpu > 0
