"""The bundled examples/cli_files/ pair stays valid CLI input."""

import json
import pathlib

from repro.cli import main

FILES = pathlib.Path(__file__).parent.parent / "examples" / "cli_files"


def test_bundled_cli_files_produce_a_recommendation(capsys):
    rc = main([
        "--schema", str(FILES / "schema.sql"),
        "--workload", str(FILES / "workload.sql"),
        "--budget", "1GiB",
        "--rows", "orders=2000000",
        "--rows", "users=100000",
        "--format", "json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["indexes"], "the bundled workload must be tunable"
    assert payload["improvement"] > 0.3
    tables = {idx["table"] for idx in payload["indexes"]}
    assert "orders" in tables
