"""Query analysis (QueryInfo) tests -- Table I's structural metadata."""

import pytest

from repro.catalog import Schema
from repro.optimizer import analyze_query
from repro.optimizer.query_info import ResolutionError
from repro.sqlparser import parse

from .conftest import orders_table, users_table


@pytest.fixture(scope="module")
def schema():
    return Schema.from_tables([users_table(), orders_table()])


def analyze(sql, schema):
    return analyze_query(parse(sql), schema)


def test_bindings_with_aliases(schema):
    info = analyze("SELECT u.name FROM users u, orders o WHERE u.id = o.user_id", schema)
    assert info.bindings == {"u": "users", "o": "orders"}


def test_unqualified_column_resolution(schema):
    info = analyze("SELECT name FROM users WHERE age > 5", schema)
    assert info.filters["users"][0].column.column == "age"


def test_ambiguous_column_raises():
    from repro.catalog import Column, INT, Table

    t1 = Table("t1", [Column("id", INT), Column("x", INT)], ("id",))
    t2 = Table("t2", [Column("id", INT), Column("x", INT)], ("id",))
    s = Schema.from_tables([t1, t2])
    with pytest.raises(ResolutionError):
        analyze("SELECT x FROM t1, t2 WHERE t1.id = t2.id", s)


def test_unknown_column_raises(schema):
    with pytest.raises(ResolutionError):
        analyze("SELECT nothere FROM users", schema)


def test_join_edges_from_where_and_on(schema):
    info = analyze(
        "SELECT u.name FROM users u JOIN orders o ON u.id = o.user_id", schema
    )
    assert len(info.join_edges) == 1
    edge = info.join_edges[0]
    assert edge.other("u") == ("o", "user_id")
    assert edge.column_of("o") == "user_id"
    assert info.joined_bindings("u") == {"o"}


def test_filters_vs_join_separation(schema):
    info = analyze(
        "SELECT u.name FROM users u, orders o "
        "WHERE u.id = o.user_id AND o.status = 'paid' AND u.age > 30",
        schema,
    )
    assert len(info.join_edges) == 1
    assert [p.op for p in info.filters["o"]] == ["="]
    assert [p.op for p in info.filters["u"]] == [">"]


def test_complex_conjunct_bucketing(schema):
    info = analyze(
        "SELECT name FROM users WHERE (age > 30 OR score > 50) AND city = 'c1'",
        schema,
    )
    assert len(info.filters["users"]) == 1     # city atomic
    assert len(info.complex_conjuncts) == 1
    touched, _expr = info.complex_conjuncts[0]
    assert touched == frozenset({"users"})


def test_group_by_and_order_by_resolution(schema):
    info = analyze(
        "SELECT city, COUNT(*) FROM users GROUP BY city ORDER BY city DESC",
        schema,
    )
    assert info.group_by == [("users", "city")]
    assert info.order_by[0].column == "city"
    assert info.order_by[0].desc


def test_referenced_columns_cover_all_clauses(schema):
    info = analyze(
        "SELECT name FROM users WHERE age > 1 GROUP BY city ORDER BY score",
        schema,
    )
    assert info.referenced["users"] == {"name", "age", "city", "score"}


def test_select_star_references_everything(schema):
    info = analyze("SELECT * FROM users", schema)
    assert info.select_star
    assert info.referenced["users"] == set(users_table().column_names)


def test_straight_join_flag(schema):
    info = analyze(
        "SELECT u.name FROM users u STRAIGHT_JOIN orders o ON u.id = o.user_id",
        schema,
    )
    assert info.straight_join


def test_limit_captured(schema):
    info = analyze("SELECT name FROM users LIMIT 7", schema)
    assert info.limit == 7


def test_dml_update_analysis(schema):
    info = analyze("UPDATE orders SET status = 'x' WHERE oid = 5", schema)
    assert info.bindings == {"orders": "orders"}
    assert info.filters["orders"][0].column.column == "oid"
    assert "status" in info.referenced["orders"]


def test_dml_insert_analysis(schema):
    info = analyze("INSERT INTO users (id, age) VALUES (1, 2)", schema)
    assert info.referenced["users"] == {"id", "age"}


def test_sargable_filters_excludes_residuals(schema):
    info = analyze("SELECT name FROM users WHERE age != 5 AND city = 'a'", schema)
    assert [p.op for p in info.sargable_filters("users")] == ["="]


def test_duplicate_binding_raises(schema):
    with pytest.raises(ResolutionError):
        analyze("SELECT u.name FROM users u, orders u", schema)


def test_is_join_query(schema):
    single = analyze("SELECT name FROM users", schema)
    multi = analyze("SELECT u.name FROM users u, orders o WHERE u.id = o.user_id", schema)
    assert not single.is_join_query
    assert multi.is_join_query
