"""ExecutionMetrics tests."""

import pytest

from repro.engine import ExecutionMetrics, INNODB


def test_cpu_seconds_components():
    m = ExecutionMetrics(seq_pages=10, rows_read=100)
    expected = 10 * INNODB.seq_page_cost + 100 * INNODB.cpu_tuple_cost
    assert m.cpu_seconds(INNODB) == pytest.approx(expected)


def test_random_pages_cost_more_than_seq():
    seq = ExecutionMetrics(seq_pages=10).cpu_seconds(INNODB)
    rand = ExecutionMetrics(random_pages=10).cpu_seconds(INNODB)
    assert rand > seq


def test_sort_cost_is_n_log_n():
    small = ExecutionMetrics(sort_rows=100).cpu_seconds(INNODB)
    big = ExecutionMetrics(sort_rows=10_000).cpu_seconds(INNODB)
    assert big > 100 * small / 100   # super-linear
    assert ExecutionMetrics(sort_rows=1).cpu_seconds(INNODB) == 0


def test_write_amplification_scales_maintenance():
    m = ExecutionMetrics(index_entries_written=10)
    innodb_cost = m.cpu_seconds(INNODB)
    from repro.engine import ROCKSDB

    assert m.cpu_seconds(ROCKSDB) < innodb_cost


def test_discarded_data_ratio_definition():
    """Paper Sec. III-A2: ddr = data sent / data read."""
    m = ExecutionMetrics(rows_read=100, rows_sent=10)
    assert m.discarded_data_ratio() == pytest.approx(0.1)
    assert ExecutionMetrics().discarded_data_ratio() == 1.0
    clamped = ExecutionMetrics(rows_read=10, rows_sent=100)
    assert clamped.discarded_data_ratio() == 1.0


def test_merge_accumulates():
    a = ExecutionMetrics(rows_read=5, seq_pages=1)
    b = ExecutionMetrics(rows_read=7, random_pages=2, rows_sent=3)
    a.merge(b)
    assert a.rows_read == 12
    assert a.random_pages == 2
    assert a.rows_sent == 3
