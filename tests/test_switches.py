"""Optimizer switch tests (paper Sec. VIII-a)."""

import pytest

from repro.catalog import Column, INT, Index, Table, varchar
from repro.core import AimAdvisor, CandidateGenerator, GeneratorConfig, MODE_NON_COVERING
from repro.engine import Database
from repro.executor import Executor
from repro.optimizer import CostEvaluator, Optimizer, OptimizerSwitches, analyze_query
from repro.sqlparser import parse
from repro.stats import StatsCatalog, SyntheticColumn, synthesize_table
from repro.workload import Workload


@pytest.fixture()
def skip_db():
    """A table where (gender, score) exists but queries filter score only."""
    table = Table(
        "people",
        [Column("id", INT), Column("gender", varchar(1)),
         Column("score", INT), Column("name", varchar(20))],
        ("id",),
    )
    db = Database.from_tables([table], with_storage=False)
    db.set_stats("people", synthesize_table(1_000_000, {
        "id": SyntheticColumn(ndv=-1, lo=1, hi=1_000_000),
        "gender": SyntheticColumn(ndv=2),
        "score": SyntheticColumn(ndv=500_000, lo=0, hi=1_000_000),
        "name": SyntheticColumn(ndv=-1),
    }))
    db.create_index(Index("people", ("gender", "score")))
    return db


SQL = "SELECT score FROM people WHERE score = 123456"


def test_skip_scan_off_by_default(skip_db):
    plan = Optimizer(skip_db).explain(SQL)
    assert plan.steps[0].path.method == "seq"


def test_skip_scan_enables_index_use(skip_db):
    skip_db.switches = OptimizerSwitches(skip_scan=True)
    plan = Optimizer(skip_db).explain(SQL)
    path = plan.steps[0].path
    assert path.method == "index"
    assert path.skip_scan
    assert not path.order_satisfied


def test_skip_scan_respects_ndv_cap(skip_db):
    skip_db.switches = OptimizerSwitches(skip_scan=True, skip_scan_max_ndv=1)
    plan = Optimizer(skip_db).explain(SQL)
    assert plan.steps[0].path.method == "seq"


def test_skip_scan_cost_scales_with_groups(skip_db):
    skip_db.switches = OptimizerSwitches(skip_scan=True)
    with_two = Optimizer(skip_db).explain(SQL).total_cost
    # Re-synthesize with a higher-NDV leading column: more subranges.
    skip_db.set_stats("people", synthesize_table(1_000_000, {
        "id": SyntheticColumn(ndv=-1, lo=1, hi=1_000_000),
        "gender": SyntheticColumn(ndv=150),
        "score": SyntheticColumn(ndv=500_000, lo=0, hi=1_000_000),
        "name": SyntheticColumn(ndv=-1),
    }))
    with_many = Optimizer(skip_db).explain(SQL).total_cost
    assert with_many > with_two


def test_icp_switch_increases_lookups_when_off(db):
    idx = Index("orders", ("user_id", "status", "amount"), dataless=True)
    ev_on = CostEvaluator(db)
    sql = "SELECT created FROM orders WHERE user_id = 5 AND amount < 100"
    plan_on = ev_on.plan(sql, [idx])
    db.switches = OptimizerSwitches(index_condition_pushdown=False)
    ev_off = CostEvaluator(db)
    plan_off = ev_off.plan(sql, [idx])
    if plan_on.uses_index(idx) and plan_off.uses_index(idx):
        on_path = next(s.path for s in plan_on.steps if s.path.index is not None)
        off_path = next(s.path for s in plan_off.steps if s.path.index is not None)
        assert off_path.lookup_rows >= on_path.lookup_rows


def test_hash_join_switch_forces_nlj(db):
    sql = (
        "SELECT u.name, o.amount FROM users u, orders o "
        "WHERE u.id = o.user_id"
    )
    db.switches = OptimizerSwitches(hash_join=False)
    plan = Optimizer(db).explain(sql)
    assert all(step.join_method != "hash" for step in plan.steps)


def test_skip_scan_execution_correct(indexed_db):
    """Skip-scan plans return exactly the same rows as seq scans."""
    indexed_db.switches = OptimizerSwitches(skip_scan=True, skip_scan_max_ndv=5000)
    executor = Executor(indexed_db)
    # user_id has ~500 NDV; (user_id, status) index, filter on status only.
    result = executor.execute("SELECT COUNT(*) FROM orders WHERE status = 'paid'")
    brute = sum(
        1 for row in indexed_db.storage["orders"].rows.values()
        if row["status"] == "paid"
    )
    assert result.rows[0][0] == brute


def test_candidate_generation_switch_awareness(skip_db):
    """With skip scan ON, a candidate equal to another minus its low-NDV
    leading column is pruned (Sec. VIII-a: fewer candidates)."""
    from repro.core import MODE_COVERING

    # Query a produces the (gender, score) ordering (IPP before ORDER BY);
    # query b's (score) candidate is skip-servable by it.
    queries = [
        ("a", "SELECT score FROM people WHERE gender = 'f' "
              "ORDER BY score LIMIT 5", MODE_COVERING),
        ("b", "SELECT id FROM people WHERE score = 7", MODE_NON_COVERING),
    ]

    def generate(switches):
        gen = CandidateGenerator(
            skip_db.schema, skip_db.stats,
            GeneratorConfig(switches=switches),
        )
        return gen.generate([
            (key, analyze_query(parse(sql), skip_db.schema), mode)
            for key, sql, mode in queries
        ])

    plain = generate(OptimizerSwitches(skip_scan=False))
    aware = generate(OptimizerSwitches(skip_scan=True))
    assert len(aware.indexes) < len(plain.indexes)
    # The pruned narrow index's query is still attributed to the wider one.
    assert all(aware.attribution[key] for key, _sql, _mode in queries)


def test_advisor_with_skip_scan_still_improves(skip_db):
    skip_db.switches = OptimizerSwitches(skip_scan=True)
    w = Workload.from_sql([(SQL, 10.0)])
    rec = AimAdvisor(skip_db).recommend(w, 1 << 30)
    assert rec.cost_after <= rec.cost_before
