"""Tests for the sampling profiler (repro.obs.profiler)."""

from __future__ import annotations

import re
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profiler import (
    OVERFLOW_FRAME,
    SamplingProfiler,
    disable_profiler,
    enable_profiler,
    get_profiler,
    profile,
    profiler_from_env,
    set_profiler,
)


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture()
def no_profiler():
    """No process-wide profiler before or after the test."""
    previous = set_profiler(None)
    yield
    installed = set_profiler(previous)
    if installed is not None:
        installed.stop()


def _busy_loop(seconds: float) -> int:
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(50))
    return total


def test_sampler_collects_stacks_with_low_overhead(registry, no_profiler):
    profiler = SamplingProfiler(hz=97)
    profiler.start()
    _busy_loop(0.5)
    profiler.stop()
    # ~48 expected at 97 Hz over 0.5 s; demand a tenth of that to stay
    # robust on a loaded CI box.
    assert profiler.samples > 5
    assert profiler.overhead_pct < 5.0
    # stop() published the gauge into the current registry.
    assert registry.gauge("profiler.overhead_pct").value() < 5.0
    top = profiler.top_frames(10)
    assert top and sum(f["samples"] for f in top) <= profiler.samples
    assert any("_busy_loop" in f["frame"] for f in top)


def test_collapsed_stack_format(registry, no_profiler):
    profiler = SamplingProfiler(hz=97)
    profiler.start()
    _busy_loop(0.3)
    profiler.stop()
    lines = profiler.collapsed().splitlines()
    assert lines
    for line in lines:
        # flamegraph.pl input: "frame;frame;frame <count>"
        assert re.fullmatch(r"[^ ]+(;[^ ]+)* \d+", line), line
    assert any("_busy_loop" in line for line in lines)


def test_write_collapsed(tmp_path, registry, no_profiler):
    profiler = SamplingProfiler(hz=97)
    profiler.start()
    _busy_loop(0.2)
    profiler.stop()
    path = tmp_path / "out.collapsed"
    profiler.write_collapsed(str(path))
    assert path.read_text().strip() == profiler.collapsed().strip()


def test_bounded_distinct_stacks():
    profiler = SamplingProfiler(max_stacks=2)
    with profiler._lock:
        profiler._record(("a", "b"))
        profiler._record(("a", "c"))
        profiler._record(("a", "d"))   # third distinct stack overflows
        profiler._record(("a", "b"))
    stacks = profiler.stacks()
    assert len(stacks) == 3   # two real + the overflow bucket
    assert stacks[(OVERFLOW_FRAME,)] == 1
    assert profiler.truncated == 1
    assert profiler.samples == 4


def test_profile_context_regions(registry, no_profiler):
    profiler = enable_profiler(hz=97)
    with profile("outer.region"):
        _busy_loop(0.3)
    assert not profiler.running   # last region exit stops the sampler
    summary = profiler.to_dict()
    assert summary["samples"] > 0
    assert "outer.region" in summary["regions"]


def test_profile_noop_without_profiler(no_profiler):
    assert get_profiler() is None
    with profile("ignored"):
        pass   # must not install or crash anything
    assert get_profiler() is None


def test_enable_disable_lifecycle(no_profiler):
    first = enable_profiler()
    assert enable_profiler() is first   # reuse, don't drop samples
    returned = disable_profiler()
    assert returned is first
    assert get_profiler() is None
    assert not first.running


def test_profiler_from_env(monkeypatch, no_profiler):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert profiler_from_env() is None
    monkeypatch.setenv("REPRO_PROFILE", "0")
    assert profiler_from_env() is None
    monkeypatch.setenv("REPRO_PROFILE", "1")
    monkeypatch.setenv("REPRO_PROFILE_HZ", "31")
    profiler = profiler_from_env()
    assert profiler is not None and profiler.hz == 31.0


def test_reset_clears_samples(no_profiler):
    profiler = SamplingProfiler()
    with profiler._lock:
        profiler._record(("x",), region="r")
    assert profiler.samples == 1
    profiler.reset()
    assert profiler.samples == 0
    assert profiler.stacks() == {}
    assert profiler.to_dict()["regions"] == {}


def test_telemetry_snapshot_carries_profiler(registry, no_profiler):
    from repro.obs import telemetry_snapshot

    enable_profiler(hz=97)
    with profile("snap.region"):
        _busy_loop(0.2)
    snapshot = telemetry_snapshot()
    assert snapshot["profiler"]["samples"] > 0
    assert "snap.region" in snapshot["profiler"]["regions"]
