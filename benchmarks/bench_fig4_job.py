"""Fig 4(c, d): JOB (IMDB) -- estimated workload cost and advisor runtime
vs storage budget for AIM, DTA and Extend (max index width 3, matching
the paper's DTA feasibility limit for JOB)."""

from __future__ import annotations

import pytest

from repro.baselines import AimAlgorithm, DtaAlgorithm, ExtendAlgorithm
from repro.workloads.job import job_database, job_workload

from harness import GIB, print_header, print_table, save_results

BUDGETS_GB = [1, 2, 4, 8]
MAX_WIDTH = 3


def run_sweep():
    db = job_database()
    workload = job_workload()
    algorithms = {
        "aim": lambda: AimAlgorithm(db),
        "dta": lambda: DtaAlgorithm(db, max_width=MAX_WIDTH, time_limit_seconds=30.0),
        "extend": lambda: ExtendAlgorithm(db, max_width=MAX_WIDTH, time_limit_seconds=45.0),
    }
    series = {
        name: {"relative_cost": [], "runtime_s": [], "optimizer_calls": []}
        for name in algorithms
    }
    for budget_gb in BUDGETS_GB:
        for name, factory in algorithms.items():
            result = factory().select(workload, budget_gb * GIB)
            series[name]["relative_cost"].append(round(result.relative_cost, 4))
            series[name]["runtime_s"].append(round(result.runtime_seconds, 3))
            series[name]["optimizer_calls"].append(result.optimizer_calls)
    return series


@pytest.mark.benchmark(group="fig4-job")
def test_fig4_job(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_header(
        "Fig 4c -- JOB: estimated workload cost relative to unindexed, by budget"
    )
    rows = [
        [f"{gb} GB"] + [series[a]["relative_cost"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)

    print_header("Fig 4d -- JOB: advisor runtime (seconds), by budget")
    rows = [
        [f"{gb} GB"] + [series[a]["runtime_s"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)

    save_results("fig4_job", {"budgets_gb": BUDGETS_GB, "series": series})

    aim_final = series["aim"]["relative_cost"][-1]
    assert aim_final < 0.5, "JOB's selective joins should improve strongly"
    assert max(series["aim"]["runtime_s"]) < min(
        max(series["dta"]["runtime_s"]), max(series["extend"]["runtime_s"])
    ), "AIM should be the fastest advisor on JOB"
