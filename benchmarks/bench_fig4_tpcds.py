"""Fig 4 appendix: TPC-DS (SF 10) cost & runtime vs budget.

The paper ran TPC-DS alongside TPC-H and JOB but omitted its graphs:
"Graphs from TPC-DS benchmark followed the same trend" (Sec. VI-B).
This bench verifies the trend on the core-schema TPC-DS workload, with
the paper's width limits (DTA struggled beyond width 3 on TPC-DS).
"""

from __future__ import annotations

import pytest

from repro.baselines import AimAlgorithm, DtaAlgorithm, ExtendAlgorithm
from repro.workloads.tpcds import tpcds_database, tpcds_workload

from harness import GIB, print_header, print_table, save_results

BUDGETS_GB = [2, 5, 10]
MAX_WIDTH = 3


def run_sweep():
    db = tpcds_database(scale_factor=10)
    workload = tpcds_workload()
    algorithms = {
        "aim": lambda: AimAlgorithm(db),
        "dta": lambda: DtaAlgorithm(db, max_width=MAX_WIDTH, time_limit_seconds=30.0),
        "extend": lambda: ExtendAlgorithm(db, max_width=MAX_WIDTH, time_limit_seconds=45.0),
    }
    series = {
        name: {"relative_cost": [], "runtime_s": [], "optimizer_calls": []}
        for name in algorithms
    }
    for budget_gb in BUDGETS_GB:
        for name, factory in algorithms.items():
            result = factory().select(workload, budget_gb * GIB)
            series[name]["relative_cost"].append(round(result.relative_cost, 4))
            series[name]["runtime_s"].append(round(result.runtime_seconds, 3))
            series[name]["optimizer_calls"].append(result.optimizer_calls)
    return series


@pytest.mark.benchmark(group="fig4-tpcds")
def test_fig4_tpcds(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_header("TPC-DS SF10: relative estimated cost by budget (Fig 4 trend)")
    rows = [
        [f"{gb} GB"] + [series[a]["relative_cost"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)
    print_header("TPC-DS SF10: advisor runtime (seconds) by budget")
    rows = [
        [f"{gb} GB"] + [series[a]["runtime_s"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)
    save_results("fig4_tpcds", {"budgets_gb": BUDGETS_GB, "series": series})

    # Same trend: AIM improves with budget and stays the fastest advisor.
    aim = series["aim"]
    assert aim["relative_cost"][-1] <= aim["relative_cost"][0] + 1e-9
    assert max(aim["runtime_s"]) < min(
        max(series["dta"]["runtime_s"]), max(series["extend"]["runtime_s"])
    )
