"""What-if fast-path microbenchmark: cold vs. warm vs. parallel costing.

Runs the AIM pipeline plus two enumeration baselines (AutoAdmin, Extend)
over the Fig 3 Product A workload in four evaluator modes:

* ``legacy``   -- ``REPRO_WHATIF_FASTPATH=0``: the seed behaviour (exact,
  table-projected plan cache only), fresh evaluator.
* ``cold``     -- fast path on (relevance pruning + canonical cache),
  fresh evaluator.
* ``warm``     -- fast path on, the *same* evaluator re-running the
  pipeline: the repeated-tuning case.  Every plan request repeats, so a
  warm run should make (almost) no optimizer calls.
* ``parallel`` -- fast path on, fresh evaluator with ``jobs`` worker
  processes for workload costing.

The recommended configurations and final workload costs must be
identical in every mode -- the fast path and the process pool are pure
optimizations.  The headline claim checked here (and by the CI perf
smoke job) is deterministic, not wall-clock: warm runs make at least 5x
fewer uncached optimizer calls than the seed behaviour.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.baselines import ALL_ALGORITHMS
from repro.optimizer import CostEvaluator
from repro.optimizer.analysis_cache import analysis_cache_info
from repro.workloads.production import PRODUCTS, build_product

from harness import bench_jobs, print_header, print_table, save_results

ALGORITHMS = ("aim", "autoadmin", "extend")
PRODUCT = "A"
BUDGET = 256 << 20

#: The acceptance bar: warm fast-path runs vs. seed-behaviour runs.
MIN_CALL_REDUCTION = 5.0


def _run(algorithm: str, product, evaluator) -> dict:
    algo = ALL_ALGORITHMS[algorithm](product.db)
    start = time.perf_counter()
    result = algo.select(product.workload, BUDGET, evaluator=evaluator)
    wall = time.perf_counter() - start
    return {
        "algorithm": algorithm,
        "wall_seconds": round(wall, 3),
        "optimizer_calls": result.optimizer_calls,
        "cost_after": result.cost_after,
        "indexes": sorted(
            f"{i.table}({','.join(i.columns)})" for i in result.indexes
        ),
    }


def _evaluator_stats(evaluator: CostEvaluator) -> dict:
    stats = evaluator.cache_stats()
    requests = (
        stats["exact_hits"] + stats["canonical_hits"] + stats["optimizer_calls"]
    )
    stats["hit_rate"] = round(
        (stats["exact_hits"] + stats["canonical_hits"]) / max(1, requests), 4
    )
    return stats


def run_bench(jobs: int) -> dict:
    modes: dict[str, list[dict]] = {}
    cache_stats: dict[str, dict] = {}
    previous = os.environ.get("REPRO_WHATIF_FASTPATH")
    try:
        # Seed behaviour: fast path off, fresh evaluator per algorithm.
        os.environ["REPRO_WHATIF_FASTPATH"] = "0"
        product = build_product(PRODUCTS[PRODUCT])
        modes["legacy"] = [_run(name, product, None) for name in ALGORITHMS]

        os.environ["REPRO_WHATIF_FASTPATH"] = "1"
        # Fresh product: cold caches (stats-attached selectivity memos
        # die with the previous product's stats objects).
        product = build_product(PRODUCTS[PRODUCT])
        evaluators = {
            name: CostEvaluator(product.db, include_schema_indexes=False)
            for name in ALGORITHMS
        }
        modes["cold"] = [
            _run(name, product, evaluators[name]) for name in ALGORITHMS
        ]
        # Same evaluators again: the repeated-tuning case.
        modes["warm"] = [
            _run(name, product, evaluators[name]) for name in ALGORITHMS
        ]
        for name, evaluator in evaluators.items():
            cache_stats[name] = _evaluator_stats(evaluator)
            evaluator.close()

        parallel_evs = {
            name: CostEvaluator(
                product.db, include_schema_indexes=False, jobs=jobs
            )
            for name in ALGORITHMS
        }
        modes["parallel"] = [
            _run(name, product, parallel_evs[name]) for name in ALGORITHMS
        ]
        for evaluator in parallel_evs.values():
            evaluator.close()
    finally:
        if previous is None:
            os.environ.pop("REPRO_WHATIF_FASTPATH", None)
        else:
            os.environ["REPRO_WHATIF_FASTPATH"] = previous

    by_algo = {
        name: {mode: runs[i] for mode, runs in modes.items()}
        for i, name in enumerate(ALGORITHMS)
    }
    comparisons = {}
    for name, runs in by_algo.items():
        legacy_calls = runs["legacy"]["optimizer_calls"]
        comparisons[name] = {
            "legacy_calls": legacy_calls,
            "cold_calls": runs["cold"]["optimizer_calls"],
            "warm_calls": runs["warm"]["optimizer_calls"],
            "warm_reduction": round(
                legacy_calls / max(1, runs["warm"]["optimizer_calls"]), 1
            ),
            "identical_results": all(
                runs[mode]["indexes"] == runs["legacy"]["indexes"]
                and runs[mode]["cost_after"] == runs["legacy"]["cost_after"]
                for mode in ("cold", "warm", "parallel")
            ),
        }
    return {
        "product": PRODUCT,
        "budget_bytes": BUDGET,
        "jobs": jobs,
        "modes": modes,
        "comparisons": comparisons,
        "cache_stats": cache_stats,
        "analysis_cache": analysis_cache_info(),
    }


@pytest.mark.benchmark(group="perf")
def test_bench_perf(benchmark):
    jobs = bench_jobs(default=4)
    results = benchmark.pedantic(run_bench, args=(jobs,), rounds=1, iterations=1)

    print_header(
        f"What-if fast path -- product {PRODUCT}, jobs={jobs} "
        "(optimizer calls per advisor run)"
    )
    rows = []
    for name, comp in results["comparisons"].items():
        runs = {mode: results["modes"][mode][ALGORITHMS.index(name)]
                for mode in results["modes"]}
        stats = results["cache_stats"][name]
        rows.append([
            name,
            comp["legacy_calls"], comp["cold_calls"], comp["warm_calls"],
            f'{comp["warm_reduction"]}x',
            f'{stats["hit_rate"] * 100:.1f}%',
            stats["canonical_hits"], stats["evictions"],
            f'{runs["legacy"]["wall_seconds"]}s',
            f'{runs["parallel"]["wall_seconds"]}s',
        ])
    print_table(
        ["algo", "legacy", "cold", "warm", "warm redux", "hit rate",
         "canonical", "evict", "t legacy", "t parallel"],
        rows,
    )
    save_results("bench_perf", results)

    for name, comp in results["comparisons"].items():
        # Same answers in every mode: the fast path is a pure optimization.
        assert comp["identical_results"], name
    # The headline: repeated advisor runs over a warm evaluator beat the
    # seed behaviour by >= 5x on optimizer calls -- for AIM and for the
    # enumeration baselines.
    for name in ("aim", "autoadmin", "extend"):
        comp = results["comparisons"][name]
        assert (
            comp["warm_calls"] * MIN_CALL_REDUCTION <= comp["legacy_calls"]
        ), (name, comp)
