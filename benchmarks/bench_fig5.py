"""Fig 5(a, b): per-query estimated processing costs, TPC-H SF 10,
budget 15 GB, for AIM, DTA and Extend.

* 5a: queries where indexes had an effect -- per-query costs should be
  similar across algorithms.
* 5b: expensive queries (log scale).  The paper notes one outlier: AIM
  chooses a covering index for Q21 which PostgreSQL's optimizer *costs*
  higher although actual execution was similar; we report whether AIM
  picked a covering lineitem index for Q21.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import AimAlgorithm, DtaAlgorithm, ExtendAlgorithm
from repro.core.explain import PHASE_COVERING
from repro.core import AimAdvisor
from repro.optimizer import CostEvaluator
from repro.workloads.tpch import tpch_database, tpch_workload

from harness import GIB, print_header, print_table, save_results

BUDGET = 15 * GIB


def run_experiment():
    db = tpch_database(scale_factor=10)
    workload = tpch_workload()
    configs = {
        "aim": AimAlgorithm(db).select(workload, BUDGET).indexes,
        "dta": DtaAlgorithm(db, max_width=4, time_limit_seconds=30.0)
        .select(workload, BUDGET).indexes,
        "extend": ExtendAlgorithm(db, max_width=4, time_limit_seconds=45.0)
        .select(workload, BUDGET).indexes,
    }
    evaluator = CostEvaluator(db)
    per_query: dict[str, dict[str, float]] = {}
    for query in workload:
        base = evaluator.cost(query.sql)
        row = {"noindex": base}
        for name, indexes in configs.items():
            row[name] = evaluator.cost(query.sql, indexes)
        per_query[query.name] = row

    # Does AIM pick a covering index benefiting Q21 (the paper's callout)?
    aim_rec = AimAdvisor(db).recommend(workload, BUDGET)
    q21_covering = any(
        rec.phase == PHASE_COVERING
        and any("Q21" in name for name, _gain in rec.benefiting_queries)
        for rec in aim_rec.created
    )
    return per_query, q21_covering


@pytest.mark.benchmark(group="fig5")
def test_fig5(benchmark):
    per_query, q21_covering = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    affected = {
        name: row
        for name, row in per_query.items()
        if min(row["aim"], row["dta"], row["extend"]) < row["noindex"] * 0.99
    }
    print_header(
        "Fig 5a -- TPC-H SF10 @ 15 GB: per-query estimated costs "
        "(queries where indexes had an effect)"
    )
    rows = [
        [name, f"{row['noindex']:.3e}", f"{row['aim']:.3e}",
         f"{row['dta']:.3e}", f"{row['extend']:.3e}"]
        for name, row in sorted(affected.items(), key=lambda kv: int(kv[0][1:]))
    ]
    print_table(["query", "noindex", "aim", "dta", "extend"], rows)

    print_header(
        "Fig 5b -- expensive queries, log10(cost) (paper shows log scale)"
    )
    expensive = {
        name: row for name, row in per_query.items()
        if row["noindex"] > 1e6
    }
    rows = [
        [name] + [f"{math.log10(max(row[a], 1.0)):.2f}"
                  for a in ("noindex", "aim", "dta", "extend")]
        for name, row in sorted(expensive.items(), key=lambda kv: int(kv[0][1:]))
    ]
    print_table(["query", "noindex", "aim", "dta", "extend"], rows)

    print()
    print(f"AIM chose a covering index benefiting Q21: {q21_covering}")

    save_results(
        "fig5",
        {"per_query": per_query, "q21_covering": q21_covering},
    )

    # Shape: across affected queries, algorithms land in the same
    # ballpark (paper: "pretty similar across all algorithms").
    assert len(affected) >= 8
    for name, row in affected.items():
        best = min(row["aim"], row["dta"], row["extend"])
        if best > 0:
            assert row["aim"] <= row["noindex"] * 1.001
