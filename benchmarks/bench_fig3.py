"""Fig 3: CPU utilization & throughput profiles before and after AIM
execution, Products A, B and C.

The experiment replays each product's workload on two identical
"machines": the control keeps its (DBA) indexes; on the test machine all
secondary indexes are dropped, and after an observation window AIM
recreates its recommendation incrementally ("indexes were created
incrementally with sleeps in between", Sec. VI-C note).

Expected shape per product: on the drop, test CPU spikes (and throughput
dips if saturated); as AIM's indexes build, both converge back to the
control's levels.
"""

from __future__ import annotations

import pytest

from repro.baselines import AimAlgorithm
from repro.fleet import ReplayConfig, ReplaySimulator, incremental_index_events
from repro.workloads.production import PRODUCTS, build_product, dba_index_set

from harness import print_header, print_table, save_results

TICKS = 120
DROP_TICK = 20
AIM_TICK = 45
CREATE_INTERVAL = 3
ARRIVALS = 40


def run_product(key: str) -> dict:
    product = build_product(PRODUCTS[key])
    db = product.db
    budget = max(256 << 20, sum(db.table_size_bytes(t) for t in db.schema.tables))

    # The production starting point: the DBA configuration.
    dba = dba_index_set(product, budget)
    for index in dba:
        db.create_index(index)

    # Calibrate machine capacity so the indexed steady state sits at
    # ~35% CPU (the ballpark of the paper's control lines).
    probe = ReplaySimulator(
        db, product.workload, ReplayConfig(ticks=8, arrivals_per_tick=ARRIVALS,
                                           capacity=float("inf"), seed=11),
    )
    probe_timeline = probe.run()
    indexed_offered = sum(p.offered_cost for p in probe_timeline.points) / 8
    capacity = indexed_offered / 0.35

    config = ReplayConfig(
        ticks=TICKS, arrivals_per_tick=ARRIVALS, capacity=capacity, seed=11
    )

    control = ReplaySimulator(db, product.workload, config).run()

    # Test machine: drop everything, then AIM recreates from scratch.
    recommendation = AimAlgorithm(db).select(product.workload, budget)
    test_sim = ReplaySimulator(db, product.workload, config)
    events = {DROP_TICK: lambda sim: sim.drop_all_indexes()}
    # The highest-utility indexes build one by one (visible staircase);
    # the long tail lands as a final batch so the build finishes inside
    # the observation window even for index-heavy products.
    staged = recommendation.indexes[:12]
    tail = recommendation.indexes[12:]
    events.update(
        incremental_index_events(
            staged, start_tick=AIM_TICK, interval=CREATE_INTERVAL
        )
    )
    batch_tick = AIM_TICK + CREATE_INTERVAL * len(staged)
    if tail:
        events[batch_tick] = lambda sim: sim.create_indexes(tail)
    test = test_sim.run(events)

    # Restore the DBA config for any later use of the shared product.
    db.drop_all_secondary_indexes()
    for index in dba:
        db.create_index(index)

    recovered_from = AIM_TICK + CREATE_INTERVAL * len(staged) + 5
    return {
        "product": key,
        "capacity": capacity,
        "n_aim_indexes": len(recommendation.indexes),
        "control_cpu": round(control.mean_cpu(), 1),
        "test_cpu_before_drop": round(test.mean_cpu(0, DROP_TICK), 1),
        "test_cpu_degraded": round(test.mean_cpu(DROP_TICK + 1, AIM_TICK), 1),
        "test_cpu_recovered": round(test.mean_cpu(min(recovered_from, TICKS - 10), TICKS), 1),
        "control_throughput": round(control.mean_throughput(), 1),
        "test_throughput_degraded": round(
            test.mean_throughput(DROP_TICK + 1, AIM_TICK), 1
        ),
        "test_throughput_recovered": round(
            test.mean_throughput(min(recovered_from, TICKS - 10), TICKS), 1
        ),
        "cpu_series_test": [round(p, 1) for p in test.cpu_series()],
        "cpu_series_control": [round(p, 1) for p in control.cpu_series()],
        "throughput_series_test": [round(p, 1) for p in test.throughput_series()],
    }


def run_all():
    return [run_product(key) for key in ("A", "B", "C")]


@pytest.mark.benchmark(group="fig3")
def test_fig3(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header(
        "Fig 3 -- CPU% / throughput before & after AIM (drop-all at tick "
        f"{DROP_TICK}, AIM begins at tick {AIM_TICK})"
    )
    rows = [
        [
            r["product"], r["n_aim_indexes"],
            r["control_cpu"], r["test_cpu_before_drop"],
            r["test_cpu_degraded"], r["test_cpu_recovered"],
            r["control_throughput"], r["test_throughput_degraded"],
            r["test_throughput_recovered"],
        ]
        for r in results
    ]
    print_table(
        ["prod", "aim#", "ctl cpu%", "pre-drop", "degraded", "recovered",
         "ctl thr", "thr degraded", "thr recovered"],
        rows,
    )
    save_results("fig3", results)

    for r in results:
        # The drop visibly hurts, AIM recovers to ~control level.
        assert r["test_cpu_degraded"] > r["control_cpu"] * 1.5
        assert r["test_cpu_recovered"] <= r["test_cpu_degraded"] * 0.7
        assert r["test_cpu_recovered"] <= r["control_cpu"] * 1.6
        assert r["test_throughput_recovered"] >= r["test_throughput_degraded"]
