"""Fig 6: effect of the join parameter j.

Two identical machines serve a join-heavy transactional workload whose
star queries use composite join predicates (individually unselective
columns, selective combinations -- Sec. VI-C's pathological case for
greedy advisors).  One machine receives AIM's configurations with
progressively increasing j = 1, 2, 3; the other receives the greedy
incremental algorithm's (GIA = Extend) configuration.

Paper's numbers for its production workload: AIM(j=3) achieved ~27%
better throughput and ~4.8% lower CPU than GIA; j=2 gave ~16% better
throughput than j=1; j=2 -> 3 was insignificant.  We reproduce the
ordering and report our factors.
"""

from __future__ import annotations

import pytest

from repro.baselines import ExtendAlgorithm
from repro.core import AimAdvisor, AimConfig
from repro.fleet import ReplayConfig, ReplaySimulator
from repro.workloads.starjoin import starjoin_database, starjoin_workload

from harness import GIB, print_header, print_table, save_results

TICKS_PER_PHASE = 25
ARRIVALS = 40
BUDGET = 16 * GIB


def run_experiment():
    workload = starjoin_workload()

    # Configurations per j, and GIA's.
    configs = {}
    runtimes = {}
    for j in (1, 2, 3):
        db = starjoin_database()
        rec = AimAdvisor(db, AimConfig(join_parameter=j)).recommend(workload, BUDGET)
        configs[f"aim_j{j}"] = rec.indexes
        runtimes[f"aim_j{j}"] = rec.runtime_seconds
    db = starjoin_database()
    gia = ExtendAlgorithm(db, max_width=4, time_limit_seconds=60.0).select(
        workload, BUDGET
    )
    configs["gia"] = [i.materialized() for i in gia.indexes]
    runtimes["gia"] = gia.runtime_seconds

    # Calibrate capacity so the GIA-indexed machine runs slightly
    # saturated (offered = 1.25x capacity): in an open-loop replay the
    # throughput contrast between configurations only shows once the
    # weaker configuration saturates -- the regime Fig 6's machines are
    # in.  AIM's cheaper plans then fit under capacity while GIA's
    # backlog clips its throughput.
    probe_db = starjoin_database()
    for index in configs["gia"]:
        probe_db.create_index(index)
    probe = ReplaySimulator(
        probe_db, workload,
        ReplayConfig(ticks=6, arrivals_per_tick=ARRIVALS, capacity=float("inf"), seed=5),
    ).run()
    gia_offered = sum(p.offered_cost for p in probe.points) / 6
    capacity = gia_offered / 1.25

    # AIM machine: unindexed -> j=1 -> j=2 -> j=3 phases.
    aim_db = starjoin_database()
    aim_sim = ReplaySimulator(
        aim_db, workload,
        ReplayConfig(
            ticks=TICKS_PER_PHASE * 4, arrivals_per_tick=ARRIVALS,
            capacity=capacity, seed=5,
        ),
    )

    def switch_to(config_key):
        def event(sim):
            sim.drop_all_indexes()
            sim.create_indexes(configs[config_key])
        return event

    aim_timeline = aim_sim.run({
        TICKS_PER_PHASE: switch_to("aim_j1"),
        TICKS_PER_PHASE * 2: switch_to("aim_j2"),
        TICKS_PER_PHASE * 3: switch_to("aim_j3"),
    })

    # GIA machine: unindexed -> GIA configuration.
    gia_db = starjoin_database()
    gia_sim = ReplaySimulator(
        gia_db, workload,
        ReplayConfig(
            ticks=TICKS_PER_PHASE * 4, arrivals_per_tick=ARRIVALS,
            capacity=capacity, seed=5,
        ),
    )
    gia_timeline = gia_sim.run({TICKS_PER_PHASE: switch_to("gia")})

    def phase(timeline, k):
        start = TICKS_PER_PHASE * k + 3
        end = TICKS_PER_PHASE * (k + 1)
        return (
            timeline.mean_throughput(start, end),
            timeline.mean_cpu(start, end),
        )

    thr = {}
    cpu = {}
    thr["unindexed"], cpu["unindexed"] = phase(aim_timeline, 0)
    thr["aim_j1"], cpu["aim_j1"] = phase(aim_timeline, 1)
    thr["aim_j2"], cpu["aim_j2"] = phase(aim_timeline, 2)
    thr["aim_j3"], cpu["aim_j3"] = phase(aim_timeline, 3)
    thr["gia"], cpu["gia"] = phase(gia_timeline, 3)
    return thr, cpu, runtimes, {k: len(v) for k, v in configs.items()}


@pytest.mark.benchmark(group="fig6")
def test_fig6(benchmark):
    thr, cpu, runtimes, n_indexes = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    print_header("Fig 6 -- effect of the join parameter (steady-state phases)")
    rows = [
        [name, f"{thr[name]:.1f}", f"{cpu[name]:.1f}%",
         n_indexes.get(name, 0), f"{runtimes.get(name, 0):.1f}s"]
        for name in ("unindexed", "aim_j1", "aim_j2", "aim_j3", "gia")
    ]
    print_table(["config", "throughput", "cpu", "indexes", "advisor runtime"], rows)

    j2_vs_j1 = thr["aim_j2"] / max(1e-9, thr["aim_j1"]) - 1
    j3_vs_j2 = thr["aim_j3"] / max(1e-9, thr["aim_j2"]) - 1
    aim_vs_gia_thr = thr["aim_j3"] / max(1e-9, thr["gia"]) - 1
    aim_vs_gia_cpu = 1 - cpu["aim_j3"] / max(1e-9, cpu["gia"])
    print()
    print(f"AIM(j=3) vs GIA: {aim_vs_gia_thr * 100:+.1f}% throughput, "
          f"{aim_vs_gia_cpu * 100:+.1f}% lower CPU "
          f"(paper: +27% / -4.8%)")
    print(f"j=2 vs j=1 throughput: {j2_vs_j1 * 100:+.1f}% (paper: +16%)")
    print(f"j=3 vs j=2 throughput: {j3_vs_j2 * 100:+.1f}% (paper: insignificant)")

    save_results("fig6", {
        "throughput": thr, "cpu": cpu, "runtimes": runtimes,
        "n_indexes": n_indexes,
        "aim_vs_gia_throughput": aim_vs_gia_thr,
        "aim_vs_gia_cpu_reduction": aim_vs_gia_cpu,
        "j2_vs_j1": j2_vs_j1, "j3_vs_j2": j3_vs_j2,
    })

    # Shape assertions.
    assert thr["aim_j2"] > thr["aim_j1"], "j=2 must beat j=1"
    assert abs(j3_vs_j2) < 0.1, "j=2 -> 3 should be insignificant"
    assert thr["aim_j3"] >= thr["gia"] * 0.99, "AIM should match/beat GIA"
    assert cpu["aim_j3"] <= cpu["gia"] * 1.05, "AIM CPU should not exceed GIA's"
