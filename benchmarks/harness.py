"""Shared benchmark harness.

Every bench regenerates one table or figure of the paper: it prints the
same rows/series the paper reports and writes a machine-readable JSON
next to this file (``benchmarks/results/<name>.json``) that EXPERIMENTS.md
references.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import sys
from typing import Any

from repro.obs import get_profiler, profiler_from_env, reset_telemetry, telemetry_snapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Opt-in sampling profiler for benches: REPRO_PROFILE=1 samples the whole
# bench run and save_results writes results/<name>.collapsed (flamegraph
# input) next to the JSON.
_PROFILER = profiler_from_env()
if _PROFILER is not None:
    _PROFILER.start()


def bench_jobs(default: int = 1) -> int:
    """Worker-process fan-out for benches.

    Read from ``--jobs N`` on the bench's command line when present,
    falling back to the ``REPRO_BENCH_JOBS`` environment variable, then
    *default*.  Jobs only change wall time, never results (see
    docs/PERFORMANCE.md), so benches stay reproducible at any setting.
    """
    argv = sys.argv
    for i, token in enumerate(argv):
        if token == "--jobs" and i + 1 < len(argv):
            return max(1, int(argv[i + 1]))
        if token.startswith("--jobs="):
            return max(1, int(token.split("=", 1)[1]))
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", default)))

GIB = 1 << 30
MIB = 1 << 20

#: Bench output must reach the terminal even under pytest's capture --
#: the whole point of a bench is the regenerated table in its stdout.
print = functools.partial(print, file=sys.__stdout__, flush=True)  # noqa: A001


def save_results(name: str, payload: Any) -> pathlib.Path:
    """Persist a bench's machine-readable output.

    Every result JSON carries a ``telemetry`` block -- the process-wide
    metrics registry (per-phase optimizer-call counts and timing
    histograms from the advisor spans) plus span timing aggregates --
    making the paper's "cheap advisor" claim decomposable per bench run.
    List payloads are wrapped as ``{"results": [...], "telemetry": ...}``;
    ``update_experiments.py`` unwraps them transparently.
    """
    profiler = get_profiler()
    if profiler is not None:
        # Settle the sampler so the telemetry block carries final numbers
        # (and the overhead gauge) before the snapshot below.
        profiler.stop()
    telemetry = telemetry_snapshot()
    if isinstance(payload, dict):
        payload = {**payload, "telemetry": telemetry}
    else:
        payload = {"results": payload, "telemetry": telemetry}
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    if profiler is not None and profiler.samples:
        profiler.write_collapsed(str(RESULTS_DIR / f"{name}.collapsed"))
        print(f"profile: {profiler.samples} samples -> "
              f"results/{name}.collapsed "
              f"(overhead {profiler.overhead_pct:.2f}%)")
    # Scope each bench's telemetry (and profile) to its own result file.
    reset_telemetry()
    if profiler is not None:
        profiler.start()
    return path


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_table(headers: list[str], rows: list[list], widths=None) -> None:
    """Render an aligned text table."""
    if widths is None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt_bytes(n: float) -> str:
    if n >= GIB:
        return f"{n / GIB:.2f} GiB"
    if n >= MIB:
        return f"{n / MIB:.2f} MiB"
    return f"{n / 1024:.1f} KiB"


def fmt_pct(x: float) -> str:
    return f"{x * 100:.1f}%"
