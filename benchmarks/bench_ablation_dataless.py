"""Ablation 2 (DESIGN.md abl-2): dataless-index guidance on/off.

Algorithm 5 line 6 picks the single range column of a candidate by the
*dataless index cost* of ``<C_IPP, {c}>`` -- one of the three places AIM
consults the optimizer (Sec. V-B).  Without it, the choice degrades to
an arbitrary (first) range column.

The workload is built so the arbitrary choice is the wrong one: every
query carries one wide range predicate on an alphabetically-early column
and one narrow range on a late column.
"""

from __future__ import annotations

import pytest

from repro.catalog import Column, INT, Table, varchar
from repro.core import AimAdvisor, AimConfig
from repro.engine import Database
from repro.optimizer import CostEvaluator
from repro.stats import SyntheticColumn, synthesize_table
from repro.workload import Workload

from harness import GIB, print_header, print_table, save_results


def build_case():
    table = Table(
        "metrics",
        [
            Column("id", INT),
            Column("a_wide", INT),      # alphabetically first, unselective
            Column("z_narrow", INT),    # selective range column
            Column("kind", varchar(8)),
            Column("value", INT),
        ],
        ("id",),
    )
    db = Database.from_tables([table], with_storage=False)
    db.set_stats("metrics", synthesize_table(4_000_000, {
        "id": SyntheticColumn(ndv=-1, lo=1, hi=4_000_000),
        "a_wide": SyntheticColumn(ndv=100, lo=0, hi=100),
        "z_narrow": SyntheticColumn(ndv=1_000_000, lo=0, hi=1_000_000),
        "kind": SyntheticColumn(ndv=20),
        "value": SyntheticColumn(ndv=10_000, lo=0, hi=10_000),
    }))
    workload = Workload.from_sql([
        # a_wide > 10 matches ~90% of rows; z_narrow < 1000 matches ~0.1%.
        (f"SELECT value FROM metrics WHERE kind = 'k{i}' "
         f"AND a_wide > 10 AND z_narrow < {1000 + i}", 10.0)
        for i in range(6)
    ], name="skewed-ranges")
    return db, workload


def run_experiment():
    db, workload = build_case()
    out = {}
    for guided in (True, False):
        advisor = AimAdvisor(
            db, AimConfig(use_dataless_guidance=guided, covering_phase=False)
        )
        rec = advisor.recommend(workload, 2 * GIB)
        evaluator = CostEvaluator(db)
        cost = evaluator.workload_cost(
            workload.pairs(), [i.as_dataless() for i in rec.indexes]
        )
        out["dataless_on" if guided else "dataless_off"] = {
            "indexes": [str(i) for i in rec.indexes],
            "workload_cost": cost,
            "optimizer_calls": rec.optimizer_calls,
        }
    return out


@pytest.mark.benchmark(group="ablation-dataless")
def test_ablation_dataless(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Ablation: dataless-index range column choice (Sec. V-B)")
    rows = [
        [mode, f"{r['workload_cost']:.4g}", r["optimizer_calls"],
         "; ".join(r["indexes"])]
        for mode, r in results.items()
    ]
    print_table(["mode", "workload cost", "optimizer calls", "chosen indexes"], rows)
    save_results("ablation_dataless", results)

    on = results["dataless_on"]
    off = results["dataless_off"]
    assert on["workload_cost"] < off["workload_cost"], \
        "dataless guidance must pick the selective range column"
    assert any("z_narrow" in idx for idx in on["indexes"])
