"""Ablation 1 (DESIGN.md abl-1): partial order merging on/off.

Sec. III-E's merging consolidates per-query candidates into shared wide
indexes.  With merging disabled, AIM degenerates to per-query candidates:
more indexes, more storage for the same (or worse) workload cost.

We measure on a prefix-overlap workload (many queries sharing predicate
column subsets -- the situation merging exists for) and on TPC-H.
"""

from __future__ import annotations

import pytest

from repro.core import AimAdvisor, AimConfig
from repro.optimizer import CostEvaluator
from repro.workload import Workload
from repro.workloads.tpch import tpch_database, tpch_workload

from harness import GIB, fmt_bytes, print_header, print_table, save_results


def prefix_overlap_workload() -> tuple:
    """Queries over one table whose predicates form subset chains."""
    from repro.catalog import Column, INT, Table, varchar
    from repro.engine import Database
    from repro.stats import SyntheticColumn, synthesize_table

    table = Table(
        "events",
        [Column("id", INT)] + [Column(f"col{i}", INT) for i in range(1, 6)]
        + [Column("payload", varchar(64))],
        ("id",),
    )
    db = Database.from_tables([table], with_storage=False)
    # Low per-column NDV: no two-column prefix is selective enough on its
    # own; the merged three-column order is what makes queries cheap.
    spec = {"id": SyntheticColumn(ndv=-1, lo=1, hi=5_000_000)}
    for i in range(1, 6):
        spec[f"col{i}"] = SyntheticColumn(ndv=30, lo=0, hi=30)
    spec["payload"] = SyntheticColumn(ndv=-1)
    db.set_stats("events", synthesize_table(5_000_000, spec))

    # The heavy queries filter on {col1, col2, col3}; lighter ones on
    # subsets {col2, col3} / {col2}.  Merging produces the one order --
    # <{col2, col3}, {col1}> -- whose index serves all of them; without
    # it the per-query linearization (col1, col2, col3) strands the
    # subset queries on seq scans.
    workload = Workload.from_sql([
        ("SELECT payload FROM events WHERE col2 = 10 AND col3 = 20", 10.0),
        ("SELECT payload FROM events WHERE col1 = 5 AND col2 = 10 AND col3 = 20", 50.0),
        ("SELECT payload FROM events WHERE col2 = 11", 15.0),
        ("SELECT payload FROM events WHERE col2 = 12 AND col3 = 21 AND col4 = 3", 10.0),
        ("SELECT payload FROM events WHERE col3 = 22 AND col2 = 13 AND col1 = 6", 40.0),
    ], name="prefix-overlap")
    return db, workload


def run_case(db, workload, budget):
    out = {}
    for merging in (True, False):
        advisor = AimAdvisor(db, AimConfig(merge_orders=merging))
        rec = advisor.recommend(workload, budget)
        evaluator = CostEvaluator(db)
        cost = evaluator.workload_cost(
            workload.pairs(), [i.as_dataless() for i in rec.indexes]
        )
        out["merge_on" if merging else "merge_off"] = {
            "n_indexes": len(rec.indexes),
            "total_size": rec.total_size_bytes,
            "workload_cost": cost,
            "runtime_s": round(rec.runtime_seconds, 3),
        }
    return out


def run_experiment():
    db, workload = prefix_overlap_workload()
    # Merging pays off under budget pressure: one shared wide index must
    # replace several per-query ones.  ~250 MB fits a single 5M-row index.
    overlap = run_case(db, workload, 250 << 20)
    tpch = run_case(tpch_database(10), tpch_workload(), 15 * GIB)
    return {"prefix_overlap": overlap, "tpch": tpch}


@pytest.mark.benchmark(group="ablation-merge")
def test_ablation_merge(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Ablation: MergePartialOrders (Sec. III-E) on vs off")
    rows = []
    for case, data in results.items():
        for mode, r in data.items():
            rows.append([
                case, mode, r["n_indexes"], fmt_bytes(r["total_size"]),
                f"{r['workload_cost']:.4g}", r["runtime_s"],
            ])
    print_table(
        ["workload", "merging", "#indexes", "total size", "workload cost", "runtime"],
        rows,
    )
    save_results("ablation_merge", results)

    overlap = results["prefix_overlap"]
    assert overlap["merge_on"]["workload_cost"] < \
        overlap["merge_off"]["workload_cost"], \
        "under a tight budget, shared merged indexes must win"
