"""Ablation 3: storage engine profiles (paper Sec. VI-A).

AIM "supports both storage engines; InnoDB (B+ trees) and RocksDB (LSM
trees)".  The engines differ in write amplification: LSM compaction
amortizes index maintenance, so for indexes whose read benefit sits near
the maintenance break-even, AIM builds them under RocksDB but rejects
them under InnoDB -- Eq. 8's maintenance term is the only thing that
changes.

The workload puts several tables exactly in that regime: modest read
gains against a heavy insert stream, with the insert weight swept across
tables so the two engines' break-even points land apart.
"""

from __future__ import annotations

import pytest

from repro.catalog import Column, INT, Table, varchar
from repro.core import AimAdvisor, AimConfig
from repro.engine import Database, INNODB, ROCKSDB, CostParams
from repro.stats import SyntheticColumn, synthesize_table
from repro.workload import Workload

from harness import print_header, print_table, save_results

N_TABLES = 8
ROWS = 50_000


def build_case(params: CostParams) -> tuple[Database, Workload]:
    tables = [
        Table(f"t{i}", [
            Column("id", INT), Column("k", INT), Column("v", varchar(24)),
        ], ("id",))
        for i in range(N_TABLES)
    ]
    db = Database.from_tables(tables, params=params, with_storage=False)
    statements = []
    for i in range(N_TABLES):
        db.set_stats(f"t{i}", synthesize_table(ROWS, {
            "id": SyntheticColumn(ndv=-1, lo=1, hi=ROWS),
            "k": SyntheticColumn(ndv=5_000, lo=0, hi=1_000_000),
            "v": SyntheticColumn(ndv=ROWS),
        }))
        statements.append(
            (f"SELECT v FROM t{i} WHERE k = {i * 7 + 1}", 10.0)
        )
        # Insert pressure sweeps upward across tables: early tables are
        # read-dominated, late ones write-dominated; the flip point
        # differs between engines.
        insert_weight = 6_000.0 * (i + 1)
        statements.append((
            f"INSERT INTO t{i} (id, k, v) VALUES ({i}, {i}, 'x')",
            insert_weight,
        ))
    return db, Workload.from_sql(statements, name="engine-ablation")


def run_experiment():
    out = {}
    for name, params in (("innodb", INNODB), ("rocksdb", ROCKSDB)):
        db, workload = build_case(params)
        advisor = AimAdvisor(db, AimConfig(covering_phase=False))
        recommendation = advisor.recommend(workload, 4 << 30)
        indexed_tables = sorted({i.table for i in recommendation.indexes})
        out[name] = {
            "n_indexes": len(recommendation.indexes),
            "indexed_tables": indexed_tables,
            "improvement": round(recommendation.improvement, 4),
        }
    return out


@pytest.mark.benchmark(group="ablation-engine")
def test_ablation_engine(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header(
        "Ablation: engine write amplification vs index count "
        "(read gain near maintenance break-even)"
    )
    print_table(
        ["engine", "#indexes", "indexed tables", "workload improvement"],
        [
            [name, r["n_indexes"], ", ".join(r["indexed_tables"]),
             r["improvement"]]
            for name, r in results.items()
        ],
    )
    save_results("ablation_engine", results)

    # LSM's cheaper maintenance flips break-even tables to "index it".
    assert results["rocksdb"]["n_indexes"] > results["innodb"]["n_indexes"]
    assert set(results["innodb"]["indexed_tables"]) <= set(
        results["rocksdb"]["indexed_tables"]
    )
