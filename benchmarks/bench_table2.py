"""Table II: DBA vs AIM on production workloads (Products A-G).

For each synthetic product (generated from Table II's published metadata:
table count, join-query count, read/write mix) we report -- exactly the
paper's columns -- index counts, total index sizes for both the DBA
reference configuration and AIM, plus the Jaccard similarity of the two
index sets, and additionally the workload cost ratio (the paper reports
"performance at par" via Fig 3; we quantify it).

Expected shape: AIM reaches comparable (or better) workload cost with
fewer indexes and a smaller total footprint in most products.
"""

from __future__ import annotations

import pytest

from repro.baselines import AimAlgorithm
from repro.optimizer import CostEvaluator
from repro.workloads.production import (
    PRODUCTS,
    build_product,
    dba_index_set,
    jaccard_similarity,
)

from harness import fmt_bytes, print_header, print_table, save_results


def run_product(key: str) -> dict:
    product = build_product(PRODUCTS[key])
    db = product.db
    # Generous budget (the paper's fleet allocates index storage freely;
    # AIM's utility ranking, not the budget, bounds what gets built).
    data_bytes = sum(db.table_size_bytes(t) for t in db.schema.tables)
    budget = max(256 << 20, data_bytes)

    aim = AimAlgorithm(db).select(product.workload, budget)
    dba = dba_index_set(product, budget)
    dba_size = sum(db.index_size_bytes(i) for i in dba)
    evaluator = CostEvaluator(db)
    dba_cost = evaluator.workload_cost(product.workload.pairs(), dba)

    return {
        "product": key,
        "tables": PRODUCTS[key].tables,
        "join_queries": PRODUCTS[key].join_queries,
        "workload_type": PRODUCTS[key].workload_type,
        "dba_count": len(dba),
        "aim_count": len(aim.indexes),
        "dba_size": dba_size,
        "aim_size": aim.total_size_bytes,
        "jaccard": round(jaccard_similarity(aim.indexes, dba), 2),
        "aim_cost": aim.cost_after,
        "dba_cost": dba_cost,
        "cost_ratio_aim_over_dba": round(
            aim.cost_after / dba_cost, 3
        ) if dba_cost > 0 else 1.0,
    }


def run_all():
    return [run_product(key) for key in PRODUCTS]


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header(
        "Table II -- Performance comparison between DBAs and AIM on "
        "production workloads"
    )
    rows = [
        [
            r["product"], r["tables"], r["join_queries"],
            r["workload_type"],
            r["dba_count"], r["aim_count"],
            fmt_bytes(r["dba_size"]), fmt_bytes(r["aim_size"]),
            r["jaccard"], r["cost_ratio_aim_over_dba"],
        ]
        for r in results
    ]
    print_table(
        ["product", "tables", "joins", "type", "DBA#", "AIM#",
         "DBA size", "AIM size", "Jaccard", "cost AIM/DBA"],
        rows,
    )
    save_results("table2", results)

    # Shape assertions per the paper ("comparable performance, fewer
    # indexes in most cases"):
    fewer = sum(1 for r in results if r["aim_count"] <= r["dba_count"])
    assert fewer >= len(results) // 2 + 1, \
        "AIM should use fewer indexes in most products"
    at_par = sum(1 for r in results if r["cost_ratio_aim_over_dba"] <= 1.3)
    assert at_par >= len(results) - 1, \
        "AIM's performance should be at par with manual tuning"
    for r in results:
        assert 0.0 < r["jaccard"] < 1.0
