"""Fig 4(a, b): TPC-H SF 10 -- estimated workload cost and advisor
runtime vs storage budget, for AIM, DTA and Extend (max index width 4).

Paper's expected shape:
* 4a: all curves drop with budget; AIM can trail DTA/Extend at tight
  budgets (granularity tradeoff) and is at par once budgets relax.
* 4b: AIM's runtime is flat and orders of magnitude below both baselines.
"""

from __future__ import annotations

import pytest

from repro.baselines import AimAlgorithm, DtaAlgorithm, ExtendAlgorithm
from repro.workloads.tpch import tpch_database, tpch_workload

from harness import GIB, print_header, print_table, save_results

#: Budget sweep (paper: 0..15 GB for TPC-H SF 10).
BUDGETS_GB = [2, 5, 10, 15]
MAX_WIDTH = 4


def make_algorithms(db):
    return {
        "aim": lambda: AimAlgorithm(db),
        "dta": lambda: DtaAlgorithm(db, max_width=MAX_WIDTH, time_limit_seconds=30.0),
        "extend": lambda: ExtendAlgorithm(db, max_width=MAX_WIDTH, time_limit_seconds=45.0),
    }


def run_sweep():
    db = tpch_database(scale_factor=10)
    workload = tpch_workload()
    algorithms = make_algorithms(db)
    series: dict[str, dict[str, list[float]]] = {
        name: {"relative_cost": [], "runtime_s": [], "optimizer_calls": []}
        for name in algorithms
    }
    for budget_gb in BUDGETS_GB:
        for name, factory in algorithms.items():
            result = factory().select(workload, budget_gb * GIB)
            series[name]["relative_cost"].append(round(result.relative_cost, 4))
            series[name]["runtime_s"].append(round(result.runtime_seconds, 3))
            series[name]["optimizer_calls"].append(result.optimizer_calls)
    return series


@pytest.mark.benchmark(group="fig4-tpch")
def test_fig4_tpch(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_header(
        "Fig 4a -- TPC-H SF10: estimated workload cost relative to "
        "unindexed, by budget"
    )
    rows = [
        [f"{gb} GB"] + [series[a]["relative_cost"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)

    print_header("Fig 4b -- TPC-H SF10: advisor runtime (seconds), by budget")
    rows = [
        [f"{gb} GB"] + [series[a]["runtime_s"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)

    print_header("Optimizer calls (the runtime driver, Sec. VIII-a)")
    rows = [
        [f"{gb} GB"] + [series[a]["optimizer_calls"][i] for a in series]
        for i, gb in enumerate(BUDGETS_GB)
    ]
    print_table(["budget"] + list(series), rows)

    save_results(
        "fig4_tpch", {"budgets_gb": BUDGETS_GB, "series": series}
    )

    # Shape assertions (the claims under test).
    for name in series:
        costs = series[name]["relative_cost"]
        assert costs[-1] <= costs[0] + 1e-9, f"{name} should improve with budget"
    aim_runtime = max(series["aim"]["runtime_s"])
    assert aim_runtime * 10 < max(series["dta"]["runtime_s"]) or \
        aim_runtime * 10 < max(series["extend"]["runtime_s"]), \
        "AIM's runtime should be an order of magnitude below the baselines"
