"""Sec. VI-D: continuous index tuning after a workload shift.

Scenario: a tuned production database receives a "new code push" -- a
handful of hot queries whose supporting indexes nobody created.  The
periodic AIM cycle picks them up from the monitor and fixes them.

Paper's reported outcomes: continuous tuning saved ~2% of the CPU
capacity serving OLTP workloads, and roughly 31% of the improved queries
got at least an order of magnitude faster.  We report the same two
numbers for the simulated shift.
"""

from __future__ import annotations

import pytest

from repro.core import AimConfig, ContinuousTuner
from repro.obs import get_journal
from repro.obs.fleet_report import render_fleet_report
from repro.optimizer import CostEvaluator
from repro.workload import SelectionPolicy, WorkloadMonitor, WorkloadQuery
from repro.workloads.oltp import workload_shift
from repro.workloads.production import PRODUCTS, build_product, dba_index_set

from harness import RESULTS_DIR, fmt_pct, print_header, print_table, save_results

#: The new endpoints' share of total workload weight (a modest push).
NEW_QUERY_WEIGHT_SHARE = 0.04
N_NEW_QUERIES = 8


def make_new_queries(product) -> list[WorkloadQuery]:
    """Hot point/range queries on payload columns with no index support.

    Columns are chosen numeric and high-NDV so every pushed query is
    genuinely index-repairable (a code push filtering on a 3-value enum
    would rightly be left alone by the advisor).
    """
    queries = []
    tables = list(product.db.schema.tables.values())
    i = 0
    for table in tables * 3:
        if len(queries) >= N_NEW_QUERIES:
            break
        stats = product.db.stats.table(table.name)
        numeric = [
            c.name for c in table.columns
            if c.name.startswith("c")
            and c.ctype.kind.value in ("integer", "decimal", "float")
            and stats.column(c.name).ndv >= 1000
        ]
        if len(numeric) < 2:
            continue
        col_a, col_b = numeric[i % len(numeric)], numeric[(i + 1) % len(numeric)]
        if col_a == col_b:
            continue
        queries.append(
            WorkloadQuery(
                f"SELECT {col_b} FROM {table.name} "
                f"WHERE {col_a} = {1000 + i} AND {col_b} > {900_000 + i * 100}",
                name=f"push-{i}",
            )
        )
        i += 1
    return queries


def run_experiment():
    # Durable decision journal: every advisor decision and DDL of the
    # cycle below lands in results/continuous_journal.jsonl, renderable
    # with ``python -m repro.cli fleet-report``.
    RESULTS_DIR.mkdir(exist_ok=True)
    journal = get_journal()
    journal.reset()
    journal_path = RESULTS_DIR / "continuous_journal.jsonl"
    journal_path.unlink(missing_ok=True)
    journal.bind(str(journal_path))

    product = build_product(PRODUCTS["C"])
    db = product.db
    budget = max(512 << 20, sum(db.table_size_bytes(t) for t in db.schema.tables))

    # Steady state: the DBA configuration serves the original workload.
    for index in dba_index_set(product, budget):
        db.create_index(index)

    new_queries = make_new_queries(product)
    hot_weight = (
        product.workload.total_weight * NEW_QUERY_WEIGHT_SHARE / len(new_queries)
    )
    shifted = workload_shift(product.workload, new_queries, hot_weight)

    evaluator = CostEvaluator(db, include_schema_indexes=True)
    cost_before = evaluator.workload_cost(shifted.pairs())
    per_query_before = {
        q.name: evaluator.cost(q.sql) for q in shifted if not q.is_dml
    }

    # The monitor sees the shifted workload (estimated executions).
    monitor = WorkloadMonitor()
    for query in shifted:
        plan = evaluator.plan(query.sql)
        for _ in range(max(1, int(query.weight / hot_weight * 4))):
            monitor.record_plan(query.sql, plan)

    tuner = ContinuousTuner(
        db, budget_bytes=budget, config=AimConfig(), monitor=monitor,
        selection=SelectionPolicy(min_executions=2, min_benefit=0.01),
        drop_unused=False,
    )
    result = tuner.run_cycle()

    evaluator_after = CostEvaluator(db, include_schema_indexes=True)
    cost_after = evaluator_after.workload_cost(shifted.pairs())
    improved = []
    for q in shifted:
        if q.is_dml:
            continue
        before = per_query_before[q.name]
        after = evaluator_after.cost(q.sql)
        if before > 0 and after < before * 0.95:
            improved.append((q.name, after / before))
    tenfold = [name for name, ratio in improved if ratio <= 0.1]
    journal.close()
    return {
        "journal_events": len(journal),
        "journal_path": str(journal_path),
        "created_indexes": len(result.created),
        "cpu_saved_fraction": 1 - cost_after / cost_before,
        "improved_queries": len(improved),
        "tenfold_improved": len(tenfold),
        "tenfold_share": len(tenfold) / max(1, len(improved)),
        "new_queries_fixed": sum(
            1 for name, _r in improved if name.startswith("push-")
        ),
        "n_new_queries": len(new_queries),
    }


@pytest.mark.benchmark(group="continuous")
def test_continuous_tuning(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Sec. VI-D -- continuous tuning after a new code push")
    print_table(
        ["metric", "measured", "paper"],
        [
            ["CPU capacity saved", fmt_pct(r["cpu_saved_fraction"]), "~2%"],
            [">=10x improved share of improved queries",
             fmt_pct(r["tenfold_share"]), "~31%"],
            ["new queries fixed",
             f"{r['new_queries_fixed']}/{r['n_new_queries']}", "-"],
            ["indexes created", r["created_indexes"], "-"],
            ["journal events", r["journal_events"], "-"],
        ],
    )
    print()
    print(render_fleet_report(get_journal().records()))
    save_results("continuous", r)

    assert r["created_indexes"] > 0, "the cycle must react to the push"
    assert r["cpu_saved_fraction"] > 0.005, "visible CPU savings expected"
    assert r["new_queries_fixed"] >= r["n_new_queries"] * 0.5
    assert r["tenfold_share"] > 0.1, "some queries should improve >= 10x"
