"""Quickstart: tune a small database end to end.

Builds a two-table web-shop database with real rows, runs traffic through
the monitored executor, asks AIM for a recommendation, applies it and
shows the measured speedup.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.catalog import Column, INT, Table, varchar
from repro.core import AimAdvisor
from repro.engine import Database
from repro.workload import MonitoredExecutor, SelectionPolicy


def build_database() -> Database:
    users = Table(
        "users",
        [
            Column("id", INT),
            Column("age", INT),
            Column("city", varchar(12)),
            Column("name", varchar(20)),
        ],
        ("id",),
    )
    orders = Table(
        "orders",
        [
            Column("oid", INT),
            Column("user_id", INT),
            Column("amount", INT),
            Column("status", varchar(8)),
            Column("created", INT),
        ],
        ("oid",),
    )
    db = Database.from_tables([users, orders], name="webshop")
    rng = random.Random(42)
    db.load_rows("users", (
        {
            "id": i,
            "age": rng.randint(18, 80),
            "city": f"city{rng.randint(0, 29)}",
            "name": f"user{i}",
        }
        for i in range(3_000)
    ))
    db.load_rows("orders", (
        {
            "oid": i,
            "user_id": rng.randrange(3_000),
            "amount": rng.randint(1, 500),
            "status": rng.choice(["new", "paid", "shipped", "done"]),
            "created": rng.randint(0, 1_000_000),
        }
        for i in range(20_000)
    ))
    db.analyze()
    return db


def main() -> None:
    db = build_database()
    monitored = MonitoredExecutor(db)
    rng = random.Random(7)

    print("== replaying application traffic (no secondary indexes) ==")
    statements = []
    for _ in range(60):
        statements.append(
            f"SELECT amount, status FROM orders WHERE created < {rng.randint(5_000, 40_000)}"
        )
        statements.append(
            "SELECT u.name, o.amount FROM users u, orders o "
            f"WHERE u.id = o.user_id AND o.status = 'paid' AND u.city = 'city{rng.randint(0, 29)}'"
        )
    before = 0.0
    for sql in statements:
        before += monitored.execute(sql).metrics.cpu_seconds(db.params)
    print(f"measured cost before tuning: {before:,.0f} units")

    print("\n== AIM recommendation from monitor statistics ==")
    advisor = AimAdvisor(db, monitor=monitored.monitor)
    recommendation = advisor.recommend_from_monitor(
        budget_bytes=64 << 20,
        policy=SelectionPolicy(min_executions=2, min_benefit=0.001),
    )
    print(recommendation.summary())

    print("\n== applying and re-measuring ==")
    for index in recommendation.indexes:
        db.create_index(index)
    after = 0.0
    for sql in statements:
        after += monitored.execute(sql).metrics.cpu_seconds(db.params)
    print(f"measured cost after tuning:  {after:,.0f} units")
    print(f"speedup: {before / after:.1f}x")


if __name__ == "__main__":
    main()
