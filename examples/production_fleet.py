"""Fleet-scale operation (paper Sec. VII-VIII).

Simulates the production deployment around AIM: a replicated database
serving traffic, the statistics export daemon feeding the warehouse, the
centralized coordinator kicking off tuning, MyShadow validating the
candidate configuration, and the continuous regression detector watching
the aftermath.

Run:  python examples/production_fleet.py
"""

from __future__ import annotations

from repro.fleet import (
    FleetCoordinator,
    MyShadow,
    PubSubChannel,
    ReplicaSet,
    StatsExportDaemon,
    StatsWarehouse,
)
from repro.workload import Workload
from repro.workloads.oltp import WorkloadSampler
from repro.workloads.production import PRODUCTS, build_product


def main() -> None:
    product = build_product(PRODUCTS["F"])
    print(f"product F: {len(product.db.schema.tables)} tables, "
          f"{len(product.workload)} distinct statements\n")

    replica_set = ReplicaSet(product.db, n_replicas=3)
    channel = PubSubChannel()
    warehouse = StatsWarehouse()
    channel.subscribe(warehouse.ingest)
    daemon = StatsExportDaemon("F", replica_set, channel)

    print("== serving traffic across replicas ==")
    sampler = WorkloadSampler(product.workload, seed=3)
    for query in sampler.sample(600):
        replica_set.serve(query)
    exported = daemon.run_once()
    print(f"stats export: {exported} records -> warehouse "
          f"({len(warehouse.monitor_for('F').stats)} normalized queries)")

    print("\n== coordinator scan ==")
    coordinator = FleetCoordinator(warehouse, budget_bytes=1 << 30)
    coordinator.register("F", replica_set)
    print(f"needs tuning: {coordinator.needs_tuning('F')}")

    print("\n== MyShadow validation of the candidate configuration ==")
    from repro.core import AimAdvisor

    workload = Workload(
        [q for q in product.workload], name="replayed"
    )
    recommendation = AimAdvisor(product.db).recommend(workload, 1 << 30)
    shadow = MyShadow(product.db, sample_fraction=0.5, seed=1)
    report = shadow.validate(workload, recommendation.indexes)
    print(f"shadow replay: {len(report.improved)} improved, "
          f"{len(report.regressed)} regressed, safe={report.safe}")

    print("\n== rollout via the coordinator ==")
    results = coordinator.scan_and_tune()
    outcome = results.get("F")
    if outcome:
        print(f"created {len(outcome.created)} indexes, "
              f"dropped {len(outcome.dropped)}")

    print("\n== regression watch over the next window ==")
    for query in sampler.sample(300):
        replica_set.serve(query)
    daemon.run_once()
    events = coordinator.check_regressions("F")
    print(f"regression events: {len(events)} "
          f"(the no-regression guarantee holds)" if not events else events)


if __name__ == "__main__":
    main()
