-- Example schema for `python -m repro.cli` (see README).

CREATE TABLE users (
    id BIGINT NOT NULL,
    city VARCHAR(24),
    age INT,
    name VARCHAR(40),
    signup_date DATE,
    PRIMARY KEY (id)
);

CREATE TABLE orders (
    oid BIGINT NOT NULL,
    user_id BIGINT NOT NULL,
    amount DECIMAL(10, 2),
    status VARCHAR(16),
    created TIMESTAMP,
    PRIMARY KEY (oid)
);
