-- Example workload for `python -m repro.cli`.
-- A `-- weight: N` comment sets the next statement's execution frequency.

-- weight: 500
SELECT amount, status FROM orders WHERE status = 'paid' AND created > 3000;

-- weight: 200
SELECT u.name, o.amount
FROM users u, orders o
WHERE u.id = o.user_id AND u.city = 'nyc' AND o.amount > 100;

-- weight: 80
SELECT city, COUNT(*) FROM users WHERE age > 30 GROUP BY city;

-- weight: 50
SELECT name FROM users WHERE signup_date > 3500 ORDER BY signup_date DESC LIMIT 20;

-- weight: 900
UPDATE orders SET status = 'done' WHERE oid = 12345;

-- weight: 400
INSERT INTO orders (oid, user_id, amount, status, created) VALUES (1, 2, 3.5, 'new', 4000);
