"""Continuous tuning scenario (paper Sec. VI-D).

A tuned database receives a "new code push" with an unindexed hot query.
The monitor notices, the periodic tuning cycle repairs it, and the
regression detector guards the change.

Run:  python examples/continuous_tuning.py
"""

from __future__ import annotations

import random

from repro.catalog import Column, INT, Table, varchar
from repro.core import AimConfig, ContinuousTuner
from repro.engine import Database
from repro.workload import MonitoredExecutor, SelectionPolicy


def build_database() -> Database:
    events = Table(
        "events",
        [
            Column("id", INT),
            Column("kind", varchar(12)),
            Column("user_id", INT),
            Column("score", INT),
            Column("ts", INT),
        ],
        ("id",),
    )
    db = Database.from_tables([events], name="analytics")
    rng = random.Random(9)
    db.load_rows("events", (
        {
            "id": i,
            "kind": f"k{rng.randint(0, 19)}",
            "user_id": rng.randrange(2_000),
            "score": rng.randint(0, 1_000),
            "ts": rng.randint(0, 10**6),
        }
        for i in range(25_000)
    ))
    db.analyze()
    return db


def main() -> None:
    db = build_database()
    monitored = MonitoredExecutor(db)
    tuner = ContinuousTuner(
        db,
        budget_bytes=64 << 20,
        config=AimConfig(),
        monitor=monitored.monitor,
        selection=SelectionPolicy(min_executions=3, min_benefit=0.001),
    )

    print("== interval 1: steady-state workload ==")
    for i in range(20):
        monitored.execute(f"SELECT score FROM events WHERE ts < {10_000 + i}")
    result = tuner.run_cycle()
    print(f"cycle 1 created: {[i.name for i in result.created]}")

    print("\n== interval 2: new code push (unindexed hot query) ==")
    monitored.monitor.clear()
    for i in range(30):
        monitored.execute(
            f"SELECT user_id, score FROM events WHERE kind = 'k{i % 3}' "
            f"AND score > 900"
        )
    result = tuner.run_cycle()
    print(f"cycle 2 created: {[i.name for i in result.created]}")
    print(f"cycle 2 dropped: {[i.name for i in result.dropped]}")

    print("\n== verifying the new query now uses an index ==")
    check = monitored.execute(
        "SELECT user_id, score FROM events WHERE kind = 'k1' AND score > 900"
    )
    print(f"plan uses: {check.plan.used_indexes or 'seq scan'}")
    print(f"rows read: {check.metrics.rows_read} (of 25,000)")


if __name__ == "__main__":
    main()
