"""Tune the TPC-H analytical workload and compare advisors.

Reproduces the Fig 4 setting interactively: a stats-only TPC-H database
at scale factor 10, the 22-query workload, and a 15 GB budget, comparing
AIM against Extend and DTA on solution quality, runtime and optimizer
calls.

Run:  python examples/tpch_tuning.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.baselines import AimAlgorithm, DtaAlgorithm, ExtendAlgorithm
from repro.core import AimAdvisor
from repro.workloads.tpch import tpch_database, tpch_workload


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    budget = 15 << 30
    db = tpch_database(scale_factor=scale_factor)
    workload = tpch_workload()
    print(f"TPC-H SF {scale_factor:g}: {len(workload)} queries, budget 15 GB\n")

    algorithms = [
        AimAlgorithm(db),
        DtaAlgorithm(db, max_width=4, time_limit_seconds=30.0),
        ExtendAlgorithm(db, max_width=4, time_limit_seconds=45.0),
    ]
    print(f"{'algorithm':10s} {'rel. cost':>9s} {'#idx':>5s} "
          f"{'size (GiB)':>10s} {'runtime':>8s} {'opt calls':>9s}")
    for algorithm in algorithms:
        result = algorithm.select(workload, budget)
        print(
            f"{result.algorithm:10s} {result.relative_cost:9.3f} "
            f"{len(result.indexes):5d} "
            f"{result.total_size_bytes / (1 << 30):10.2f} "
            f"{result.runtime_seconds:7.2f}s {result.optimizer_calls:9d}"
        )

    print("\nAIM's explained recommendation (top entries):")
    recommendation = AimAdvisor(db).recommend(workload, budget)
    for rec in recommendation.created[:6]:
        print(rec.explanation())


if __name__ == "__main__":
    main()
