"""Join parameter study (paper Sec. IV-C / Fig 6).

Sweeps AIM's join parameter j on the star-join workload whose composite
join predicates defeat greedy one-column-at-a-time advisors, and compares
against the greedy incremental algorithm (Extend / "GIA").

Run:  python examples/join_parameter_study.py
"""

from __future__ import annotations

from repro.baselines import ExtendAlgorithm
from repro.core import AimAdvisor, AimConfig
from repro.optimizer import CostEvaluator
from repro.workloads.starjoin import starjoin_database, starjoin_workload


def main() -> None:
    workload = starjoin_workload()
    budget = 16 << 30
    print("star-join workload: fact + 3 dimensions, composite join keys\n")

    print(f"{'config':8s} {'rel. cost':>10s} {'#idx':>5s} {'runtime':>8s}")
    baseline_cost = None
    for j in (1, 2, 3):
        db = starjoin_database()
        evaluator = CostEvaluator(db)
        if baseline_cost is None:
            baseline_cost = evaluator.workload_cost(workload.pairs())
        recommendation = AimAdvisor(db, AimConfig(join_parameter=j)).recommend(
            workload, budget
        )
        cost = evaluator.workload_cost(
            workload.pairs(), [i.as_dataless() for i in recommendation.indexes]
        )
        print(
            f"aim j={j}  {cost / baseline_cost:10.4f} "
            f"{len(recommendation.indexes):5d} "
            f"{recommendation.runtime_seconds:7.2f}s"
        )

    db = starjoin_database()
    gia = ExtendAlgorithm(db, max_width=4, time_limit_seconds=60.0).select(
        workload, budget
    )
    print(
        f"{'gia':8s} {gia.relative_cost:10.4f} {len(gia.indexes):5d} "
        f"{gia.runtime_seconds:7.2f}s"
    )
    print(
        "\nExpected shape (paper Sec. VI-C): j=2 far better than j=1, "
        "j=3 ~ j=2, AIM >= GIA at a fraction of the runtime."
    )


if __name__ == "__main__":
    main()
