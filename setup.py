"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs fail.  This shim enables the legacy path:
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
