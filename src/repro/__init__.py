"""repro -- reproduction of *AIM: A practical approach to automated index
management for SQL databases* (ICDE 2023).

The package implements the AIM advisor (:mod:`repro.core`), the SQL and
database substrates it needs (:mod:`repro.sqlparser`, :mod:`repro.catalog`,
:mod:`repro.engine`, :mod:`repro.optimizer`, :mod:`repro.executor`), the
workload instrumentation (:mod:`repro.workload`), baseline index selection
algorithms (:mod:`repro.baselines`), the fleet/operational layer
(:mod:`repro.fleet`) and the benchmark workloads (:mod:`repro.workloads`).
"""

__version__ = "1.0.0"
