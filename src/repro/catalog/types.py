"""Column type system.

Types carry only what the cost model and data generator need: a storage
width in bytes and a value domain kind.  This mirrors how index advisors
consume DBMS catalogs -- widths drive index size estimates, domains drive
synthetic data generation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TypeKind(enum.Enum):
    """Value domain of a column type."""

    INTEGER = "integer"
    FLOAT = "float"
    DECIMAL = "decimal"
    STRING = "string"
    DATE = "date"
    DATETIME = "datetime"
    BOOLEAN = "boolean"


@dataclass(frozen=True)
class ColumnType:
    """A concrete column type with a fixed storage width.

    Variable-width types use their average width, which is what matters
    for size estimation (the paper reports index sizes in GiB).
    """

    kind: TypeKind
    width: int

    def __str__(self) -> str:
        return f"{self.kind.value}({self.width})"


INT = ColumnType(TypeKind.INTEGER, 4)
BIGINT = ColumnType(TypeKind.INTEGER, 8)
FLOAT = ColumnType(TypeKind.FLOAT, 8)
DECIMAL = ColumnType(TypeKind.DECIMAL, 8)
DATE = ColumnType(TypeKind.DATE, 4)
DATETIME = ColumnType(TypeKind.DATETIME, 8)
BOOLEAN = ColumnType(TypeKind.BOOLEAN, 1)


def varchar(avg_width: int) -> ColumnType:
    """A string type with the given average stored width in bytes."""
    return ColumnType(TypeKind.STRING, avg_width)


def char(width: int) -> ColumnType:
    """A fixed-width string type."""
    return ColumnType(TypeKind.STRING, width)
