"""Catalog: tables, columns, types, indexes and schemas."""

from .column import Column
from .index import Index
from .schema import Schema
from .table import CatalogError, Table
from .types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DATETIME,
    DECIMAL,
    FLOAT,
    INT,
    ColumnType,
    TypeKind,
    char,
    varchar,
)

__all__ = [
    "Column",
    "Index",
    "Schema",
    "Table",
    "CatalogError",
    "ColumnType",
    "TypeKind",
    "INT",
    "BIGINT",
    "FLOAT",
    "DECIMAL",
    "DATE",
    "DATETIME",
    "BOOLEAN",
    "char",
    "varchar",
]
