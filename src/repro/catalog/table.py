"""Table metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from .column import Column


class CatalogError(KeyError):
    """Raised for unknown tables / columns or invalid definitions."""


@dataclass
class Table:
    """A base table with a clustered primary key.

    The storage model follows InnoDB: the base table *is* the primary key
    (clustered index); every secondary index stores its key columns plus
    the primary key columns, and non-covering secondary lookups pay an
    extra seek into the clustered PK.

    Attributes:
        name: table name, unique within a schema.
        columns: ordered column list.
        primary_key: names of the PK columns (must be non-empty).
        row_overhead: fixed per-row storage overhead in bytes.
    """

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...]
    row_overhead: int = 20

    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {col.name: col for col in self.columns}
        if len(self._by_name) != len(self.columns):
            raise CatalogError(f"duplicate column names in table {self.name}")
        if not self.primary_key:
            raise CatalogError(f"table {self.name} needs a primary key")
        for pk_col in self.primary_key:
            if pk_col not in self._by_name:
                raise CatalogError(
                    f"primary key column {pk_col!r} not in table {self.name}"
                )

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name}") from None

    def has_column(self, name: str) -> bool:
        """True if the table defines a column with this name."""
        return name in self._by_name

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def row_width(self) -> int:
        """Average stored row width in bytes (payload + row overhead)."""
        return sum(col.width for col in self.columns) + self.row_overhead

    @property
    def pk_width(self) -> int:
        """Width of the primary key, paid by every secondary index entry."""
        return sum(self.column(c).width for c in self.primary_key)
