"""Column metadata."""

from __future__ import annotations

from dataclasses import dataclass

from .types import ColumnType


@dataclass(frozen=True)
class Column:
    """A table column.

    Attributes:
        name: column name, unique within its table.
        ctype: storage type (drives width and synthetic value domain).
        nullable: whether NULLs may occur.
    """

    name: str
    ctype: ColumnType
    nullable: bool = False

    @property
    def width(self) -> int:
        """Average stored width in bytes (plus a null bitmap bit, ignored)."""
        return self.ctype.width

    def __str__(self) -> str:
        return f"{self.name} {self.ctype}"
