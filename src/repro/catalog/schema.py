"""Schema: the collection of tables and their indexes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .index import Index
from .table import CatalogError, Table


@dataclass
class Schema:
    """A named set of tables plus the current secondary index configuration.

    The index configuration distinguishes *materialized* indexes (usable by
    the executor) from *dataless* indexes (optimizer-only, paper
    Sec. III-A4).  Both live in the same namespace so a dataless index can
    later be materialized in place.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    _indexes: dict[str, Index] = field(default_factory=dict)

    @classmethod
    def from_tables(cls, tables: Iterable[Table]) -> "Schema":
        """Build a schema from a table collection."""
        schema = cls()
        for table in tables:
            schema.add_table(table)
        return schema

    def add_table(self, table: Table) -> None:
        if table.name in self.tables:
            raise CatalogError(f"duplicate table {table.name}")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    # -- index configuration ------------------------------------------------

    def add_index(self, index: Index) -> Index:
        """Register an index; validates table/columns; idempotent.

        Re-adding an existing dataless index as materialized upgrades it.
        """
        table = self.table(index.table)
        for col in index.columns:
            if not table.has_column(col):
                raise CatalogError(
                    f"index column {col!r} not in table {index.table}"
                )
        existing = self._indexes.get(index.name)
        if existing is not None and existing.dataless and not index.dataless:
            self._indexes[index.name] = index
            return index
        if existing is not None:
            return existing
        self._indexes[index.name] = index
        return index

    def drop_index(self, index: Index | str) -> None:
        """Remove an index by value or name (no-op if absent)."""
        name = index if isinstance(index, str) else index.name
        self._indexes.pop(name, None)

    def indexes(self, table: str | None = None, include_dataless: bool = True) -> list[Index]:
        """Current indexes, optionally restricted to one table."""
        out = [
            idx
            for idx in self._indexes.values()
            if (table is None or idx.table == table)
            and (include_dataless or not idx.dataless)
        ]
        return out

    def has_index(self, index: Index) -> bool:
        """True if an index with the same key exists (dataless or not)."""
        return index.name in self._indexes

    def get_index(self, name: str) -> Index | None:
        return self._indexes.get(name)

    def clear_dataless(self) -> None:
        """Drop every dataless index (end of a what-if session)."""
        for name in [n for n, idx in self._indexes.items() if idx.dataless]:
            del self._indexes[name]

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables.values())

    def copy(self) -> "Schema":
        """Shallow-ish copy: shares Table objects, owns the index dict."""
        clone = Schema(dict(self.tables), dict(self._indexes))
        return clone
