"""Secondary index metadata, including dataless ("what-if") indexes."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from .table import Table


@dataclass(frozen=True)
class Index:
    """A (possibly hypothetical) secondary index.

    Attributes:
        table: name of the indexed table.
        columns: key columns, in index order.  Width of the index is
            ``len(columns)``.
        unique: uniqueness constraint flag (affects selectivity clamping).
        dataless: True for a *dataless index* (paper Sec. III-A4): catalog
            entry + statistics only, visible to the optimizer, never used
            by the executor.
    """

    table: str
    columns: tuple[str, ...]
    unique: bool = False
    dataless: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("index needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in index: {self.columns}")

    @cached_property
    def name(self) -> str:
        """Deterministic name derived from table and key columns.

        Computed once per instance: the name appears in every cache key,
        dedup map and plan-attribution lookup of the advisor hot path, so
        rebuilding the string per access measurably costs.
        """
        return f"idx_{self.table}_" + "_".join(self.columns)

    @cached_property
    def key(self) -> tuple:
        """Structural identity: ``(table, columns, unique)``.

        Unlike :attr:`name`, the structural key cannot collide when
        underscores appear in table or column names (``a_b`` + ``(c,)``
        and ``a`` + ``(b_c,)`` share a name but not a key), so caches and
        dedup maps should key on it.
        """
        return (self.table, self.columns, self.unique)

    @property
    def width(self) -> int:
        """Number of key columns."""
        return len(self.columns)

    def materialized(self) -> "Index":
        """The same index with data (dataless flag cleared)."""
        if not self.dataless:
            return self
        return Index(self.table, self.columns, self.unique, dataless=False)

    def as_dataless(self) -> "Index":
        """The same index as a hypothetical (dataless) index."""
        if self.dataless:
            return self
        return Index(self.table, self.columns, self.unique, dataless=True)

    def is_prefix_of(self, other: "Index") -> bool:
        """True if this index's key is a proper or equal prefix of *other*'s."""
        if self.table != other.table or self.width > other.width:
            return False
        return other.columns[: self.width] == self.columns

    def entry_width(self, table: Table) -> int:
        """Bytes per index entry: key columns + clustered PK pointer.

        PK columns already in the key are not double counted (InnoDB
        behaviour).
        """
        key_width = sum(table.column(c).width for c in self.columns)
        pk_extra = sum(
            table.column(c).width
            for c in table.primary_key
            if c not in self.columns
        )
        return key_width + pk_extra + 12   # ~12B per-entry b-tree overhead

    def __str__(self) -> str:
        tag = " (dataless)" if self.dataless else ""
        return f"{self.table}({', '.join(self.columns)}){tag}"
