"""Hierarchical tracing.

A :class:`Tracer` records *spans*: named, nested, wall-clock +
monotonic-timed intervals around units of work (an advisor phase, a
baseline run, a fleet sweep).  Spans form per-thread trees -- the span
opened last on a thread is the parent of any span opened underneath it --
and are exported either as nested JSON or as Chrome ``trace_event``
objects loadable in ``chrome://tracing`` / Perfetto.

The module keeps one process-wide tracer (:func:`get_tracer`); the
``with trace("advisor.merge"):`` context manager and the ``@traced``
decorator record into whichever tracer is current, so library code never
needs a tracer argument threaded through it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Span",
    "Tracer",
    "TRACE_WIRE_FORMAT",
    "TRACE_WIRE_VERSION",
    "get_tracer",
    "set_tracer",
    "trace",
    "traced",
    "load_chrome_trace",
]

#: Identifier + version of the cross-process span payload produced by
#: :meth:`Tracer.export_wire` and consumed by :meth:`Tracer.splice_wire`.
#: Bump the version on any field rename/removal (the splicer rejects
#: payloads from a newer version than it understands).
TRACE_WIRE_FORMAT = "repro.obs.trace_wire"
TRACE_WIRE_VERSION = 1


@dataclass
class Span:
    """One timed interval in a trace tree."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread_id: int
    start_wall: float               # epoch seconds (time.time)
    start: float                    # monotonic seconds (perf_counter)
    end: Optional[float] = None     # monotonic seconds; None while open
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    pid: Optional[int] = None       # None = this process; set on spliced spans

    @property
    def duration(self) -> float:
        """Elapsed monotonic seconds (so-far, while the span is open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    def set(self, **attrs: Any) -> "Span":
        """Attach key/value attributes to the span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """Nested plain-JSON representation."""
        out = {
            "name": self.name,
            "start_wall": self.start_wall,
            "duration_seconds": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }
        if self.pid is not None:
            out["pid"] = self.pid
        return out

    def to_wire(self) -> dict:
        """Cross-process representation (raw clocks, local span ids)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "thread_id": self.thread_id,
            "start_wall": self.start_wall,
            "start": self.start,
            "end": self.end if self.end is not None else time.perf_counter(),
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "children": [child.to_wire() for child in self.children],
        }


class _NullSpan:
    """Stand-in yielded when tracing is disabled; absorbs attribute sets."""

    name = ""
    children: list = []
    duration = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe hierarchical span recorder.

    Args:
        enabled: when False every ``span()`` yields a shared null span
            (near-zero overhead).
        max_spans: retention cap; spans finished beyond the cap are
            dropped (counted in ``dropped``) so long-running processes
            cannot grow without bound.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 100_000):
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._next_id = 0
        self._finished: list[Span] = []
        self._roots: list[Span] = []
        self._local = threading.local()

    # -- recording ------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start_span(self, name: str, **attrs: Any) -> Span:
        """Open a span manually; pair with :meth:`end_span`."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            thread_id=threading.get_ident(),
            start_wall=time.time(),
            start=time.perf_counter(),
            attrs=dict(attrs),
        )
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif any(s is span for s in stack):
            # Mismatched nesting: unwind through the span.
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
                return
            self._finished.append(span)
            if span.parent_id is None:
                self._roots.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("advisor.ranking") as s: ...``"""
        if not self.enabled:
            yield _NULL_SPAN  # type: ignore[misc]
            return
        span = self.start_span(name, **attrs)
        try:
            yield span
        finally:
            self.end_span(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- inspection -----------------------------------------------------------

    def spans(self) -> list[Span]:
        """All finished spans, in finish order."""
        with self._lock:
            return list(self._finished)

    def roots(self) -> list[Span]:
        """Finished root spans (trace trees)."""
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans() if s.name == name]

    def summary(self) -> dict[str, dict]:
        """Aggregate finished spans by name.

        Numeric span attributes are summed -- an advisor phase recording
        ``optimizer_calls`` per span therefore yields per-phase call
        totals here.
        """
        agg: dict[str, dict] = {}
        for span in self.spans():
            entry = agg.setdefault(
                span.name,
                {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0, "attrs": {}},
            )
            duration = span.duration
            entry["count"] += 1
            entry["total_seconds"] += duration
            entry["max_seconds"] = max(entry["max_seconds"], duration)
            for key, value in span.attrs.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                entry["attrs"][key] = entry["attrs"].get(key, 0) + value
        return agg

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self._roots.clear()
            self.dropped = 0
        self._local = threading.local()

    # -- cross-process propagation --------------------------------------------

    def export_wire(self) -> dict:
        """Serialize every finished span tree for shipment to another
        process (see ``docs/OBSERVABILITY.md``, *trace propagation wire
        format*).

        Worker processes call this after finishing a chunk of work; the
        parent splices the payload into its own trace with
        :meth:`splice_wire`.  Monotonic clocks are shipped raw: on the
        platforms where the fork-based pool exists, ``perf_counter`` is
        ``CLOCK_MONOTONIC`` and shares its timebase across processes, so
        parent and worker spans align on one axis.
        """
        return {
            "format": TRACE_WIRE_FORMAT,
            "v": TRACE_WIRE_VERSION,
            "pid": os.getpid(),
            "dropped": self.dropped,
            "spans": [root.to_wire() for root in self.roots()],
        }

    def splice_wire(
        self, payload: dict, parent: Optional[Span] = None
    ) -> list[Span]:
        """Graft spans exported by another process into this trace.

        Every shipped span is rebuilt as a local :class:`Span` with a
        fresh id (worker-local ids would collide across workers), tagged
        with the originating pid, and attached under *parent* (or as new
        roots when *parent* is None).  Returns the grafted root spans.
        """
        version = payload.get("v", 0)
        if payload.get("format") != TRACE_WIRE_FORMAT or not isinstance(
            version, int
        ) or version > TRACE_WIRE_VERSION:
            raise ValueError(
                f"not a splicable trace payload (format="
                f"{payload.get('format')!r}, v={payload.get('v')!r})"
            )
        pid = payload.get("pid")
        rebuilt: list[Span] = []

        def rebuild(node: dict, parent_span: Optional[Span]) -> Span:
            with self._lock:
                span_id = self._next_id
                self._next_id += 1
            span = Span(
                name=str(node.get("name", "?")),
                span_id=span_id,
                parent_id=parent_span.span_id if parent_span else None,
                thread_id=int(node.get("thread_id") or 0),
                start_wall=float(node.get("start_wall") or 0.0),
                start=float(node.get("start") or 0.0),
                end=float(node.get("end") or 0.0),
                attrs=dict(node.get("attrs") or {}),
                pid=pid,
            )
            if parent_span is not None:
                parent_span.children.append(span)
            for child in node.get("children", ()):
                rebuild(child, span)
            rebuilt.append(span)
            return span

        roots = [rebuild(node, parent) for node in payload.get("spans", ())]
        with self._lock:
            self.dropped += int(payload.get("dropped") or 0)
            for span in rebuilt:
                if len(self._finished) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._finished.append(span)
                if span.parent_id is None:
                    self._roots.append(span)
        return roots

    # -- export ---------------------------------------------------------------

    def to_json(self) -> dict:
        """Nested span trees as plain JSON."""
        return {
            "format": "repro.obs.trace",
            "dropped": self.dropped,
            "spans": [root.to_dict() for root in self.roots()],
        }

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON (load in chrome://tracing/Perfetto).

        Every finished span becomes one complete ("X") event; timestamps
        are microseconds relative to the earliest span so traces align at
        t=0 regardless of process start time.
        """
        spans = self.spans()
        origin = min((s.start for s in spans), default=0.0)
        own_pid = os.getpid()
        events = []
        pids_seen: set[int] = set()
        for span in spans:
            pid = span.pid if span.pid is not None else own_pid
            pids_seen.add(pid)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
        # Name the per-process lanes so Perfetto shows "worker-<pid>"
        # tracks instead of bare numbers.
        for pid in sorted(pids_seen):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {
                        "name": "repro" if pid == own_pid else f"worker-{pid}"
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class ChromeSpan:
    """One event parsed back from a Chrome trace_event payload."""

    name: str
    ts_us: float
    dur_us: float
    tid: int
    args: dict


def load_chrome_trace(payload: dict | list) -> list[ChromeSpan]:
    """Parse a Chrome trace_event payload back into span records.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare-array form; only complete ("X") events are returned.
    """
    events = payload.get("traceEvents", []) if isinstance(payload, dict) else payload
    out = []
    for event in events:
        if event.get("ph") != "X":
            continue
        out.append(
            ChromeSpan(
                name=event.get("name", ""),
                ts_us=float(event.get("ts", 0.0)),
                dur_us=float(event.get("dur", 0.0)),
                tid=int(event.get("tid", 0)),
                args=dict(event.get("args", {})),
            )
        )
    return out


# -- process-wide tracer -----------------------------------------------------

_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer library code records into."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests, per-run isolation)."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def trace(name: str, **attrs: Any) -> Iterator[Span]:
    """Record a span on the process-wide tracer."""
    with get_tracer().span(name, **attrs) as span:
        yield span


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form: ``@traced("advisor.ranking")`` (defaults to the
    function's qualified name)."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with trace(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
