"""Sampling profiler: below-the-span visibility with bounded overhead.

The tracer decomposes a run into phases; this module decomposes a phase
into *frames*.  :class:`SamplingProfiler` runs a timer thread that walks
``sys._current_frames()`` at a configurable rate (default 97 Hz -- prime,
so sampling does not phase-lock with periodic work) and aggregates the
observed stacks.  No signals and no ``sys.setprofile`` hooks are
involved: the profiled code runs unmodified, sampling works from any
thread, and the only cost is the GIL time the sampler thread spends
walking frames -- which the profiler measures about itself and reports as
the ``profiler.overhead_pct`` gauge.

Exports:

* ``collapsed()`` -- one ``frame;frame;frame count`` line per distinct
  stack, the format ``flamegraph.pl`` and speedscope import directly;
* ``to_dict()`` -- JSON summary (top frames, per-region sample counts,
  overhead) embedded into telemetry snapshots and the ``repro top``
  status feed.

The process-wide instance (:func:`get_profiler`) is ``None`` until
someone opts in (:func:`enable_profiler`, ``repro advise --profile``, or
``REPRO_PROFILE=1`` for the benches), so the :func:`profile` hooks wired
through the advisor, what-if costing, the executor and the bench harness
are near-free no-ops by default.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import gauge

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "get_profiler",
    "set_profiler",
    "enable_profiler",
    "disable_profiler",
    "profiler_from_env",
    "profile",
]

#: Default sampling rate.  Prime (like Linux perf's 99) so the sampler
#: does not alias with work that recurs at round frequencies.
DEFAULT_HZ = 97

#: Distinct stacks retained; further novel stacks aggregate into one
#: overflow bucket so pathological workloads cannot grow memory unbounded.
DEFAULT_MAX_STACKS = 10_000

#: Stack-depth cap per sample (frames below the cap are dropped).
DEFAULT_MAX_DEPTH = 64

OVERFLOW_FRAME = "<overflow>"


def _frame_label(code) -> str:
    """``module.qualname`` for one frame (line numbers would explode
    stack cardinality, so granularity is the function)."""
    base = os.path.basename(code.co_filename)
    if base.endswith(".py"):
        base = base[:-3]
    qualname = getattr(code, "co_qualname", None) or code.co_name
    # Space and ";" are structural in the collapsed-stack format (e.g.
    # "<frozen runpy>" filenames would split a line).
    return f"{base}.{qualname}".replace(" ", "_").replace(";", ":")


class SamplingProfiler:
    """Timer-thread sampling profiler with bounded memory.

    Args:
        hz: target samples per second.
        max_stacks: distinct stacks to retain (overflow aggregates).
        max_depth: frames kept per stack, innermost preserved.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stacks: int = DEFAULT_MAX_STACKS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self._interval = 1.0 / max(1e-3, self.hz)
        self._lock = threading.Lock()
        self._stacks: dict[tuple[str, ...], int] = {}
        self._region_counts: dict[str, int] = {}
        self._regions: list[str] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.samples = 0
        self.truncated = 0
        self._sampling_seconds = 0.0
        self._wall_seconds = 0.0
        self._started_at: Optional[float] = None
        self._nesting = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and publish the ``profiler.overhead_pct`` gauge."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        if self._started_at is not None:
            self._wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        # Call-time binding: record into whatever registry is current.
        gauge(
            "profiler.overhead_pct",
            "sampler GIL time as % of profiled wall time",
        ).set(self.overhead_pct)

    def reset(self) -> None:
        """Drop accumulated samples (the profiler may keep running)."""
        with self._lock:
            self._stacks.clear()
            self._region_counts.clear()
            self.samples = 0
            self.truncated = 0
            self._sampling_seconds = 0.0
            self._wall_seconds = 0.0
            if self._started_at is not None:
                self._started_at = time.perf_counter()

    # -- sampling -------------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.is_set():
            t0 = time.perf_counter()
            self._sample(own)
            took = time.perf_counter() - t0
            with self._lock:
                self._sampling_seconds += took
            delay = self._interval - took
            if delay > 0:
                self._stop.wait(delay)

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            region = self._regions[-1] if self._regions else ""
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    stack.append(_frame_label(frame.f_code))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()
                self._record(tuple(stack), region)

    def _record(self, stack: tuple[str, ...], region: str = "") -> None:
        """Account one sampled stack (callers must hold ``_lock``; split
        out so the bounded-memory path is directly testable)."""
        if stack not in self._stacks and len(self._stacks) >= self.max_stacks:
            stack = (OVERFLOW_FRAME,)
            self.truncated += 1
        self._stacks[stack] = self._stacks.get(stack, 0) + 1
        self.samples += 1
        if region:
            self._region_counts[region] = self._region_counts.get(region, 0) + 1

    # -- regions (the `profile()` hook state) ---------------------------------

    def push_region(self, name: str) -> None:
        with self._lock:
            self._regions.append(name)

    def pop_region(self) -> None:
        with self._lock:
            if self._regions:
                self._regions.pop()

    def _enter(self) -> None:
        self._nesting += 1
        if self._nesting == 1:
            self.start()

    def _exit(self) -> None:
        self._nesting -= 1
        if self._nesting <= 0:
            self._nesting = 0
            self.stop()

    # -- accounting -----------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        live = 0.0
        if self._started_at is not None:
            live = time.perf_counter() - self._started_at
        return self._wall_seconds + live

    @property
    def overhead_pct(self) -> float:
        """Sampler GIL time as a percentage of profiled wall time."""
        wall = self.wall_seconds
        if wall <= 0:
            return 0.0
        with self._lock:
            return 100.0 * self._sampling_seconds / wall

    # -- export ---------------------------------------------------------------

    def stacks(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self._stacks)

    def collapsed(self) -> str:
        """Collapsed-stack text (``flamegraph.pl`` / speedscope input)."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks().items())
            if stack
        ]
        return "\n".join(lines)

    def write_collapsed(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.collapsed() + "\n")

    def top_frames(self, n: int = 10) -> list[dict]:
        """Hottest frames by *self* (leaf) samples."""
        self_counts: dict[str, int] = {}
        total = 0
        for stack, count in self.stacks().items():
            if not stack:
                continue
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            total += count
        ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {
                "frame": frame,
                "samples": count,
                "pct": 100.0 * count / total if total else 0.0,
            }
            for frame, count in ranked[:n]
        ]

    def to_dict(self) -> dict:
        with self._lock:
            regions = dict(self._region_counts)
            distinct = len(self._stacks)
        return {
            "hz": self.hz,
            "samples": self.samples,
            "distinct_stacks": distinct,
            "truncated": self.truncated,
            "wall_seconds": self.wall_seconds,
            "overhead_pct": self.overhead_pct,
            "top_frames": self.top_frames(10),
            "regions": dict(sorted(regions.items())),
        }


# -- process-wide profiler ----------------------------------------------------

_profiler: Optional[SamplingProfiler] = None


def get_profiler() -> Optional[SamplingProfiler]:
    """The process-wide profiler, or None when profiling is off."""
    return _profiler


def set_profiler(
    profiler: Optional[SamplingProfiler],
) -> Optional[SamplingProfiler]:
    """Install (or clear, with None) the process-wide profiler."""
    global _profiler
    previous = _profiler
    _profiler = profiler
    return previous


def enable_profiler(hz: float = DEFAULT_HZ, **kwargs) -> SamplingProfiler:
    """Opt in: install a process-wide profiler (the :func:`profile` hooks
    start/stop it around instrumented regions).  Reuses an existing
    instance so repeated enables don't drop samples."""
    global _profiler
    if _profiler is None:
        _profiler = SamplingProfiler(hz=hz, **kwargs)
    return _profiler


def disable_profiler() -> Optional[SamplingProfiler]:
    """Stop and uninstall the process-wide profiler; returns it so the
    caller can export its samples."""
    profiler = set_profiler(None)
    if profiler is not None:
        profiler.stop()
    return profiler


def profiler_from_env() -> Optional[SamplingProfiler]:
    """Honor ``REPRO_PROFILE=1`` (+ optional ``REPRO_PROFILE_HZ``): the
    opt-in used by the bench harness and CI smoke jobs."""
    flag = os.environ.get("REPRO_PROFILE", "")
    if flag in ("", "0"):
        return None
    hz = float(os.environ.get("REPRO_PROFILE_HZ", DEFAULT_HZ))
    return enable_profiler(hz=hz)


@contextmanager
def profile(name: str = "") -> Iterator[None]:
    """Mark a profiled region.

    A no-op unless a process-wide profiler is installed; otherwise the
    sampler runs while at least one region is open and samples are
    additionally bucketed under the innermost region *name* (rendered by
    ``repro top`` and ``obs-report``).
    """
    profiler = get_profiler()
    if profiler is None:
        yield
        return
    if name:
        profiler.push_region(name)
    profiler._enter()
    try:
        yield
    finally:
        profiler._exit()
        if name:
            profiler.pop_region()
