"""Human-readable summaries of exported telemetry.

``repro.cli obs-report FILE`` renders any of the JSON artifacts the
subsystem produces -- a Chrome trace (``--trace`` output), a nested span
dump, a bench result carrying a ``telemetry`` block, or a bare
registry/telemetry snapshot -- into the terminal summary a human reads
first: where the time went per phase, how many optimizer calls each phase
spent, and the headline counters.
"""

from __future__ import annotations

from typing import Any

from .tracer import ChromeSpan, load_chrome_trace

__all__ = ["render_report"]


def render_report(payload: Any) -> str:
    """Dispatch on the payload shape and render a text report."""
    sections: list[str] = []
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            sections.append(_render_chrome(load_chrome_trace(payload)))
        if payload.get("format") == "repro.obs.trace":
            sections.append(_render_span_trees(payload.get("spans", [])))
        telemetry = payload.get("telemetry")
        if isinstance(telemetry, dict):
            sections.append(_render_telemetry(telemetry))
        elif _looks_like_telemetry(payload):
            sections.append(_render_telemetry(payload))
    if not sections:
        return "no telemetry found (expected a trace, telemetry, or metrics JSON)"
    return "\n\n".join(s for s in sections if s.strip())


def _looks_like_telemetry(payload: dict) -> bool:
    return any(k in payload for k in ("metrics", "counters", "histograms", "spans"))


# -- chrome trace ------------------------------------------------------------


def _render_chrome(spans: list[ChromeSpan]) -> str:
    if not spans:
        return "trace: no complete events"
    total_us = max((s.ts_us + s.dur_us for s in spans), default=0.0) - min(
        (s.ts_us for s in spans), default=0.0
    )
    agg: dict[str, dict] = {}
    for span in spans:
        entry = agg.setdefault(
            span.name, {"count": 0, "total_us": 0.0, "max_us": 0.0, "calls": 0.0}
        )
        entry["count"] += 1
        entry["total_us"] += span.dur_us
        entry["max_us"] = max(entry["max_us"], span.dur_us)
        calls = span.args.get("optimizer_calls")
        if isinstance(calls, (int, float)):
            entry["calls"] += calls
    lines = [
        f"trace: {len(spans)} spans, {len(agg)} distinct names, "
        f"{total_us / 1e6:.3f}s wall",
        "",
        _row("span", "count", "total ms", "max ms", "opt calls"),
        "-" * 74,
    ]
    for name, entry in sorted(agg.items(), key=lambda kv: -kv[1]["total_us"]):
        lines.append(
            _row(
                name,
                entry["count"],
                f"{entry['total_us'] / 1e3:.2f}",
                f"{entry['max_us'] / 1e3:.2f}",
                int(entry["calls"]) if entry["calls"] else "-",
            )
        )
    return "\n".join(lines)


# -- nested span dump --------------------------------------------------------


def _render_span_trees(spans: list[dict]) -> str:
    lines = ["span tree:"]

    def walk(node: dict, depth: int) -> None:
        attrs = node.get("attrs") or {}
        detail = ""
        if "optimizer_calls" in attrs:
            detail = f"  [{attrs['optimizer_calls']} optimizer calls]"
        lines.append(
            f"  {'  ' * depth}{node.get('name', '?')}: "
            f"{node.get('duration_seconds', 0.0) * 1e3:.2f} ms{detail}"
        )
        for child in node.get("children", []):
            walk(child, depth + 1)

    for root in spans:
        walk(root, 0)
    return "\n".join(lines)


# -- telemetry / registry snapshots ------------------------------------------


def _render_telemetry(telemetry: dict) -> str:
    metrics = telemetry.get("metrics", telemetry)
    sections: list[str] = []

    spans = telemetry.get("spans")
    if isinstance(spans, dict) and spans:
        lines = [
            "phases:",
            _row("span", "count", "total ms", "max ms", "opt calls"),
            "-" * 74,
        ]
        for name, entry in sorted(
            spans.items(), key=lambda kv: -kv[1].get("total_seconds", 0.0)
        ):
            calls = (entry.get("attrs") or {}).get("optimizer_calls")
            lines.append(
                _row(
                    name,
                    entry.get("count", 0),
                    f"{entry.get('total_seconds', 0.0) * 1e3:.2f}",
                    f"{entry.get('max_seconds', 0.0) * 1e3:.2f}",
                    int(calls) if calls else "-",
                )
            )
        sections.append("\n".join(lines))

    counters = metrics.get("counters") or {}
    whatif = _render_whatif(counters)
    if whatif:
        sections.append(whatif)
    workers = _render_parallel(counters)
    if workers:
        sections.append(workers)
    profiler = _render_profiler(telemetry.get("profiler"))
    if profiler:
        sections.append(profiler)
    if counters:
        lines = ["counters:"]
        for name, by_label in sorted(counters.items()):
            for label, value in sorted(by_label.items()):
                suffix = f"{{{label}}}" if label else ""
                lines.append(f"  {name}{suffix} = {value:g}")
        sections.append("\n".join(lines))

    gauges = metrics.get("gauges") or {}
    if gauges:
        lines = ["gauges:"]
        for name, by_label in sorted(gauges.items()):
            for label, value in sorted(by_label.items()):
                suffix = f"{{{label}}}" if label else ""
                lines.append(f"  {name}{suffix} = {value:g}")
        sections.append("\n".join(lines))

    histograms = metrics.get("histograms") or {}
    if histograms:
        lines = [
            "histograms:",
            _row("histogram", "count", "mean", "p50", "p95/p99"),
            "-" * 74,
        ]
        for name, by_label in sorted(histograms.items()):
            for label, summary in sorted(by_label.items()):
                suffix = f"{{{label}}}" if label else ""
                lines.append(
                    _row(
                        f"{name}{suffix}",
                        summary.get("count", 0),
                        f"{summary.get('mean', 0.0):.4g}",
                        f"{summary.get('p50', 0.0):.4g}",
                        f"{summary.get('p95', 0.0):.4g}/{summary.get('p99', 0.0):.4g}",
                    )
                )
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


def _counter_total(counters: dict, name: str) -> float:
    return sum((counters.get(name) or {}).values())


def _render_whatif(counters: dict) -> str:
    """The what-if cache headline: how rarely the optimizer was consulted."""
    evals = _counter_total(counters, "whatif.evaluations")
    if not evals:
        return ""
    hits = _counter_total(counters, "whatif.cache_hits")
    canonical = _counter_total(counters, "whatif.canonical_hits")
    evictions = _counter_total(counters, "whatif.cache_evictions")
    analyze_hits = _counter_total(counters, "analyze.cache_hits")
    lines = [
        "what-if cache:",
        f"  plan requests      = {evals:g}",
        f"  cache hits         = {hits:g}  ({hits / evals:.1%},"
        f" {canonical:g} via canonical subset rule)",
        f"  optimizer consults = {evals - hits:g}",
        f"  evictions          = {evictions:g}",
    ]
    if analyze_hits:
        lines.append(f"  analyze cache hits = {analyze_hits:g}")
    return "\n".join(lines)


def _label_value(label: str, key: str) -> str:
    for part in label.split(","):
        k, _, v = part.partition("=")
        if k == key:
            return v
    return ""


def _render_parallel(counters: dict) -> str:
    """Per-worker merge-back accounting from a ``--jobs N`` run."""
    chunks = counters.get("parallel.worker.chunks") or {}
    if not chunks:
        return ""
    spans = counters.get("parallel.worker.spans") or {}
    seconds = counters.get("parallel.worker.seconds") or {}
    nbytes = counters.get("parallel.worker.bytes") or {}
    total_seconds = sum(seconds.values())
    lines = [
        "parallel workers:",
        _row("worker", "chunks", "spans", "wall ms", "merge-back"),
        "-" * 74,
    ]
    for label in sorted(chunks):
        pid = _label_value(label, "pid") or label
        secs = seconds.get(label, 0.0)
        share = f" ({secs / total_seconds:.0%})" if total_seconds else ""
        lines.append(
            _row(
                f"pid {pid}",
                f"{chunks.get(label, 0):g}",
                f"{spans.get(label, 0):g}",
                f"{secs * 1e3:.2f}{share}",
                f"{nbytes.get(label, 0.0) / 1024:.1f} KiB",
            )
        )
    return "\n".join(lines)


def _render_profiler(profiler: Any) -> str:
    """Top sampled frames from an attached profiler summary."""
    if not isinstance(profiler, dict) or not profiler.get("samples"):
        return ""
    lines = [
        (
            f"profiler: {profiler.get('samples', 0)} samples at "
            f"{profiler.get('hz', 0):g} Hz over "
            f"{profiler.get('wall_seconds', 0.0):.2f}s "
            f"(overhead {profiler.get('overhead_pct', 0.0):.2f}%)"
        ),
    ]
    for frame in (profiler.get("top_frames") or [])[:10]:
        lines.append(
            f"  {frame.get('pct', 0.0):>5.1f}%  {frame.get('samples', 0):>6}  "
            f"{frame.get('frame', '?')}"
        )
    regions = profiler.get("regions") or {}
    if regions:
        hot = sorted(regions.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append(
            "  regions: "
            + ", ".join(f"{name} ({count})" for name, count in hot[:5])
        )
    return "\n".join(lines)


def _row(name: Any, count: Any, a: Any, b: Any, c: Any) -> str:
    return (
        f"{str(name)[:40]:<40} {str(count):>6} {str(a):>10} "
        f"{str(b):>10} {str(c):>12}"
    )
