"""Fleet health reporting from a decision journal.

``repro.cli fleet-report JOURNAL.jsonl`` renders the operator-facing view
of a journal produced by any instrumented run (a tuning cycle, a fleet
sweep, ``benchmarks/bench_continuous.py``):

* **decision audit** -- every advisor accept/reject with its reason, in
  sequence order, grouped by tuning cycle;
* **regression timeline** -- flagged regressions and index rollbacks over
  the journal's sequence axis;
* **digest time series** -- per-window workload digests (executions,
  CPU, discarded-data shape) per database;
* **top estimation errors** -- the worst per-node Q-errors recorded by
  EXPLAIN ANALYZE runs.

All sections derive deterministically from the record list: rendering a
journal, re-reading it from disk and rendering again yields the identical
report (the replay-determinism property ``tests/test_events.py`` pins).
"""

from __future__ import annotations

__all__ = ["render_fleet_report", "fleet_report_data"]

#: Sequence-ordered record list -> structured report sections.


def fleet_report_data(records: list[dict]) -> dict:
    """The ``--json`` shape: structured sections from journal records."""
    return {
        "events": len(records),
        "types": _type_counts(records),
        "cycles": _cycles(records),
        "decisions": _decisions(records),
        "regressions": _regressions(records),
        "digests": _digests(records),
        "estimate_errors": _estimate_errors(records),
    }


def render_fleet_report(records: list[dict]) -> str:
    """Human-readable fleet health report."""
    data = fleet_report_data(records)
    sections = [
        _render_header(records, data),
        _render_cycles(data["cycles"]),
        _render_decisions(data["decisions"]),
        _render_regressions(data["regressions"]),
        _render_digests(data["digests"]),
        _render_estimate_errors(data["estimate_errors"]),
    ]
    return "\n\n".join(s for s in sections if s)


# -- section extraction ------------------------------------------------------


def _type_counts(records: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in records:
        counts[record.get("type", "?")] = counts.get(record.get("type", "?"), 0) + 1
    return dict(sorted(counts.items()))


def _cycles(records: list[dict]) -> list[dict]:
    """Pair cycle_start/cycle_end records per database, in order."""
    cycles: list[dict] = []
    open_by_db: dict[str, dict] = {}
    for record in records:
        if record["type"] == "cycle_start":
            entry = {
                "database": record.get("database", ""),
                "start_seq": record["seq"],
                "queries": record.get("queries", 0),
                "budget_bytes": record.get("budget_bytes", 0),
                "end_seq": None,
            }
            open_by_db[entry["database"]] = entry
            cycles.append(entry)
        elif record["type"] == "cycle_end":
            database = record.get("database", "")
            entry = open_by_db.pop(database, None)
            if entry is None:
                entry = {
                    "database": database,
                    "start_seq": None,
                    "queries": 0,
                    "budget_bytes": 0,
                }
                cycles.append(entry)
            entry.update(
                end_seq=record["seq"],
                created=list(record.get("created", [])),
                dropped=list(record.get("dropped", [])),
                cost_before=record.get("cost_before", 0.0),
                cost_after=record.get("cost_after", 0.0),
                improvement=record.get("improvement", 0.0),
                optimizer_calls=record.get("optimizer_calls", 0),
            )
    return cycles


def _decisions(records: list[dict]) -> list[dict]:
    out = []
    for record in records:
        if record["type"] != "advisor_decision":
            continue
        out.append(
            {
                "seq": record["seq"],
                "action": record.get("action", "?"),
                "reason": record.get("reason", ""),
                "index": record.get("index", ""),
                "table": record.get("table", ""),
                "phase": record.get("phase", ""),
                "benefit": record.get("benefit", 0.0),
                "maintenance": record.get("maintenance", 0.0),
                "size_bytes": record.get("size_bytes", 0),
                "database": record.get("database", ""),
            }
        )
    return out


def _regressions(records: list[dict]) -> list[dict]:
    out = []
    for record in records:
        if record["type"] == "regression_flagged":
            out.append(
                {
                    "seq": record["seq"],
                    "kind": "regression",
                    "database": record.get("database", ""),
                    "sql": record.get("normalized_sql", ""),
                    "ratio": record.get("ratio", 1.0),
                    "before": record.get("before_cpu_avg", 0.0),
                    "after": record.get("after_cpu_avg", 0.0),
                    "suspects": list(record.get("suspects", [])),
                }
            )
        elif record["type"] == "index_rollback":
            out.append(
                {
                    "seq": record["seq"],
                    "kind": "rollback",
                    "database": record.get("database", ""),
                    "index": record.get("index", ""),
                    "table": record.get("table", ""),
                    "reason": record.get("reason", ""),
                }
            )
    return out


def _digests(records: list[dict]) -> dict[str, list[dict]]:
    """Per-database window series of workload digests."""
    series: dict[str, list[dict]] = {}
    for record in records:
        if record["type"] != "workload_digest":
            continue
        series.setdefault(record.get("database", ""), []).append(
            {
                "seq": record["seq"],
                "window": record.get("window", 0),
                "queries": record.get("queries", 0),
                "executions": record.get("executions", 0),
                "total_cpu": record.get("total_cpu", 0.0),
                "rows_read": record.get("rows_read", 0),
                "rows_sent": record.get("rows_sent", 0),
                "top": list(record.get("top", [])),
            }
        )
    return series


def _estimate_errors(records: list[dict], limit: int = 10) -> list[dict]:
    errors = [
        {
            "seq": record["seq"],
            "sql": record.get("sql", ""),
            "node": record.get("node", ""),
            "est_rows": record.get("est_rows", 0.0),
            "actual_rows": record.get("actual_rows", 0),
            "q_error": record.get("q_error", 1.0),
        }
        for record in records
        if record["type"] == "plan_estimate"
    ]
    errors.sort(key=lambda e: (-e["q_error"], e["seq"]))
    return errors[:limit]


# -- text rendering ----------------------------------------------------------


def _render_header(records: list[dict], data: dict) -> str:
    if not records:
        return "journal: empty (no events)"
    lo, hi = records[0]["seq"], records[-1]["seq"]
    counts = ", ".join(f"{k}={v}" for k, v in data["types"].items())
    return f"journal: {len(records)} events (seq {lo}..{hi})\n  {counts}"


def _render_cycles(cycles: list[dict]) -> str:
    if not cycles:
        return ""
    lines = ["tuning cycles:"]
    for cycle in cycles:
        if cycle.get("end_seq") is None:
            lines.append(
                f"  [{cycle['start_seq']:>5}] {cycle['database'] or '-'}: "
                f"cycle open ({cycle['queries']} queries)"
            )
            continue
        created = cycle.get("created", [])
        dropped = cycle.get("dropped", [])
        lines.append(
            f"  [{_seq_range(cycle)}] {cycle['database'] or '-'}: "
            f"{cycle['queries']} queries, "
            f"+{len(created)}/-{len(dropped)} indexes, "
            f"cost {cycle.get('cost_before', 0.0):.1f} -> "
            f"{cycle.get('cost_after', 0.0):.1f} "
            f"({cycle.get('improvement', 0.0) * 100:+.1f}%)"
        )
        for name in created:
            lines.append(f"      CREATE {name}")
        for name in dropped:
            lines.append(f"      DROP   {name}")
    return "\n".join(lines)


def _seq_range(cycle: dict) -> str:
    start = cycle.get("start_seq")
    end = cycle.get("end_seq")
    if start is None:
        return f"..{end}"
    return f"{start}..{end}"


def _render_decisions(decisions: list[dict]) -> str:
    if not decisions:
        return ""
    lines = ["decision audit:"]
    for d in decisions:
        mark = "+" if d["action"] == "accepted" else "-"
        db = f" [{d['database']}]" if d["database"] else ""
        detail = ""
        if d["action"] == "accepted":
            detail = (
                f"  (benefit {d['benefit']:.3f}, "
                f"maintenance {d['maintenance']:.3f})"
            )
        lines.append(
            f"  [{d['seq']:>5}]{db} {mark} {d['index']}: "
            f"{d['reason']}{detail}"
        )
    return "\n".join(lines)


def _render_regressions(timeline: list[dict]) -> str:
    lines = ["regression timeline:"]
    if not timeline:
        lines.append("  (no regressions observed)")
        return "\n".join(lines)
    for event in timeline:
        db = f" [{event['database']}]" if event["database"] else ""
        if event["kind"] == "regression":
            suspects = ", ".join(event["suspects"]) or "(none)"
            lines.append(
                f"  [{event['seq']:>5}]{db} REGRESSED x{event['ratio']:.2f} "
                f"(cpu {event['before']:.4g} -> {event['after']:.4g}): "
                f"{_truncate(event['sql'])}"
            )
            lines.append(f"          suspects: {suspects}")
        else:
            lines.append(
                f"  [{event['seq']:>5}]{db} ROLLBACK {event['index']} "
                f"({event['reason']})"
            )
    return "\n".join(lines)


def _render_digests(series: dict[str, list[dict]]) -> str:
    if not series:
        return ""
    lines = ["workload digests:"]
    for database, windows in sorted(series.items()):
        lines.append(f"  {database or '-'}:")
        lines.append(
            f"    {'window':>6} {'queries':>8} {'execs':>8} "
            f"{'cpu':>12} {'ddr':>6}"
        )
        for w in windows:
            ddr = (
                min(1.0, w["rows_sent"] / w["rows_read"])
                if w["rows_read"] > 0
                else 1.0
            )
            lines.append(
                f"    {w['window']:>6} {w['queries']:>8} {w['executions']:>8} "
                f"{w['total_cpu']:>12.4g} {ddr:>6.2f}"
            )
        tops = windows[-1].get("top", [])
        if tops:
            lines.append("    top queries (last window, by expected benefit):")
            for top in tops[:3]:
                lines.append(
                    f"      B={top.get('benefit', 0.0):.4g} "
                    f"cpu_avg={top.get('cpu_avg', 0.0):.4g} "
                    f"x{top.get('executions', 0)}: "
                    f"{_truncate(top.get('sql', ''))}"
                )
    return "\n".join(lines)


def _render_estimate_errors(errors: list[dict]) -> str:
    if not errors:
        return ""
    lines = [
        "top estimation errors (EXPLAIN ANALYZE):",
        f"  {'Q-error':>8} {'est':>10} {'actual':>10}  node",
    ]
    for e in errors:
        lines.append(
            f"  {e['q_error']:>8.2f} {e['est_rows']:>10.0f} "
            f"{e['actual_rows']:>10}  {e['node']}"
        )
        lines.append(f"           {_truncate(e['sql'])}")
    return "\n".join(lines)


def _truncate(text: str, width: int = 72) -> str:
    text = " ".join(text.split())
    return text if len(text) <= width else text[: width - 3] + "..."
