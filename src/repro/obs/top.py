"""``repro top`` -- a live terminal dashboard over published status.

Renders the :mod:`~repro.obs.snapshots` status document an instrumented
run publishes (advisor/bench/fleet processes write it via the snapshot
bus; ``repro top`` reads it from the shared default path or
``--status FILE``).  Plain ANSI -- a clear-screen escape per refresh, no
curses -- so it works in CI logs (``--once`` prints a single frame) and
over the dumbest SSH session alike.  ``--serve PORT`` exposes the same
document on a stdlib HTTP endpoint instead of drawing it.

The renderer is a pure function of the status document (plus an
injectable "now"), which is what makes the golden-output test possible.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Optional, Sequence

from .snapshots import (
    counter_rates,
    default_status_path,
    load_status,
    serve_status,
)

__all__ = ["render_top", "run_top", "make_top_parser"]

WIDTH = 78


def _counters(snap: dict) -> dict:
    return (snap.get("metrics") or {}).get("counters") or {}


def _gauges(snap: dict) -> dict:
    return (snap.get("metrics") or {}).get("gauges") or {}


def _histograms(snap: dict) -> dict:
    return (snap.get("metrics") or {}).get("histograms") or {}


def _total(by_label: Optional[dict]) -> float:
    return sum((by_label or {}).values())


def _label_value(label: str, key: str) -> str:
    """Pull one key out of a ``k=v,k2=v2`` snapshot label string."""
    for part in label.split(","):
        k, _, v = part.partition("=")
        if k == key:
            return v
    return ""


def _fmt_count(value: float) -> str:
    return f"{value:g}"


def _fmt_rate(value: Optional[float]) -> str:
    return f"{value:.1f}/s" if value is not None else "-"


def _rule(char: str = "-") -> str:
    return char * WIDTH


def render_top(
    status: dict, now: Optional[float] = None, window: float = 30.0
) -> str:
    """Render one dashboard frame from a status document."""
    now = time.time() if now is None else now
    snaps: list[dict] = status.get("snapshots") or []
    lines: list[str] = []

    source = status.get("source") or "?"
    pid = status.get("pid", "?")
    header = f"repro top — source {source}  pid {pid}  snapshots {len(snaps)}"
    if snaps:
        age = max(0.0, now - snaps[-1].get("ts", now))
        header += f"  age {age:.1f}s"
    lines.append(header[:WIDTH])
    lines.append(_rule("="))
    if not snaps:
        lines.append("(no snapshots captured yet)")
        return "\n".join(lines)

    latest = snaps[-1]
    rates = counter_rates([s for s in snaps if s["mono"] >= snaps[-1]["mono"] - window])
    counters = _counters(latest)

    lines += _render_cycles(latest, counters)
    lines += _render_optimizer(counters, rates)
    lines += _render_workers(counters)
    extras = latest.get("extras") or {}
    lines += _render_journal(extras.get("journal_tail") or [])
    lines += _render_profiler(extras.get("profiler"))
    return "\n".join(lines)


def _render_cycles(latest: dict, counters: dict) -> list[str]:
    lines = ["tuning cycles"]
    runs = _total(counters.get("advisor.runs"))
    cycles = _total(counters.get("fleet.tuning_cycles"))
    recommended = _total(counters.get("advisor.indexes.recommended"))
    lines.append(
        f"  advisor runs {_fmt_count(runs):>6}   tuning cycles "
        f"{_fmt_count(cycles):>6}   indexes recommended {_fmt_count(recommended):>6}"
    )
    phase_hist = _histograms(latest).get("advisor.phase.seconds") or {}
    active = _gauges(latest).get("advisor.phase.active") or {}
    if phase_hist:
        lines.append(f"  {'phase':<24} {'runs':>6} {'total ms':>10} {'max ms':>10} {'state':>8}")
        for label, summary in sorted(phase_hist.items()):
            phase = _label_value(label, "phase") or label
            state = "RUNNING" if active.get(label) else "idle"
            lines.append(
                f"  {phase:<24} {summary.get('count', 0):>6} "
                f"{summary.get('sum', 0.0) * 1e3:>10.2f} "
                f"{summary.get('max', 0.0) * 1e3:>10.2f} {state:>8}"
            )
    return lines


def _render_optimizer(counters: dict, rates: dict) -> list[str]:
    lines = ["", "optimizer / what-if"]
    calls = _total(counters.get("optimizer.calls"))
    evals = _total(counters.get("whatif.evaluations"))
    hits = _total(counters.get("whatif.cache_hits"))
    canonical = _total(counters.get("whatif.canonical_hits"))
    analyze_hits = _total(counters.get("analyze.cache_hits"))
    call_rate = _total(rates.get("optimizer.calls")) if "optimizer.calls" in rates else None
    eval_rate = _total(rates.get("whatif.evaluations")) if "whatif.evaluations" in rates else None
    lines.append(
        f"  optimizer calls  {_fmt_count(calls):>10}   ({_fmt_rate(call_rate)})"
    )
    lines.append(
        f"  what-if requests {_fmt_count(evals):>10}   ({_fmt_rate(eval_rate)})"
    )
    hit_pct = 100.0 * hits / evals if evals else 0.0
    lines.append(
        f"  cache hit rate   {hit_pct:>9.1f}%   "
        f"(canonical {_fmt_count(canonical)}, analyze {_fmt_count(analyze_hits)})"
    )
    return lines


def _render_workers(counters: dict) -> list[str]:
    chunks = counters.get("parallel.worker.chunks") or {}
    if not chunks:
        return []
    spans = counters.get("parallel.worker.spans") or {}
    seconds = counters.get("parallel.worker.seconds") or {}
    nbytes = counters.get("parallel.worker.bytes") or {}
    total_seconds = _total(seconds)
    lines = ["", "parallel workers"]
    lines.append(f"  {'pid':<10} {'chunks':>6} {'spans':>6} {'wall s':>8} {'share':>7} {'merge-back':>11}")
    for label in sorted(chunks):
        pid = _label_value(label, "pid") or label
        secs = seconds.get(label, 0.0)
        share = 100.0 * secs / total_seconds if total_seconds else 0.0
        lines.append(
            f"  {pid:<10} {chunks.get(label, 0):>6g} {spans.get(label, 0):>6g} "
            f"{secs:>8.3f} {share:>6.1f}% {nbytes.get(label, 0.0) / 1024:>9.1f} KiB"
        )
    return lines


def _render_journal(tail: list) -> list[str]:
    if not tail:
        return []
    lines = ["", "journal tail"]
    for record in tail[-8:]:
        if not isinstance(record, dict):
            continue
        seq = record.get("seq", "?")
        etype = record.get("type", "?")
        detail = _journal_detail(record)
        lines.append(f"  [{seq:>5}] {etype:<20} {detail}"[:WIDTH])
    return lines


def _journal_detail(record: dict) -> str:
    etype = record.get("type")
    if etype == "advisor_decision":
        return (
            f"{record.get('action', '')} {record.get('reason', '')} "
            f"{record.get('index', '')}"
        )
    if etype == "cycle_end":
        return (
            f"{record.get('database', '')} created={len(record.get('created') or [])} "
            f"improvement={record.get('improvement', 0.0):.3f}"
        )
    if etype == "cycle_start":
        return f"{record.get('database', '')} queries={record.get('queries', 0)}"
    if etype == "ddl_applied":
        return f"{record.get('action', '')} {record.get('index', '')}"
    for key in ("index", "normalized_sql", "sql", "database", "oracle"):
        if record.get(key):
            return str(record[key])
    return ""


def _render_profiler(profiler: Optional[dict]) -> list[str]:
    if not profiler or not profiler.get("samples"):
        return []
    lines = [
        "",
        (
            f"top profiled frames ({profiler.get('hz', 0):g} Hz, "
            f"{profiler.get('samples', 0)} samples, overhead "
            f"{profiler.get('overhead_pct', 0.0):.1f}%)"
        ),
    ]
    for frame in (profiler.get("top_frames") or [])[:10]:
        lines.append(
            f"  {frame.get('pct', 0.0):>5.1f}%  {frame.get('frame', '?')}"[:WIDTH]
        )
    regions = profiler.get("regions") or {}
    if regions:
        hot = sorted(regions.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        lines.append(
            "  regions: "
            + ", ".join(f"{name} ({count})" for name, count in hot)
        )
    return lines


# -- CLI ----------------------------------------------------------------------


def make_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli top",
        description="Live dashboard over a run's published status "
        "snapshots (see docs/OBSERVABILITY.md).",
    )
    parser.add_argument("--status", default=None, metavar="FILE",
                        help="status file to watch (default: "
                        "$REPRO_STATUS_FILE or the temp-dir default)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit (CI mode)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--window", type=float, default=30.0,
                        help="rate window in seconds (default 30)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve the status JSON over HTTP instead "
                        "of rendering")
    return parser


def run_top(argv: Sequence[str], out: Any = None) -> int:
    """Entry point for ``repro.cli top``."""
    args = make_top_parser().parse_args(list(argv))
    out = sys.stdout if out is None else out
    path = args.status or default_status_path()

    if args.serve is not None:
        server = serve_status(path, port=args.serve)
        host, port = server.server_address[:2]
        print(f"serving {path} on http://{host}:{port}/ (Ctrl-C to stop)",
              file=out)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    if args.once:
        try:
            status = load_status(path)
        except (OSError, ValueError) as exc:
            print(f"repro top: no status at {path} ({exc}); run an "
                  "instrumented command (e.g. `repro advise`) first or "
                  "pass --status FILE", file=sys.stderr)
            return 2
        print(render_top(status, window=args.window), file=out)
        return 0

    try:
        while True:
            try:
                frame = render_top(load_status(path), window=args.window)
            except (OSError, ValueError) as exc:
                frame = f"repro top: waiting for status at {path} ({exc})"
            out.write("\x1b[2J\x1b[H" + frame + "\n")
            out.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
