"""Append-only decision journal (the auditable half of ``repro.obs``).

While the tracer answers *where did the time go* and the metrics registry
*how often and how much*, the journal answers **why does the database look
the way it does**: every consequential decision -- a candidate index
accepted or evicted, a tuning cycle, applied DDL, a flagged regression and
its rollback, a per-window workload digest -- becomes one typed, immutable
event with a monotonic sequence number.  Events are serialized as JSON
Lines so a journal file is greppable, streamable, and diffable, and each
record carries the schema version plus the id of the tracer span that was
open when it was emitted, linking the *decision* record to the *timing*
record of the same run.

Usage mirrors the tracer/registry singletons::

    from repro.obs import emit, AdvisorDecision, get_journal

    get_journal().bind("decisions.jsonl")      # optional durable sink
    emit(AdvisorDecision(action="accepted", reason="knapsack_selected",
                         index="idx_orders_created", table="orders"))

``read_events(path)`` loads a journal back (validating the schema
version), and :mod:`repro.obs.fleet_report` renders audit reports from
the loaded records.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, ClassVar, Optional

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "AdvisorDecision",
    "CycleStart",
    "CycleEnd",
    "DdlApplied",
    "WorkloadDigest",
    "RegressionFlagged",
    "IndexRollback",
    "PlanEstimate",
    "OracleViolation",
    "EventJournal",
    "get_journal",
    "set_journal",
    "emit",
    "read_events",
    "decode_event",
]

#: Version stamped into every record.  Bump on any field rename/removal
#: or semantic change; readers reject records from a *newer* version than
#: they understand (see ``read_events``), so schema breakage fails fast
#: instead of silently mis-rendering.
SCHEMA_VERSION = 1

#: Envelope keys the journal adds around an event's own fields.
_ENVELOPE_KEYS = ("seq", "ts", "v", "type", "span_id", "span")


# ---------------------------------------------------------------------------
# Typed events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdvisorDecision:
    """One accept/reject transition of a candidate index in Algorithm 1.

    A candidate may appear several times along the pipeline (selected by
    the knapsack, later rejected by clone validation); the sequence of its
    events *is* its audit trail.
    """

    TYPE: ClassVar[str] = "advisor_decision"

    action: str                 # 'accepted' | 'rejected'
    reason: str                 # 'knapsack_selected' | 'knapsack_evicted'
                                # | 'covering_promoted' | 'subsumed_by_covering'
                                # | 'validation_regression'
                                # | 'below_min_improvement'
    index: str
    table: str = ""
    columns: tuple[str, ...] = ()
    phase: str = ""             # 'narrow' | 'covering' (when known)
    benefit: float = 0.0
    maintenance: float = 0.0
    size_bytes: int = 0
    database: str = ""


@dataclass(frozen=True)
class CycleStart:
    """A continuous-tuning cycle begins (one tuning interval)."""

    TYPE: ClassVar[str] = "cycle_start"

    database: str
    queries: int = 0            # representative workload size
    budget_bytes: int = 0


@dataclass(frozen=True)
class CycleEnd:
    """A continuous-tuning cycle finished, with its outcome accounting."""

    TYPE: ClassVar[str] = "cycle_end"

    database: str
    created: tuple[str, ...] = ()
    dropped: tuple[str, ...] = ()
    cost_before: float = 0.0
    cost_after: float = 0.0
    improvement: float = 0.0
    optimizer_calls: int = 0


@dataclass(frozen=True)
class DdlApplied:
    """One index DDL statement actually applied to a database."""

    TYPE: ClassVar[str] = "ddl_applied"

    action: str                 # 'create' | 'drop'
    index: str
    table: str = ""
    columns: tuple[str, ...] = ()
    database: str = ""
    statement: str = ""


@dataclass(frozen=True)
class WorkloadDigest:
    """Per-window snapshot of a :class:`~repro.workload.WorkloadMonitor`.

    ``top`` carries the highest-expected-benefit queries of the window
    (Eq. 5 ordering), each as ``{sql, executions, cpu_avg, benefit}``.
    """

    TYPE: ClassVar[str] = "workload_digest"

    database: str
    window: int = 0
    queries: int = 0
    executions: int = 0
    total_cpu: float = 0.0
    rows_read: int = 0
    rows_sent: int = 0
    top: tuple[dict, ...] = ()


@dataclass(frozen=True)
class RegressionFlagged:
    """The continuous regression detector flagged one query (Sec. VII-C)."""

    TYPE: ClassVar[str] = "regression_flagged"

    normalized_sql: str
    before_cpu_avg: float = 0.0
    after_cpu_avg: float = 0.0
    ratio: float = 1.0
    suspects: tuple[str, ...] = ()
    database: str = ""


@dataclass(frozen=True)
class IndexRollback:
    """An automation-created index was reverted after a regression."""

    TYPE: ClassVar[str] = "index_rollback"

    index: str
    table: str = ""
    database: str = ""
    reason: str = "regression"


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated-vs-actual row counts for one plan node (EXPLAIN ANALYZE)."""

    TYPE: ClassVar[str] = "plan_estimate"

    sql: str
    node: str
    est_rows: float = 0.0
    actual_rows: int = 0
    q_error: float = 1.0


@dataclass(frozen=True)
class OracleViolation:
    """A ``repro.qa`` fuzz oracle caught an invariant violation.

    Emitted by the fuzz runner for every violation so journals from
    nightly fuzz runs are auditable with the same tooling as advisor
    decisions (new event type, schema version unchanged per the
    append-only versioning rules).
    """

    TYPE: ClassVar[str] = "oracle_violation"

    oracle: str                 # 'differential' | 'selectivity' | ...
    seed: int = 0               # the generator seed of the failing case
    statement: str = ""
    detail: str = ""
    shrunk: bool = False        # a minimized repro was produced
    case_file: str = ""         # path of the serialized repro, if written


EVENT_TYPES: dict[str, type] = {
    cls.TYPE: cls
    for cls in (
        AdvisorDecision,
        CycleStart,
        CycleEnd,
        DdlApplied,
        WorkloadDigest,
        RegressionFlagged,
        IndexRollback,
        PlanEstimate,
        OracleViolation,
    )
}


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------

class EventJournal:
    """Thread-safe append-only event log with optional JSONL sink.

    Args:
        path: when given, every record is appended (and flushed) to this
            file as one JSON line; the in-memory buffer is kept either way
            so tests and the CLI can inspect a run without a file.
        enabled: when False :meth:`emit` is a no-op returning ``None``.
        max_events: in-memory retention cap.  File emission continues past
            the cap (the file is the durable record); overflowed in-memory
            records are counted in ``dropped``.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        enabled: bool = True,
        max_events: int = 100_000,
    ):
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        self._lock = threading.Lock()
        self._seq = 0
        self._records: list[dict] = []
        self._fh = None
        if path is not None:
            self.bind(path)

    # -- sink management -----------------------------------------------------

    def bind(self, path: str) -> "EventJournal":
        """Attach (or switch) the durable JSONL sink."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
            self._fh = open(path, "a")
        return self

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- recording -----------------------------------------------------------

    def emit(self, event: Any) -> Optional[dict]:
        """Append one typed event; returns the serialized record."""
        if not self.enabled:
            return None
        event_type = getattr(event, "TYPE", None)
        if event_type not in EVENT_TYPES:
            raise TypeError(f"not a journal event: {event!r}")
        payload = _jsonable_payload(asdict(event))
        # Span linkage: whichever tracer span is open where the decision
        # was made (advisor phase, tuning cycle, ...).
        from .tracer import get_tracer

        span = get_tracer().current()
        with self._lock:
            record = {
                "seq": self._seq,
                "ts": time.time(),
                "v": SCHEMA_VERSION,
                "type": event_type,
                "span_id": span.span_id if span is not None else None,
                "span": span.name if span is not None else None,
            }
            record.update(payload)
            self._seq += 1
            if len(self._records) < self.max_events:
                self._records.append(record)
            else:
                self.dropped += 1
            if self._fh is not None:
                self._fh.write(json.dumps(record) + "\n")
                self._fh.flush()
        return record

    # -- inspection ----------------------------------------------------------

    def records(self) -> list[dict]:
        """All in-memory records, in sequence order."""
        with self._lock:
            return list(self._records)

    def events_of(self, event_type: str | type) -> list[dict]:
        """In-memory records of one type (name or event class)."""
        name = event_type if isinstance(event_type, str) else event_type.TYPE
        return [r for r in self.records() if r["type"] == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def reset(self) -> None:
        """Clear the in-memory buffer and restart sequence numbering.

        The bound file (if any) is left untouched -- it is the durable
        record; only the per-run view resets.
        """
        with self._lock:
            self._records.clear()
            self._seq = 0
            self.dropped = 0


def _jsonable_payload(payload: dict) -> dict:
    out = {}
    for key, value in payload.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


# ---------------------------------------------------------------------------
# Reading journals back
# ---------------------------------------------------------------------------

def read_events(source: str) -> list[dict]:
    """Load a JSONL journal file, validating the schema version.

    Records stamped with a *newer* schema version than this reader
    understands raise ``ValueError`` (fail fast on version skew); records
    from older versions load as-is -- version-1 fields are append-only, so
    old records stay renderable.
    """
    records: list[dict] = []
    with open(source) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{source}:{lineno}: not a JSON record: {exc}"
                ) from exc
            version = record.get("v")
            if not isinstance(version, int) or version < 1:
                raise ValueError(
                    f"{source}:{lineno}: missing/invalid schema version: "
                    f"{version!r}"
                )
            if version > SCHEMA_VERSION:
                raise ValueError(
                    f"{source}:{lineno}: journal schema v{version} is newer "
                    f"than this reader (v{SCHEMA_VERSION})"
                )
            records.append(record)
    records.sort(key=lambda r: r.get("seq", 0))
    return records


def decode_event(record: dict) -> Optional[Any]:
    """Rebuild the typed event dataclass from a serialized record.

    Unknown event types (or records missing required fields) return
    ``None`` -- readers must tolerate event types added after they were
    written, per the versioning rules in ``docs/OBSERVABILITY.md``.
    """
    cls = EVENT_TYPES.get(record.get("type", ""))
    if cls is None:
        return None
    kwargs = {}
    for f in fields(cls):
        if f.name in record:
            value = record[f.name]
            if isinstance(value, list):
                value = tuple(
                    dict(v) if isinstance(v, dict) else v for v in value
                )
            kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except TypeError:
        return None


# ---------------------------------------------------------------------------
# Process-wide journal
# ---------------------------------------------------------------------------

_journal = EventJournal()


def get_journal() -> EventJournal:
    """The process-wide journal library code emits into."""
    return _journal


def set_journal(journal: EventJournal) -> EventJournal:
    """Swap the process-wide journal (tests, per-run isolation)."""
    global _journal
    previous = _journal
    _journal = journal
    return previous


def emit(event: Any) -> Optional[dict]:
    """Emit one event into the process-wide journal."""
    return get_journal().emit(event)
