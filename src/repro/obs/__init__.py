"""Telemetry for the AIM reproduction (see ``docs/OBSERVABILITY.md``).

Three complementary instruments share this package:

* :mod:`~repro.obs.tracer` -- hierarchical spans answering *where did the
  time go* (advisor phases, baseline runs, fleet sweeps), exportable as
  nested JSON or Chrome ``trace_event`` files;
* :mod:`~repro.obs.metrics` -- a process-wide registry of labeled
  counters/gauges/histograms answering *how often and how much*
  (optimizer invocations per phase, what-if cache hits, page I/O);
* :mod:`~repro.obs.events` -- an append-only, schema-versioned decision
  journal answering *why does the database look the way it does*
  (advisor accept/reject decisions, tuning cycles, applied DDL,
  regression flags/rollbacks, workload digests), serialized as JSONL and
  rendered by ``repro.cli fleet-report``.

All three have a process-wide default instance so instrumented library
code stays dependency-free: ``with trace("advisor.ranking"): ...``,
``counter("optimizer.calls").inc()`` and ``emit(AdvisorDecision(...))``
record into whatever tracer/registry/journal is current.
:func:`telemetry_snapshot` bundles tracer + registry into the JSON block
benches and the CLI attach to their results; :func:`reset_telemetry`
clears all three between runs (a journal's bound file is never touched).
"""

from __future__ import annotations

from .events import (
    AdvisorDecision,
    CycleEnd,
    CycleStart,
    DdlApplied,
    EventJournal,
    IndexRollback,
    OracleViolation,
    PlanEstimate,
    RegressionFlagged,
    WorkloadDigest,
    decode_event,
    emit,
    get_journal,
    read_events,
    set_journal,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from .profiler import (
    SamplingProfiler,
    disable_profiler,
    enable_profiler,
    get_profiler,
    profile,
    profiler_from_env,
    set_profiler,
)
from .snapshots import (
    MetricsSnapshotBus,
    capture_now,
    counter_deltas,
    counter_rates,
    default_status_path,
    get_bus,
    load_status,
    serve_status,
    set_bus,
)
from .tracer import (
    Span,
    Tracer,
    get_tracer,
    load_chrome_trace,
    set_tracer,
    trace,
    traced,
)

__all__ = [
    "AdvisorDecision",
    "Counter",
    "CycleEnd",
    "CycleStart",
    "DdlApplied",
    "EventJournal",
    "Gauge",
    "Histogram",
    "IndexRollback",
    "MetricsRegistry",
    "OracleViolation",
    "PlanEstimate",
    "RegressionFlagged",
    "MetricsSnapshotBus",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "WorkloadDigest",
    "capture_now",
    "counter_deltas",
    "counter_rates",
    "default_status_path",
    "disable_profiler",
    "enable_profiler",
    "get_bus",
    "get_profiler",
    "load_status",
    "profile",
    "profiler_from_env",
    "serve_status",
    "set_bus",
    "set_profiler",
    "counter",
    "decode_event",
    "emit",
    "gauge",
    "histogram",
    "get_journal",
    "get_registry",
    "set_journal",
    "set_registry",
    "get_tracer",
    "set_tracer",
    "read_events",
    "trace",
    "traced",
    "load_chrome_trace",
    "telemetry_snapshot",
    "reset_telemetry",
    "record_execution_metrics",
]


def telemetry_snapshot() -> dict:
    """The ``telemetry`` block attached to bench results and CLI output:
    the registry snapshot plus per-span-name timing aggregates."""
    snapshot = {
        "metrics": get_registry().snapshot(),
        "spans": get_tracer().summary(),
    }
    profiler = get_profiler()
    if profiler is not None and profiler.samples:
        snapshot["profiler"] = profiler.to_dict()
    return snapshot


def reset_telemetry() -> None:
    """Zero the process-wide registry, tracer and journal buffer (between
    runs/tests).  A journal's bound JSONL file is left untouched -- only
    the in-memory view resets."""
    get_registry().reset()
    get_tracer().reset()
    get_journal().reset()
    profiler = get_profiler()
    if profiler is not None:
        profiler.reset()


def record_execution_metrics(metrics, kind: str = "select") -> None:
    """Bridge one :class:`~repro.engine.ExecutionMetrics` into the registry.

    Every executor counter becomes an ``engine.<counter>`` counter labeled
    by statement kind, so page I/O and row counts aggregate across
    statements the same way a server's global status variables would.
    """
    registry = get_registry()
    for name, value in metrics.as_dict().items():
        if value:
            registry.counter(f"engine.{name}").inc(value, kind=kind)
    registry.counter("engine.statements").inc(1, kind=kind)
