"""Time-windowed metrics snapshots: the feed behind ``repro top``.

:class:`MetricsSnapshotBus` keeps a ring buffer of periodic
registry snapshots.  Each snapshot records the wall/monotonic capture
time plus the full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`,
the tail of the decision journal, and the profiler summary when one is
active -- everything a live dashboard needs.  Deltas and rates over the
buffer turn cumulative counters into "optimizer calls per second" style
readings without any server-side state.

The bus has three consumers:

* an instrumented process starts it with ``interval=...`` and a status
  *path*: every capture is atomically written as one JSON document, which
  is how a *separate* ``repro top`` process observes the run (same
  default path on both sides, override with ``REPRO_STATUS_FILE``);
* ``repro top`` loads that document (:func:`load_status`) and renders it;
* ``repro top --serve PORT`` exposes it over a stdlib ``http.server``
  JSON endpoint (:func:`serve_status`) for scraping.

Like the tracer/registry/journal there is a process-wide instance
(:func:`get_bus`); :func:`capture_now` is the cheap hook instrumented
code calls at natural progress points (advisor phase ends, tuning-cycle
ends) so even short runs leave a usable snapshot series.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from .metrics import get_registry

__all__ = [
    "SNAPSHOT_FORMAT",
    "MetricsSnapshotBus",
    "counter_deltas",
    "counter_rates",
    "default_status_path",
    "load_status",
    "get_bus",
    "set_bus",
    "capture_now",
    "serve_status",
]

SNAPSHOT_FORMAT = "repro.obs.snapshots"
SNAPSHOT_VERSION = 1

#: Default ring capacity: at the default 1 s interval, four minutes of
#: history -- enough for rate windows while keeping status files small.
DEFAULT_CAPACITY = 240

#: Journal records included per snapshot (the "journal tail").
JOURNAL_TAIL = 8


def default_status_path() -> str:
    """Where instrumented runs publish status and ``repro top`` reads it.

    ``REPRO_STATUS_FILE`` overrides; the default lives in the system temp
    directory so runs and dashboards started from different working
    directories still find each other.
    """
    return os.environ.get("REPRO_STATUS_FILE") or os.path.join(
        tempfile.gettempdir(), "repro-status.json"
    )


class MetricsSnapshotBus:
    """Bounded ring of timestamped registry snapshots with delta/rate math.

    Args:
        capacity: snapshots retained (oldest evicted first).
        interval: seconds between captures when :meth:`start` runs the
            background sampler thread.
        path: when set, every capture atomically rewrites this JSON file.
        source: free-form label for the producing run (shown by ``top``).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        interval: float = 1.0,
        path: Optional[str] = None,
        source: str = "",
    ):
        self.capacity = max(2, int(capacity))
        self.interval = float(interval)
        self.path = path
        self.source = source
        self.started_wall = time.time()
        self._lock = threading.Lock()
        self._snaps: deque[dict] = deque(maxlen=self.capacity)
        self._extras_fns: list[Callable[[], dict]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def add_extras(self, fn: Callable[[], dict]) -> None:
        """Attach a provider whose dict is merged into every snapshot's
        ``extras`` (failures are swallowed -- telemetry must not break
        the run it observes)."""
        self._extras_fns.append(fn)

    # -- capture --------------------------------------------------------------

    def capture(
        self, now: Optional[float] = None, mono: Optional[float] = None
    ) -> dict:
        """Record one snapshot (timestamps injectable for tests)."""
        snap: dict[str, Any] = {
            "ts": time.time() if now is None else now,
            "mono": time.perf_counter() if mono is None else mono,
            "pid": os.getpid(),
            "metrics": get_registry().snapshot(),
        }
        extras = self._default_extras()
        for fn in self._extras_fns:
            try:
                extras.update(fn() or {})
            except Exception:
                pass
        if extras:
            snap["extras"] = extras
        with self._lock:
            self._snaps.append(snap)
        return snap

    def _default_extras(self) -> dict:
        extras: dict[str, Any] = {}
        from .events import get_journal

        records = get_journal().records()
        if records:
            extras["journal_tail"] = records[-JOURNAL_TAIL:]
        from .profiler import get_profiler

        profiler = get_profiler()
        if profiler is not None and profiler.samples:
            extras["profiler"] = profiler.to_dict()
        return extras

    # -- inspection -----------------------------------------------------------

    def snapshots(self) -> list[dict]:
        with self._lock:
            return list(self._snaps)

    def latest(self) -> Optional[dict]:
        with self._lock:
            return self._snaps[-1] if self._snaps else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._snaps)

    def window(self, seconds: Optional[float] = None) -> list[dict]:
        """Snapshots within the trailing *seconds* (all when None)."""
        snaps = self.snapshots()
        if seconds is None or not snaps:
            return snaps
        horizon = snaps[-1]["mono"] - seconds
        return [s for s in snaps if s["mono"] >= horizon]

    def deltas(self, seconds: Optional[float] = None) -> dict:
        """Counter deltas between the edges of the trailing window."""
        return counter_deltas(self.window(seconds))

    def rates(self, seconds: Optional[float] = None) -> dict:
        """Counter increments per second over the trailing window."""
        return counter_rates(self.window(seconds))

    # -- background sampling / persistence ------------------------------------

    def start(self) -> None:
        """Run capture (+ write, when a path is set) every ``interval``."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-snapshot-bus", daemon=True
        )
        self._thread.start()

    def stop(self, final_capture: bool = True) -> None:
        """Stop the sampler; by default take one last capture + write so
        the status file reflects the finished run."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join()
            self._thread = None
        if final_capture:
            self.capture()
            if self.path:
                self.write()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.capture()
                if self.path:
                    self.write()
            except Exception:
                pass
            self._stop.wait(self.interval)

    def to_dict(self) -> dict:
        return {
            "format": SNAPSHOT_FORMAT,
            "v": SNAPSHOT_VERSION,
            "source": self.source,
            "pid": os.getpid(),
            "started": self.started_wall,
            "snapshots": self.snapshots(),
        }

    def write(self, path: Optional[str] = None) -> str:
        """Atomically publish the ring as one JSON document."""
        target = path or self.path or default_status_path()
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, default=str)
        os.replace(tmp, target)
        return target


# -- delta/rate math over snapshot lists --------------------------------------


def counter_deltas(snapshots: list[dict]) -> dict:
    """Per-counter, per-label increments between the first and last
    snapshot of *snapshots* (``{name: {label: delta}}``).

    A counter that shrank (producing process restarted) is treated the
    Prometheus way: the post-restart value *is* the delta.
    """
    if len(snapshots) < 2:
        return {}
    first = (snapshots[0].get("metrics") or {}).get("counters") or {}
    last = (snapshots[-1].get("metrics") or {}).get("counters") or {}
    out: dict[str, dict[str, float]] = {}
    for name, by_label in last.items():
        base = first.get(name) or {}
        for label, value in by_label.items():
            delta = value - base.get(label, 0.0)
            if delta < 0:
                delta = value
            if delta:
                out.setdefault(name, {})[label] = delta
    return out


def counter_rates(snapshots: list[dict]) -> dict:
    """Counter increments per second over *snapshots* (same shape as
    :func:`counter_deltas`)."""
    if len(snapshots) < 2:
        return {}
    elapsed = snapshots[-1]["mono"] - snapshots[0]["mono"]
    if elapsed <= 0:
        return {}
    return {
        name: {label: delta / elapsed for label, delta in by_label.items()}
        for name, by_label in counter_deltas(snapshots).items()
    }


def load_status(path: str) -> dict:
    """Load a published status document, validating its format."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"{path}: not a {SNAPSHOT_FORMAT} document")
    version = payload.get("v")
    if not isinstance(version, int) or version > SNAPSHOT_VERSION:
        raise ValueError(
            f"{path}: status schema v{version!r} is newer than this "
            f"reader (v{SNAPSHOT_VERSION})"
        )
    return payload


# -- process-wide bus ---------------------------------------------------------

_bus: Optional[MetricsSnapshotBus] = None


def get_bus() -> Optional[MetricsSnapshotBus]:
    """The process-wide snapshot bus, or None when no run publishes one."""
    return _bus


def set_bus(bus: Optional[MetricsSnapshotBus]) -> Optional[MetricsSnapshotBus]:
    """Install (or clear, with None) the process-wide bus."""
    global _bus
    previous = _bus
    _bus = bus
    return previous


def capture_now() -> None:
    """Snapshot at a natural progress point (advisor phase end, tuning
    cycle end).  No-op unless a bus is installed, so instrumented library
    code can call it unconditionally."""
    bus = get_bus()
    if bus is None:
        return
    try:
        bus.capture()
        if bus.path:
            bus.write()
    except Exception:
        pass


# -- HTTP endpoint ------------------------------------------------------------


def serve_status(
    source: "MetricsSnapshotBus | str",
    port: int = 0,
    host: str = "127.0.0.1",
) -> ThreadingHTTPServer:
    """Serve status JSON over HTTP for scraping.

    *source* is either a live bus (served from memory) or a status file
    path (re-read per request, so a dashboard process can serve a run
    happening elsewhere).  Returns the bound server -- call
    ``serve_forever()`` (or run it in a thread) and ``shutdown()`` when
    done; ``port=0`` binds an ephemeral port (``server_address[1]``).
    """
    if isinstance(source, MetricsSnapshotBus):
        provider = source.to_dict
    else:
        provider = lambda: load_status(source)   # noqa: E731

    class _StatusHandler(BaseHTTPRequestHandler):
        def do_GET(self):   # noqa: N802 (http.server API)
            try:
                body = json.dumps(provider(), default=str).encode()
                status = 200
            except Exception as exc:
                body = json.dumps({"error": str(exc)}).encode()
                status = 503
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):   # silence per-request stderr noise
            pass

    return ThreadingHTTPServer((host, port), _StatusHandler)
