"""Process-wide metrics registry: labeled counters, gauges, histograms.

The registry is the quantitative half of :mod:`repro.obs`: while the
tracer answers *where did the time go*, the registry answers *how often
and how much* -- optimizer invocations per advisor phase, what-if cache
hit rates, page I/O bridged from the executor.

Metrics are identified by name and free-form labels.  Hot paths bind a
label set once (``_CALLS = counter("optimizer.calls").labels()``) and pay
one lock + one float add per event, which keeps instrumentation overhead
well under the 5% budget of the advisor benches.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "counter",
    "gauge",
    "histogram",
]

LabelKey = tuple[tuple[str, str], ...]

#: Raw observations retained per histogram child for percentile math.
#: Below the cap every observation is kept and quantiles are exact; past
#: it the child switches to reservoir sampling (Algorithm R) with an RNG
#: seeded from the metric name + label key, so memory stays bounded,
#: count/sum/min/max remain exact, and a given observation sequence
#: always retains the same sample set (deterministic across runs and
#: processes).
HISTOGRAM_SAMPLE_CAP = 4096


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class _Metric:
    """Common name/label plumbing for the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: dict[LabelKey, Any] = {}

    def labels(self, **labels: Any):
        """Get-or-create the child bound to one label set."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    def _child_by_key(self, key: LabelKey):
        """Get-or-create a child from an already-built label key (merge path)."""
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
                    self._children[key] = child
        return child

    def _make_child(self, key: LabelKey):   # pragma: no cover - overridden
        raise NotImplementedError

    def _child_seed(self, key: LabelKey) -> int:
        """Deterministic per-child RNG seed (metric name + label key)."""
        return zlib.crc32(f"{self.name}|{_label_str(key)}".encode())

    def dump(self) -> list:
        """Raw per-child state as ``[[label pairs], state]`` rows
        (picklable/JSON-able; consumed by :meth:`MetricsRegistry.merge_state`)."""
        return [
            [[list(pair) for pair in key], child.dump()]
            for key, child in sorted(self.children().items())
        ]

    def children(self) -> dict[LabelKey, Any]:
        with self._lock:
            return dict(self._children)

    def reset(self) -> None:
        """Zero all children *in place* (bound children stay valid)."""
        for child in self.children().values():
            child.reset()


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def dump(self) -> float:
        return self.value


class Counter(_Metric):
    """Monotonically increasing count (events, calls, rows)."""

    kind = "counter"

    def _make_child(self, key: LabelKey) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        return self.labels(**labels).value

    def snapshot(self) -> dict[str, float]:
        # Zero children (bound but never hit, or freshly reset) are noise.
        return {
            _label_str(key): child.value
            for key, child in sorted(self.children().items())
            if child.value
        }


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def dump(self) -> float:
        return self.value


class Gauge(_Metric):
    """Point-in-time value (queue depth, configured budget, cache size)."""

    kind = "gauge"

    def _make_child(self, key: LabelKey) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        return self.labels(**labels).value

    def snapshot(self) -> dict[str, float]:
        return {
            _label_str(key): child.value
            for key, child in sorted(self.children().items())
        }


class _HistogramChild:
    __slots__ = ("_lock", "count", "sum", "min", "max", "_samples", "_rng", "_seed")

    def __init__(self, seed: int = 0):
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list[float] = []
        self._seed = seed
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._reserve(value)

    def _reserve(self, value: float) -> None:
        """Retain *value* with probability cap/count (Algorithm R).

        Below ``HISTOGRAM_SAMPLE_CAP`` every observation is kept (exact
        quantiles); past it each new observation replaces a random
        retained one with probability cap/count, giving a uniform sample
        of the whole stream under bounded memory.  The RNG is seeded per
        child, so retention is deterministic for a given observation
        sequence.
        """
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)
            return
        j = self._rng.randrange(self.count)
        if j < HISTOGRAM_SAMPLE_CAP:
            self._samples[j] = value

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over the retained samples."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        rank = (p / 100.0) * (len(samples) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def dump(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "samples": list(self._samples),
            }

    def merge(self, state: dict) -> None:
        """Fold another child's dumped state into this one (cross-process
        merge-back): counts and sums add, min/max combine, and the shipped
        samples flow through this child's reservoir."""
        with self._lock:
            other_min = state.get("min")
            other_max = state.get("max")
            if other_min is not None:
                self.min = other_min if self.min is None else min(self.min, other_min)
            if other_max is not None:
                self.max = other_max if self.max is None else max(self.max, other_max)
            for value in state.get("samples", ()):
                self.count += 1
                self._reserve(float(value))
            # Observations the shipper's reservoir had already dropped
            # still count toward count/sum (they can no longer be sampled).
            self.count += int(state.get("count", 0)) - len(state.get("samples", ()))
            self.sum += float(state.get("sum", 0.0))

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None
            self._samples = []
            self._rng = random.Random(self._seed)


class Histogram(_Metric):
    """Distribution with p50/p95/p99 summaries (timings, plan costs)."""

    kind = "histogram"

    def _make_child(self, key: LabelKey) -> _HistogramChild:
        return _HistogramChild(self._child_seed(key))

    def observe(self, value: float, **labels: Any) -> None:
        self.labels(**labels).observe(value)

    def summary(self, **labels: Any) -> dict[str, float]:
        return self.labels(**labels).summary()

    def snapshot(self) -> dict[str, dict]:
        return {
            _label_str(key): child.summary()
            for key, child in sorted(self.children().items())
            if child.count
        }


class MetricsRegistry:
    """Get-or-create home for all metrics of a process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def metrics(self) -> dict[str, _Metric]:
        with self._lock:
            return dict(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready dump of every metric, grouped by kind."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(self.metrics().items()):
            data = metric.snapshot()
            if not data:
                continue
            out[metric.kind + "s"][name] = data
        return out

    def reset(self) -> None:
        """Zero every metric in place (module-bound children stay valid)."""
        for metric in self.metrics().values():
            metric.reset()

    # -- cross-process propagation -------------------------------------------

    def dump_state(self) -> dict:
        """Raw, lossless registry state for shipment to another process.

        Unlike :meth:`snapshot` (human/JSON summaries), the dump keeps
        structured label keys and raw histogram samples so a receiving
        registry can merge it additively with :meth:`merge_state`.
        Workers dump-and-reset per work chunk; the parent merges each
        delta, so fleet-wide metrics survive process boundaries.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(self.metrics().items()):
            data = metric.dump()
            if data:
                out[metric.kind + "s"][name] = data
        return out

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` payload from another process in:
        counters add, gauges take the shipped (latest) value, histogram
        samples flow through the local reservoirs."""
        for name, entries in (state.get("counters") or {}).items():
            metric = self.counter(name)
            for key_pairs, value in entries:
                if value:
                    key = tuple(tuple(pair) for pair in key_pairs)
                    metric._child_by_key(key).inc(value)
        for name, entries in (state.get("gauges") or {}).items():
            metric = self.gauge(name)
            for key_pairs, value in entries:
                key = tuple(tuple(pair) for pair in key_pairs)
                metric._child_by_key(key).set(value)
        for name, entries in (state.get("histograms") or {}).items():
            metric = self.histogram(name)
            for key_pairs, child_state in entries:
                if child_state.get("count"):
                    key = tuple(tuple(pair) for pair in key_pairs)
                    metric._child_by_key(key).merge(child_state)


# -- process-wide registry ---------------------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry library code records into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry.

    Note: hot paths bind children from the registry current at *import*
    time; prefer :meth:`MetricsRegistry.reset` for per-run isolation.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous


def counter(name: str, help: str = "") -> Counter:
    return get_registry().counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return get_registry().gauge(name, help)


def histogram(name: str, help: str = "") -> Histogram:
    return get_registry().histogram(name, help)
