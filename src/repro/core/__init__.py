"""AIM core: partial orders, candidate generation, ranking, the advisor."""

from .advisor import AimAdvisor, AimConfig
from .candidates import (
    CandidateGenerator,
    CandidateSet,
    GeneratorConfig,
    joined_tables_powerset,
)
from .continuous import (
    ContinuousTuner,
    TuningCycleResult,
    find_prefix_redundant_indexes,
    find_unused_indexes,
)
from .covering import (
    CoveringPolicy,
    MODE_COVERING,
    MODE_NON_COVERING,
    try_covering_index,
)
from .explain import IndexRecommendation, Recommendation, format_bytes
from .ipp import (
    PredicateGroup,
    RangeColumnChooser,
    factorize_index_predicates,
    is_ipp,
    is_range,
)
from .knapsack import knapsack_exact, knapsack_select
from .merge import merge_by_table, merge_candidates_pairwise, merge_partial_orders
from .partial_order import PartialOrder
from .ranking import RankedCandidate, rank_candidates

__all__ = [
    "AimAdvisor",
    "AimConfig",
    "PartialOrder",
    "merge_candidates_pairwise",
    "merge_partial_orders",
    "merge_by_table",
    "CandidateGenerator",
    "CandidateSet",
    "GeneratorConfig",
    "joined_tables_powerset",
    "PredicateGroup",
    "RangeColumnChooser",
    "factorize_index_predicates",
    "is_ipp",
    "is_range",
    "CoveringPolicy",
    "MODE_COVERING",
    "MODE_NON_COVERING",
    "try_covering_index",
    "RankedCandidate",
    "rank_candidates",
    "knapsack_select",
    "knapsack_exact",
    "IndexRecommendation",
    "Recommendation",
    "format_bytes",
    "ContinuousTuner",
    "TuningCycleResult",
    "find_unused_indexes",
    "find_prefix_redundant_indexes",
]
