"""Partial orders of index columns (paper Sec. III-A3).

A candidate index is denoted by a *strict partial order* of columns on one
table, written ``<{c1, c2}, {c3}>``: an ordered sequence of disjoint
column sets (a weak order).  Columns inside one partition may appear in
any relative order; every column of an earlier partition precedes every
column of a later partition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence


@dataclass(frozen=True)
class PartialOrder:
    """A strict partial order (weak order) of index columns on one table."""

    table: str
    partitions: tuple[frozenset[str], ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for part in self.partitions:
            if not part:
                raise ValueError("empty partition in partial order")
            overlap = seen & part
            if overlap:
                raise ValueError(f"column(s) {overlap} appear in two partitions")
            seen |= part

    @classmethod
    def build(
        cls, table: str, partitions: Iterable[Iterable[str]]
    ) -> "PartialOrder":
        """Build from any iterable of column groups, dropping empty ones."""
        parts = tuple(
            frozenset(group) for group in partitions if group
        )
        return cls(table, parts)

    @classmethod
    def chain(cls, table: str, columns: Sequence[str]) -> "PartialOrder":
        """A totally ordered partial order: ``<{c1}, {c2}, ...>``."""
        return cls(table, tuple(frozenset([c]) for c in columns))

    @property
    def columns(self) -> frozenset[str]:
        out: set[str] = set()
        for part in self.partitions:
            out |= part
        return frozenset(out)

    @property
    def width(self) -> int:
        return sum(len(part) for part in self.partitions)

    @property
    def is_empty(self) -> bool:
        return not self.partitions

    def partition_index(self, column: str) -> int:
        """The 0-based partition a column lives in (KeyError if absent)."""
        for i, part in enumerate(self.partitions):
            if column in part:
                return i
        raise KeyError(column)

    def precedes(self, a: str, b: str) -> bool:
        """True if ``a ≺ b`` (a strictly precedes b) in this order."""
        return self.partition_index(a) < self.partition_index(b)

    def append(self, columns: Iterable[str]) -> "PartialOrder":
        """Ordinal-sum a trailing partition of *columns* (minus duplicates).

        Implements the ``candidate.append(...)`` operation of Algorithms
        4, 6 and 7; columns already present are skipped.
        """
        extra = frozenset(columns) - self.columns
        if not extra:
            return self
        return PartialOrder(self.table, self.partitions + (extra,))

    def append_chain(self, columns: Sequence[str]) -> "PartialOrder":
        """Append columns as ordered singleton partitions (ORDER BY)."""
        result = self
        for column in columns:
            if column in result.columns:
                continue
            result = PartialOrder(
                result.table, result.partitions + (frozenset([column]),)
            )
        return result

    def satisfied_by(self, total_order: Sequence[str]) -> bool:
        """True if *total_order* is a linear extension of this order
        (restricted to exactly this order's columns)."""
        if set(total_order) != set(self.columns) or len(total_order) != self.width:
            return False
        position = {col: i for i, col in enumerate(total_order)}
        boundary = -1
        for part in self.partitions:
            indices = sorted(position[c] for c in part)
            if indices[0] <= boundary:
                return False
            if indices != list(range(indices[0], indices[0] + len(part))):
                return False
            boundary = indices[-1]
        return True

    def total_orders(self) -> Iterator[tuple[str, ...]]:
        """All linear extensions (use only on narrow orders)."""
        pools = [itertools.permutations(sorted(part)) for part in self.partitions]
        for combo in itertools.product(*pools):
            flat: tuple[str, ...] = ()
            for group in combo:
                flat += group
            yield flat

    def linearize(
        self, key: Optional[Callable[[str], object]] = None
    ) -> tuple[str, ...]:
        """One concrete column order satisfying this partial order.

        The choice within a partition is "arbitrary" in the paper
        (``GenerateCandidateIndexPerPO``); we sort by *key* when given
        (e.g. descending NDV, putting the most selective columns first)
        and alphabetically otherwise, for determinism.
        """
        out: list[str] = []
        for part in self.partitions:
            cols = sorted(part) if key is None else sorted(part, key=key)
            out.extend(cols)
        return tuple(out)

    def __str__(self) -> str:
        parts = ", ".join(
            "{" + ", ".join(sorted(p)) + "}" for p in self.partitions
        )
        return f"{self.table}:<{parts}>"
