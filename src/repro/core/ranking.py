"""Candidate ranking: gain, maintenance overhead and utility (Sec. III-F).

For every query ``q`` treated in isolation, the gain of its candidate set
``I`` is (Eq. 7)::

    U+(q, I) = (cost(q, ∅) - cost(q, I)) / cost(q, ∅) * cpu_avg(q, ∅)

``U+`` is then distributed over the indexes the plan actually uses, with
share ``s_{i,q}`` proportional to the I/O reduction attributable to each
index.  Index maintenance overhead follows Eq. 8::

    u-(i) = sum_q cost_u(q, i) / cost(q, ∅) * cpu_avg(q, ∅)

Both sides are weighted by ``w_q`` so the utilities add up to the
workload-level objective of Eq. 1.  In pure-estimation mode (no measured
statistics) ``cpu_avg(q, ∅)`` defaults to ``cost(q, ∅)``, i.e. gains are
expressed directly in optimizer cost units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..catalog import Index
from ..engine import Database
from ..optimizer import CostEvaluator, maintenance_cost
from ..workload import Workload, WorkloadQuery
from .candidates import CandidateSet

CpuBasis = Callable[[WorkloadQuery, float], float]


@dataclass
class RankedCandidate:
    """A candidate index with its accounted utility.

    ``query_gains`` maps each query key to the gain this candidate can
    deliver for it (direct plan attribution plus inherited merged-order
    benefits); the knapsack uses it for marginal-coverage accounting so
    two orderings of one column set never double-claim a query.
    """

    index: Index
    benefit: float = 0.0            # sum of weighted s_iq * U+ shares
    maintenance: float = 0.0        # weighted Eq. 8 overhead
    size_bytes: int = 0
    benefiting_queries: list[tuple[str, float]] = field(default_factory=list)
    query_gains: dict[str, float] = field(default_factory=dict)

    @property
    def utility(self) -> float:
        """``u(i) = s_iq · U+ + u-(i)`` with ``u-`` carried as a cost."""
        return self.benefit - self.maintenance

    @property
    def density(self) -> float:
        """Utility per byte of storage -- the knapsack ordering key."""
        if self.size_bytes <= 0:
            return self.utility
        return self.utility / self.size_bytes


def default_cpu_basis(query: WorkloadQuery, base_cost: float) -> float:
    """Estimation-mode basis: cpu_avg(q, ∅) == cost(q, ∅)."""
    return base_cost


def rank_candidates(
    evaluator: CostEvaluator,
    db: Database,
    workload: Workload,
    candidates: CandidateSet,
    cpu_basis: CpuBasis = default_cpu_basis,
) -> list[RankedCandidate]:
    """Compute per-candidate utilities for a workload.

    SELECT queries contribute gains via their attributed candidates; DML
    statements contribute maintenance overhead against *every* candidate
    on their table (an index pays maintenance whether or not it helps).

    Returns candidates ordered by density, descending.
    """
    ranked: dict[str, RankedCandidate] = {
        idx.name: RankedCandidate(index=idx, size_bytes=db.index_size_bytes(idx))
        for idx in candidates.indexes
    }
    # Per query: (used index name, used key prefix, contribution) triples
    # for merged-benefit inheritance (see below).  The *used prefix* --
    # the equality chain plus range column the plan actually matched --
    # is what another ordering must offer to play the same role.
    contributions: list[
        tuple[str, list[tuple[str, frozenset[str], str, float]]]
    ] = []
    display_names: dict[str, str] = {}

    for query in workload:
        base_cost = evaluator.cost(query.sql, [])
        basis = cpu_basis(query, base_cost)
        if base_cost <= 0:
            continue
        if query.is_dml:
            info = evaluator.analyze(query.sql)
            for candidate in ranked.values():
                overhead = maintenance_cost(
                    info,
                    candidate.index,
                    evaluator.optimizer.db.schema,
                    evaluator.optimizer.db.stats,
                    evaluator.optimizer.db.params,
                )
                if overhead > 0:
                    candidate.maintenance += (
                        query.weight * overhead / base_cost * basis
                    )
            continue

        attributed = candidates.attribution.get(_query_key(query), [])
        if not attributed:
            continue
        plan = evaluator.plan(query.sql, attributed)
        gain_fraction = (base_cost - plan.total_cost) / base_cost
        if gain_fraction <= 0:
            continue
        u_plus = gain_fraction * basis
        savings = plan.io_savings()
        total_saved = sum(savings.values())
        if total_saved <= 0:
            # The plan improved without attributable index I/O savings
            # (e.g. sort elision only); split equally across used indexes.
            # Sorted: used_indexes is a set, and the attribution order
            # below must not depend on the process hash seed.
            used = sorted(n for n in plan.used_indexes if n in ranked)
            savings = {n: 1.0 for n in used}
            total_saved = float(len(used))
        used_prefixes: dict[str, frozenset[str]] = {}
        used_tables: dict[str, str] = {}
        for step in plan.steps:
            path = step.path
            if path.index_name is not None:
                prefix = set(path.eq_columns)
                if path.range_column is not None:
                    prefix.add(path.range_column)
                used_prefixes[path.index_name] = frozenset(prefix)
                used_tables[path.index_name] = path.table
        query_contributions: list[tuple[str, frozenset[str], str, float]] = []
        for name, saved in savings.items():
            candidate = ranked.get(name)
            if candidate is None:
                continue
            share = saved / total_saved
            contribution = query.weight * share * u_plus
            candidate.benefit += contribution
            candidate.benefiting_queries.append(
                (query.name or query.sql[:60], contribution)
            )
            query_contributions.append((
                name,
                used_prefixes.get(name, frozenset(candidate.index.columns)),
                used_tables.get(name, candidate.index.table),
                contribution,
            ))
        contributions.append((_query_key(query), query_contributions))
        display_names[_query_key(query)] = query.name or query.sql[:60]

    _inherit_merged_benefits(ranked, candidates, contributions, display_names)

    ordered = sorted(
        ranked.values(), key=lambda c: (-c.density, c.index.name)
    )
    return ordered


def _inherit_merged_benefits(
    ranked: dict[str, RankedCandidate],
    candidates: CandidateSet,
    contributions: list[tuple[str, list[tuple[str, frozenset[str], str, float]]]],
    display_names: dict[str, str],
) -> None:
    """Paper Sec. III-F: "When index candidates are merged, the benefits
    corresponding to individual queries gets added up."

    A query's plan attributes its gain to *one* ordering of the columns
    it used; equivalent or wider merged orderings compatible with the
    query would deliver the same gain.  Each candidate's ``query_gains``
    therefore collects, per query it is attributed to, the contributions
    of used indexes whose column set it contains.  This lets one shared
    merged index outrank the per-query constituents it absorbs (without
    it, arbitrary tie-breaking among equivalent orderings starves merged
    candidates); the knapsack's marginal accounting then prevents two
    orderings from double-claiming the same query.
    """
    for candidate in ranked.values():
        for query_key, used in contributions:
            attributed = candidates.attribution.get(query_key, [])
            if all(candidate.index.name != idx.name for idx in attributed):
                continue
            transferable = 0.0
            for _used_name, used_prefix, used_table, contribution in used:
                if used_table != candidate.index.table:
                    continue
                # The candidate must offer the plan's matched key prefix
                # as its *leading* columns (any internal order): only
                # then can it play the used index's role in this query.
                width = len(used_prefix)
                if width <= candidate.index.width and set(
                    candidate.index.columns[:width]
                ) == set(used_prefix):
                    transferable += contribution
            if transferable > candidate.query_gains.get(query_key, 0.0):
                candidate.query_gains[query_key] = transferable
        inheritable = sum(candidate.query_gains.values())
        if inheritable > candidate.benefit:
            candidate.benefit = inheritable
            candidate.benefiting_queries = [
                (display_names.get(key, key[:60]), gain)
                for key, gain in candidate.query_gains.items()
            ]


def _query_key(query: WorkloadQuery) -> str:
    return query.normalized_sql
