"""The ``TryCoveringIndex`` decision (paper Sec. III-D / Algorithm 2 line 3).

A covering index is only tried for a query when

1. selectivity cannot improve further -- the current plan already drives
   the table through an index whose equality prefix exhausts the query's
   index prefix predicate columns, and
2. the number of extra clustered-PK seeks is high enough to offset the
   storage cost of widening the index.  The threshold is higher for fast
   storage media (SSDs), where random seeks are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Optional

from ..catalog import Index
from ..optimizer.plan import Plan
from ..optimizer.query_info import QueryInfo
from .ipp import factorize_index_predicates

MODE_COVERING = "covering"
MODE_NON_COVERING = "non-covering"

#: Default seek threshold: below this many PK lookups per execution a
#: covering index is not worth its extra storage.
DEFAULT_SEEK_THRESHOLD = 100.0


@dataclass(frozen=True)
class CoveringPolicy:
    """Tunables for the covering-index decision.

    Attributes:
        seek_threshold: minimum PK lookups per execution before covering
            is attempted (raise for SSD-backed databases).
        min_weight: minimum query weight (execution frequency); covering
            indexes only pay off for queries that "execute extremely
            frequently" (Sec. III-B).
    """

    seek_threshold: float = DEFAULT_SEEK_THRESHOLD
    min_weight: float = 0.0


def try_covering_index(
    info: QueryInfo,
    plan: Optional[Plan],
    policy: CoveringPolicy = CoveringPolicy(),
    weight: float = 1.0,
    schema=None,
) -> str:
    """Decide the candidate generation mode for one query.

    *plan* is the query's plan under the *current* configuration; pass
    None during bootstrapping (no indexes yet), which always yields
    non-covering mode -- narrow indexes first, covering in a later phase
    (Sec. III-B).

    When *schema* is supplied, IPP columns that lead the table's primary
    key are ignored: the clustered index already serves them, so they
    cannot block the "selectivity cannot improve further" condition.
    """
    if plan is None:
        return MODE_NON_COVERING
    if weight < policy.min_weight:
        return MODE_NON_COVERING
    for step in plan.steps:
        path = step.path
        if path.covering and path.method != "seq":
            continue
        ipp_cols = _ipp_columns(info, path.binding)
        if schema is not None:
            pk = schema.table(info.bindings[path.binding]).primary_key
            ipp_cols = {c for c in ipp_cols if c != pk[0]}
        if path.method == "seq":
            # No index helps this binding at all.  When the query has no
            # index prefix predicates, selectivity *cannot* improve, so a
            # covering (index-only) scan is the only remaining lever --
            # provided the scan is heavy enough.
            if ipp_cols:
                continue
            if path.rows_examined * step.executions >= policy.seek_threshold:
                return MODE_COVERING
            continue
        if path.index is None:
            continue
        if ipp_cols and not ipp_cols <= set(path.eq_columns):
            # Selectivity could still improve with a better prefix.
            continue
        seeks = path.lookup_rows * step.executions
        if seeks >= policy.seek_threshold:
            return MODE_COVERING
    return MODE_NON_COVERING


def _ipp_columns(info: QueryInfo, binding: str) -> set[str]:
    """All IPP columns of a binding across its DNF factors."""
    join_cols = {
        edge.column_of(binding) for edge in info.edges_of(binding)
    }
    groups = factorize_index_predicates(info, binding, join_cols)
    out: set[str] = set()
    for group in groups:
        out |= group.ipp_columns
    return out


def covering_extension(
    info: QueryInfo, binding: str, present: Collection[str]
) -> list[str]:
    """Columns to append so an index covers the query on *binding*
    (``ReferencedColumns(Q, t) \\ ReferencedColumns(c)``, Algorithm 4
    line 9), in deterministic order."""
    referenced = info.referenced.get(binding, set())
    return sorted(referenced - set(present))
