"""Recommendation records with metrics-driven explanations.

"Each index recommendation from AIM is accompanied with a metrics driven
explanation, making it easier to verify machine driven changes"
(paper abstract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Index

PHASE_NARROW = "narrow"
PHASE_COVERING = "covering"


def format_bytes(n: float) -> str:
    """Human-readable byte count (GiB/MiB/KiB)."""
    for unit, threshold in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if abs(n) >= threshold:
            return f"{n / threshold:.2f} {unit}"
    return f"{n:.0f} B"


@dataclass
class IndexRecommendation:
    """One recommended index with its accounting."""

    index: Index
    benefit: float
    maintenance: float
    size_bytes: int
    benefiting_queries: list[tuple[str, float]] = field(default_factory=list)
    phase: str = PHASE_NARROW

    @property
    def utility(self) -> float:
        return self.benefit - self.maintenance

    def explanation(self) -> str:
        """Metrics-driven justification for this index."""
        lines = [
            f"CREATE INDEX {self.index.name} ON "
            f"{self.index.table} ({', '.join(self.index.columns)})",
            f"  phase: {self.phase}  size: {format_bytes(self.size_bytes)}",
            f"  expected gain: {self.benefit:.3f} cost units/interval, "
            f"maintenance overhead: {self.maintenance:.3f}, "
            f"net utility: {self.utility:.3f}",
        ]
        top = sorted(self.benefiting_queries, key=lambda t: -t[1])[:3]
        for name, gain in top:
            lines.append(f"  benefits: {name!r} (+{gain:.3f})")
        return "\n".join(lines)


@dataclass
class Recommendation:
    """Outcome of one advisor run (Algorithm 1's ``production_indexes``)."""

    created: list[IndexRecommendation] = field(default_factory=list)
    dropped: list[Index] = field(default_factory=list)
    budget_bytes: int = 0
    cost_before: float = 0.0
    cost_after: float = 0.0
    runtime_seconds: float = 0.0
    optimizer_calls: int = 0
    rejected_for_regression: list[Index] = field(default_factory=list)

    @property
    def indexes(self) -> list[Index]:
        """The recommended indexes, in ranked (materialization) order."""
        return [rec.index for rec in self.created]

    @property
    def total_size_bytes(self) -> int:
        return sum(rec.size_bytes for rec in self.created)

    @property
    def improvement(self) -> float:
        """Relative workload cost reduction (0..1)."""
        if self.cost_before <= 0:
            return 0.0
        return max(0.0, 1.0 - self.cost_after / self.cost_before)

    def summary(self) -> str:
        lines = [
            f"AIM recommendation: {len(self.created)} indexes, "
            f"{format_bytes(self.total_size_bytes)} of "
            f"{format_bytes(self.budget_bytes)} budget, "
            f"workload cost {self.cost_before:.1f} -> {self.cost_after:.1f} "
            f"(-{self.improvement * 100:.1f}%), "
            f"{self.optimizer_calls} optimizer calls, "
            f"{self.runtime_seconds:.2f}s",
        ]
        for rec in self.created:
            lines.append(rec.explanation())
        for index in self.dropped:
            lines.append(f"DROP INDEX {index.name} (unused or redundant)")
        for index in self.rejected_for_regression:
            lines.append(
                f"REJECTED {index.name} "
                f"(clone validation: would regress a query beyond λ3)"
            )
        return "\n".join(lines)
