"""Predicate factorization and index-prefix-predicate classification.

Implements ``FactorizeIndexPredicates`` (paper Sec. IV-B1): the WHERE
clause is brought into disjunctive normal form and every DNF factor
yields one predicate group; each group later becomes (at least) one
candidate partial order.  Within a group, columns split into *index
prefix predicate* (IPP) columns -- operators ``=``, ``<=>``, ``IN``,
``IS NULL`` whose matching rows share a constant prefix (Sec. IV-B2) --
and range-scan columns (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``,
prefix-``LIKE``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..optimizer.query_info import QueryInfo
from ..sqlparser import ast
from ..sqlparser.predicates import AtomicPredicate, classify_atomic, to_dnf

#: Cap on DNF factors considered per binding (complex AND-OR chains).
MAX_FACTORS = 32


@dataclass
class PredicateGroup:
    """One DNF factor's predicates on one table binding.

    Attributes:
        binding: the table binding the group belongs to.
        ipp_columns: columns featuring in an index prefix predicate
            (includes join columns, which behave as equality predicates
            once the other side is bound).
        range_predicates: non-IPP sargable predicates, keyed by column.
    """

    binding: str
    ipp_columns: set[str] = field(default_factory=set)
    range_predicates: dict[str, list[AtomicPredicate]] = field(default_factory=dict)

    @property
    def range_columns(self) -> set[str]:
        return set(self.range_predicates)

    @property
    def columns(self) -> set[str]:
        return self.ipp_columns | self.range_columns

    def is_empty(self) -> bool:
        return not self.ipp_columns and not self.range_predicates


def is_ipp(pred: AtomicPredicate) -> bool:
    """Index prefix predicate test (Sec. IV-B2).

    LIKE is special-cased: only a constant-prefix pattern bounds a scan,
    and even then the matching rows do *not* share one constant full
    prefix -- so LIKE is never an IPP, at best a range predicate.
    """
    return pred.op in ("=", "<=>", "IN", "IS NULL")


def is_range(pred: AtomicPredicate) -> bool:
    if pred.op == "LIKE":
        from ..sqlparser.predicates import like_has_constant_prefix
        from ..optimizer.selectivity import constant_value

        assert isinstance(pred.expr, ast.Comparison)
        return like_has_constant_prefix(constant_value(pred.expr.right))
    return pred.op in ("<", "<=", ">", ">=", "BETWEEN")


def factorize_index_predicates(
    info: QueryInfo,
    binding: str,
    join_columns: Iterable[str] = (),
    max_factors: int = MAX_FACTORS,
) -> list[PredicateGroup]:
    """DNF-factorize the predicates on *binding* into predicate groups.

    Top-level conjunct atomics appear in every group; each complex (OR
    tree) conjunct local to the binding multiplies the group set by its
    disjuncts.  *join_columns* (the ``C_J`` of Algorithms 4/6/7) are added
    to every group as IPP columns.

    Always returns at least one group when any predicate or join column
    exists; returns an empty list otherwise.
    """
    base = [p for p in info.filters.get(binding, [])]
    factor_sets: list[list[AtomicPredicate]] = [list(base)]
    for touched, expr in info.complex_conjuncts:
        if touched != frozenset({binding}):
            continue
        disjunct_preds: list[list[AtomicPredicate]] = []
        for factor in to_dnf(expr, max_terms=max_factors):
            atoms = []
            for leaf in factor:
                atomic = classify_atomic(leaf)
                if atomic is not None:
                    atoms.append(atomic)
            disjunct_preds.append(atoms)
        if not disjunct_preds:
            continue
        factor_sets = [
            existing + extra
            for existing in factor_sets
            for extra in disjunct_preds
        ][:max_factors]

    join_cols = set(join_columns)
    groups: list[PredicateGroup] = []
    seen: set[tuple] = set()
    for atoms in factor_sets:
        group = PredicateGroup(binding=binding, ipp_columns=set(join_cols))
        for pred in atoms:
            col = pred.column.column
            if is_ipp(pred):
                group.ipp_columns.add(col)
            elif is_range(pred):
                group.range_predicates.setdefault(col, []).append(pred)
        if group.is_empty():
            continue
        key = (
            frozenset(group.ipp_columns),
            frozenset(group.range_predicates),
        )
        if key in seen:
            continue
        seen.add(key)
        groups.append(group)
    return groups


@dataclass
class RangeColumnChooser:
    """Chooses the single range column of Algorithm 5 line 6.

    ``last_col = argmin_{c in C_RSP} dataless_index_cost(Q, <C_IPP, {c}>)``

    With an evaluator, builds the dataless candidate per range column and
    asks the optimizer (the paper's "role of dataless indexes",
    Sec. V-B).  Without one -- the ablation's degraded mode -- falls back
    to the first range column in catalog order.
    """

    evaluator: Optional[object] = None    # CostEvaluator, avoided import cycle
    stats_lookup: Optional[object] = None

    def choose(
        self,
        info: QueryInfo,
        group: PredicateGroup,
        table: str,
    ) -> Optional[str]:
        # A column already equality-bound in C_IPP is pinned by the
        # prefix; its range predicates are residual and it cannot also
        # be the trailing range column (<C_IPP, {c}> must be duplicate
        # free).
        candidates = sorted(
            c for c in group.range_columns if c not in group.ipp_columns
        )
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        if self.evaluator is not None:
            from ..catalog import Index

            base = self.evaluator.cost(info, [])
            best_col, best_cost = None, float("inf")
            prefix = tuple(sorted(group.ipp_columns))
            for col in candidates:
                index = Index(table, prefix + (col,), dataless=True)
                cost = self.evaluator.cost(info, [index])
                if cost < best_cost:
                    best_col, best_cost = col, cost
            if best_cost < base:
                return best_col
            # No candidate changed the plan (dataless dive inconclusive):
            # fall back to histogram selectivity.
            stats = self.evaluator.optimizer.db.stats
            return self._by_selectivity(
                group, candidates, lambda col: stats.table(table).column(col)
            )
        if self.stats_lookup is not None:
            return self._by_selectivity(
                group, candidates, lambda col: self.stats_lookup(table, col)
            )
        return candidates[0]

    @staticmethod
    def _by_selectivity(group, candidates, column_stats):
        from ..optimizer.selectivity import combined_range_selectivity

        def sel(col: str) -> float:
            return combined_range_selectivity(
                group.range_predicates[col], column_stats(col)
            )

        return min(candidates, key=lambda c: (sel(c), c))
