"""Candidate index generation (paper Sec. IV, Algorithms 2-7).

Candidate generation transforms *structural* query metadata into partial
orders of index columns -- no optimizer enumeration over configurations.
For every query the three generators run (selection, GROUP BY, ORDER BY,
Algorithms 4/6/7), exploring join-order alternatives through the
``JoinedTablesPowerset`` bounded by the join parameter ``j``
(Algorithm 3).  The per-workload partial orders are then merged to a
fixpoint (Sec. III-E) and linearized into concrete index candidates
(``GenerateCandidateIndexPerPO``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..catalog import Index, Schema
from ..obs import trace
from ..optimizer.query_info import QueryInfo
from ..optimizer.switches import DEFAULT_SWITCHES, OptimizerSwitches
from ..stats import StatsCatalog
from .covering import MODE_COVERING, MODE_NON_COVERING, covering_extension
from .ipp import PredicateGroup, RangeColumnChooser, factorize_index_predicates
from .merge import merge_by_table
from .partial_order import PartialOrder


@dataclass(frozen=True)
class GeneratorConfig:
    """Candidate generation tunables.

    Attributes:
        join_parameter: the paper's ``j`` -- tables joined with more than
            ``j`` others are not exhaustively explored (Algorithm 3).
        max_index_width: optional cap on candidate width (AIM itself needs
            none; useful for like-for-like baseline comparisons).
        merge_orders: disable to ablate Sec. III-E merging.
        max_orders_per_table: fixpoint safety cap.
        ipp_relaxation_rows: Sec. V-A's third granularity lever --
            "relaxation / reduction of the number of sub-predicates in the
            index prefix predicates".  When set, IPP columns whose additive
            selectivity no longer matters are dropped: the most selective
            columns are kept until the estimated matched rows fall to this
            threshold, the rest are left out of the candidate.  ``None``
            keeps every IPP column (the default, paper behaviour).
    """

    join_parameter: int = 2
    max_index_width: Optional[int] = None
    merge_orders: bool = True
    max_orders_per_table: int = 512
    ipp_relaxation_rows: Optional[float] = None
    #: Optimizer switch awareness (Sec. VIII-a): with skip scan enabled,
    #: candidates another candidate serves via skip scan are pruned.
    switches: OptimizerSwitches = DEFAULT_SWITCHES


@dataclass
class CandidateSet:
    """Generated candidates plus provenance.

    Attributes:
        orders: the final (merged) partial orders.
        indexes: one concrete index per partial order.
        attribution: per query key, the indexes generated for / compatible
            with that query (feeds Eq. 7's per-query gain split).
    """

    orders: list[PartialOrder] = field(default_factory=list)
    indexes: list[Index] = field(default_factory=list)
    attribution: dict[str, list[Index]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.indexes)


def joined_tables_powerset(
    info: QueryInfo, binding: str, join_parameter: int
) -> list[frozenset[str]]:
    """Algorithm 3: power set of bindings sharing a join predicate with
    *binding*; degraded to ``{∅}`` when the table joins with more than
    ``j`` others (the exponential guard)."""
    joined = sorted(info.joined_bindings(binding))
    if len(joined) > join_parameter:
        joined = []
    out: list[frozenset[str]] = []
    for size in range(len(joined) + 1):
        for combo in itertools.combinations(joined, size):
            out.append(frozenset(combo))
    return out


class CandidateGenerator:
    """Generates candidate indexes for queries against one schema."""

    def __init__(
        self,
        schema: Schema,
        stats: StatsCatalog,
        config: GeneratorConfig = GeneratorConfig(),
        range_chooser: Optional[RangeColumnChooser] = None,
    ):
        self.schema = schema
        self.stats = stats
        self.config = config
        self.range_chooser = range_chooser or RangeColumnChooser(
            stats_lookup=lambda table, col: stats.table(table).column(col)
        )

    # -- per-query generation (Algorithm 2 line 4) ---------------------------

    def generate_for_query(
        self, info: QueryInfo, mode: str = MODE_NON_COVERING
    ) -> set[PartialOrder]:
        """Union of the selection / GROUP BY / ORDER BY generators."""
        orders: set[PartialOrder] = set()
        orders |= self.for_selection(info, mode)
        orders |= self.for_group_by(info, mode)
        orders |= self.for_order_by(info, mode)
        return {po for po in orders if not self._useless(po)}

    def for_selection(self, info: QueryInfo, mode: str) -> set[PartialOrder]:
        """Algorithm 4."""
        out: set[PartialOrder] = set()
        for binding, table in info.bindings.items():
            for subset in joined_tables_powerset(
                info, binding, self.config.join_parameter
            ):
                join_cols = self._join_columns(info, binding, subset)
                groups = factorize_index_predicates(info, binding, join_cols)
                for group in groups:
                    po = self._index_predicates_order(info, binding, table, group)
                    if po is None:
                        continue
                    if mode == MODE_COVERING:
                        po = po.append(
                            covering_extension(info, binding, po.columns)
                        )
                    out.add(po)
        return out

    def for_group_by(self, info: QueryInfo, mode: str) -> set[PartialOrder]:
        """Algorithm 6."""
        out: set[PartialOrder] = set()
        by_binding: dict[str, list[str]] = {}
        for binding, column in info.group_by:
            by_binding.setdefault(binding, []).append(column)
        for binding, group_cols in by_binding.items():
            table = info.bindings[binding]
            if mode == MODE_NON_COVERING:
                out.add(PartialOrder.build(table, [group_cols]))
                continue
            for subset in joined_tables_powerset(
                info, binding, self.config.join_parameter
            ):
                join_cols = self._join_columns(info, binding, subset)
                groups = factorize_index_predicates(info, binding, join_cols)
                if not groups:
                    groups = [PredicateGroup(binding)]
                for group in groups:
                    ipp = sorted(group.ipp_columns)
                    po = PartialOrder.build(table, [ipp])
                    po = po.append(
                        [c for c in group_cols if c not in po.columns]
                    )
                    po = po.append(covering_extension(info, binding, po.columns))
                    if not po.is_empty:
                        out.add(po)
        return out

    def for_order_by(self, info: QueryInfo, mode: str) -> set[PartialOrder]:
        """Algorithm 7."""
        out: set[PartialOrder] = set()
        if not info.order_by:
            return out
        # The useful order columns are the maximal ORDER BY prefix living
        # on a single binding (an index on one table can only provide
        # that prefix).
        first_binding = info.order_by[0].binding
        sequence = []
        for item in info.order_by:
            if item.binding != first_binding:
                break
            sequence.append(item.column)
        binding = first_binding
        table = info.bindings[binding]
        if mode == MODE_NON_COVERING:
            out.add(PartialOrder.chain(table, _dedupe(sequence)))
            return out
        for subset in joined_tables_powerset(
            info, binding, self.config.join_parameter
        ):
            join_cols = self._join_columns(info, binding, subset)
            groups = factorize_index_predicates(info, binding, join_cols)
            if not groups:
                groups = [PredicateGroup(binding)]
            for group in groups:
                po = PartialOrder.build(table, [sorted(group.ipp_columns)])
                po = po.append_chain(_dedupe(sequence))
                po = po.append(covering_extension(info, binding, po.columns))
                if not po.is_empty:
                    out.add(po)
        return out

    # -- workload-level generation (Algorithm 2) ------------------------------

    def generate(
        self,
        queries: Iterable[tuple[str, QueryInfo, str]],
    ) -> CandidateSet:
        """Generate, merge and linearize candidates for a workload.

        Args:
            queries: (query_key, analyzed info, mode) triples; *mode* is
                the ``TryCoveringIndex`` outcome per query.

        Returns:
            The merged candidate set with per-query attribution.
        """
        per_query: dict[str, set[PartialOrder]] = {}
        all_orders: set[PartialOrder] = set()
        with trace("advisor.partial_order_generation") as span:
            for key, info, mode in queries:
                orders = self.generate_for_query(info, mode)
                per_query.setdefault(key, set()).update(orders)
                all_orders |= orders
            span.set(queries=len(per_query), orders=len(all_orders))

        with trace("advisor.merge") as span:
            if self.config.merge_orders:
                merged = merge_by_table(
                    all_orders, self.config.max_orders_per_table
                )
            else:
                merged = set(all_orders)
            span.set(orders_in=len(all_orders), orders_out=len(merged))

        result = CandidateSet()
        index_by_order: dict[PartialOrder, Index] = {}
        seen_names: set[str] = set()
        for po in sorted(merged, key=str):
            index = self.index_for_order(po)   # truncates to max width
            if index is None:
                continue
            index_by_order[po] = index
            if index.name in seen_names:
                continue   # width truncation can collapse two orders
            seen_names.add(index.name)
            result.orders.append(po)
            result.indexes.append(index)

        if self.config.switches.skip_scan:
            self._prune_skip_servable(result, index_by_order)

        for key, orders in per_query.items():
            compatible: dict[str, Index] = {}
            for _po, index in index_by_order.items():
                if index.name not in compatible and self._serves(orders, index):
                    compatible[index.name] = index
            result.attribution[key] = list(compatible.values())
        return result

    def _prune_skip_servable(
        self,
        result: CandidateSet,
        index_by_order: dict[PartialOrder, Index],
    ) -> None:
        """Sec. VIII-a switch awareness: with skip scan ON, an index whose
        key equals another candidate's key minus a low-NDV leading column
        is redundant -- the wider candidate serves its queries via skip
        scan.  Pruning it shrinks the candidate set."""
        max_ndv = self.config.switches.skip_scan_max_ndv
        by_key = {(idx.table, idx.columns): idx for idx in result.indexes}
        redundant: set[str] = set()
        for index in result.indexes:
            for (table, columns), wider in by_key.items():
                if table != index.table or len(columns) != index.width + 1:
                    continue
                if columns[1:] != index.columns:
                    continue
                leading_ndv = self.stats.table(table).column(columns[0]).ndv
                if leading_ndv <= max_ndv:
                    redundant.add(index.name)
                    break
        if not redundant:
            return
        keep = [i for i, idx in enumerate(result.indexes) if idx.name not in redundant]
        result.orders = [result.orders[i] for i in keep]
        result.indexes = [result.indexes[i] for i in keep]
        for po in [p for p, idx in index_by_order.items() if idx.name in redundant]:
            del index_by_order[po]

    def index_for_order(self, po: PartialOrder) -> Optional[Index]:
        """``GenerateCandidateIndexPerPO``: pick one linear extension.

        Within a partition, columns are ordered by descending NDV (most
        selective first) -- the paper leaves the choice arbitrary; this
        choice maximizes prefix usefulness deterministically.
        """
        stats = self.stats.table(po.table)
        total = self._prune_to_width(po)
        if total is None:
            return None
        columns = total.linearize(
            key=lambda col: (-stats.column(col).ndv, col)
        )
        table = self.schema.table(po.table)
        pk = table.primary_key
        if columns == pk[: len(columns)]:
            return None   # a PK prefix: the clustered index already serves it
        return Index(po.table, columns, dataless=True)

    # -- helpers ---------------------------------------------------------------

    def _join_columns(
        self, info: QueryInfo, binding: str, subset: frozenset[str]
    ) -> set[str]:
        cols: set[str] = set()
        for edge in info.edges_of(binding):
            other, _ = edge.other(binding)
            if other in subset:
                cols.add(edge.column_of(binding))
        return cols

    def _index_predicates_order(
        self,
        info: QueryInfo,
        binding: str,
        table: str,
        group: PredicateGroup,
    ) -> Optional[PartialOrder]:
        """Algorithm 5: ``<C_IPP, {last_col}>`` per predicate group."""
        last_col = self.range_chooser.choose(info, group, table)
        ipp_columns = self._relax_ipp(table, group.ipp_columns)
        partitions: list[list[str]] = []
        if ipp_columns:
            partitions.append(sorted(ipp_columns))
        if last_col is not None and last_col not in ipp_columns:
            partitions.append([last_col])
        if not partitions:
            return None
        return PartialOrder.build(table, partitions)

    def _relax_ipp(self, table: str, ipp_columns: set[str]) -> set[str]:
        """Sec. V-A IPP relaxation: keep the most selective IPP columns
        until the estimated matched rows reach the configured threshold;
        additional columns add width without additive selectivity."""
        threshold = self.config.ipp_relaxation_rows
        if threshold is None or len(ipp_columns) <= 1:
            return set(ipp_columns)
        stats = self.stats.table(table)
        rows = float(max(1, stats.row_count))
        # Most selective first (highest NDV); ties broken by name.
        ordered = sorted(
            ipp_columns, key=lambda c: (-stats.column(c).ndv, c)
        )
        kept: set[str] = set()
        matched = rows
        for column in ordered:
            if matched <= threshold and kept:
                break
            kept.add(column)
            matched /= max(1, stats.column(column).ndv)
        return kept

    def _prune_to_width(self, po: PartialOrder) -> Optional[PartialOrder]:
        cap = self.config.max_index_width
        if cap is None or po.width <= cap:
            return po
        # Truncate trailing partitions to fit the cap (keeps the prefix).
        kept: list[frozenset[str]] = []
        used = 0
        for part in po.partitions:
            if used + len(part) <= cap:
                kept.append(part)
                used += len(part)
            else:
                remaining = cap - used
                if remaining > 0:
                    kept.append(frozenset(sorted(part)[:remaining]))
                break
        if not kept:
            return None
        return PartialOrder(po.table, tuple(kept))

    def _useless(self, po: PartialOrder) -> bool:
        if po.is_empty:
            return True
        table = self.schema.table(po.table)
        # Single-column candidate equal to the PK's leading column.
        if po.width == 1 and next(iter(po.columns)) == table.primary_key[0]:
            return True
        return False

    def _serves(self, query_orders: set[PartialOrder], index: Index) -> bool:
        """True if the concrete *index* serves any of the query's partial
        orders: the index's leading columns must be a linear extension of
        the source order (its columns as an order-respecting prefix).
        With skip scan enabled, one low-NDV leading column may precede
        the prefix."""
        for source in query_orders:
            if source.table != index.table or source.width > index.width:
                continue
            prefix = index.columns[: source.width]
            if set(prefix) == set(source.columns) and source.satisfied_by(prefix):
                return True
            if (
                self.config.switches.skip_scan
                and source.width + 1 <= index.width
                and index.columns[0] not in source.columns
            ):
                leading_ndv = self.stats.table(index.table).column(
                    index.columns[0]
                ).ndv
                skipped = index.columns[1 : source.width + 1]
                if (
                    leading_ndv <= self.config.switches.skip_scan_max_ndv
                    and set(skipped) == set(source.columns)
                    and source.satisfied_by(skipped)
                ):
                    return True
        return False


def _dedupe(columns: Iterable[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for col in columns:
        if col not in seen:
            seen.add(col)
            out.append(col)
    return out
