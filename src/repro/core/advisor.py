"""The AIM advisor: Algorithm 1 end to end.

``AimAdvisor.recommend`` runs the full pipeline on a workload:

1. (optionally) representative workload selection from monitor statistics,
2. per-query covering-mode decision (``TryCoveringIndex``),
3. structural candidate generation + partial order merging (Algorithms
   2-7, Sec. III-E),
4. candidate ranking by Eq. 7 / Eq. 8 utilities,
5. greedy knapsack selection under the storage budget,
6. a second *covering phase* for high-frequency queries whose plans still
   pay heavy PK-lookup seeks under the phase-1 configuration (Sec. III-B),
7. clone-validated "no regression" filtering (Eq. 4 with λ3) and the
   Eq. 3 minimum-improvement gate (λ2).

The advisor never mutates the database; callers materialize
``recommendation.indexes`` themselves (or via
:class:`~repro.core.continuous.ContinuousTuner`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from ..catalog import Index
from ..engine import Database
from ..obs import (
    AdvisorDecision,
    Span,
    capture_now,
    emit,
    get_registry,
    profile,
    trace,
)
from ..optimizer import CostEvaluator
from ..workload import (
    SelectionPolicy,
    Workload,
    WorkloadMonitor,
    WorkloadQuery,
    select_representative_workload,
)
from .candidates import CandidateGenerator, CandidateSet, GeneratorConfig
from .covering import CoveringPolicy, MODE_COVERING, MODE_NON_COVERING, try_covering_index
from .explain import (
    IndexRecommendation,
    PHASE_COVERING,
    PHASE_NARROW,
    Recommendation,
)
from .ipp import RangeColumnChooser
from .knapsack import knapsack_select
from .ranking import RankedCandidate, default_cpu_basis, rank_candidates


@contextmanager
def advisor_phase(name: str, evaluator: CostEvaluator) -> Iterator[Span]:
    """Trace one pipeline phase and account its optimizer-call share.

    Each phase span carries the number of (uncached) optimizer
    invocations it triggered, and the same numbers feed the
    ``advisor.phase.seconds`` / ``advisor.phase.optimizer_calls``
    histograms -- turning the single ``optimizer_calls`` integer of the
    seed into a per-phase decomposition (paper Table 2 / Fig 6 claims).
    """
    registry = get_registry()
    calls_before = evaluator.optimizer_calls
    phase = name.rsplit(".", 1)[-1]
    active = registry.gauge(
        "advisor.phase.active", "1 while the labeled phase is running"
    )
    active.set(1, phase=phase)
    with trace(name) as span:
        try:
            with profile(name):
                yield span
        finally:
            delta = evaluator.optimizer_calls - calls_before
            span.set(optimizer_calls=delta)
            registry.histogram(
                "advisor.phase.seconds", "wall seconds per advisor phase"
            ).observe(span.duration, phase=phase)
            registry.histogram(
                "advisor.phase.optimizer_calls",
                "optimizer invocations per advisor phase",
            ).observe(delta, phase=phase)
            active.set(0, phase=phase)
            # A phase boundary is a natural dashboard refresh point.
            capture_now()


@dataclass(frozen=True)
class AimConfig:
    """All AIM tunables in one place.

    Attributes:
        join_parameter: the paper's ``j`` (Sec. IV-C; Fig 6 sweeps it).
        max_index_width: optional width cap (None = unbounded, as AIM).
        merge_orders: Sec. III-E merging (ablation switch).
        use_dataless_guidance: use dataless-index costs to pick the range
            column in Algorithm 5 (ablation switch; falls back to
            histogram selectivity).
        covering: covering-phase policy.
        covering_phase: enable the second phase entirely.
        covering_weight_fraction: a query enters the covering phase only
            if it carries at least this fraction of the workload weight
            ("executes extremely frequently", Sec. III-B).
        lambda2: Eq. 3 -- minimum relative improvement some query must see
            for the recommendation to be worth applying.
        lambda3: Eq. 4 -- maximum tolerated relative regression per query.
        validate: run the no-regression validation pass.
        relative_to_current: evaluate gains relative to the database's
            current secondary indexes (continuous tuning) instead of an
            unindexed baseline (bootstrapping).
        ipp_relaxation_rows: Sec. V-A IPP relaxation threshold (estimated
            matched rows); None keeps all IPP columns.
        jobs: process fan-out for workload costing (1 = serial).  Results
            are bit-identical to serial; see docs/PERFORMANCE.md.
    """

    join_parameter: int = 2
    max_index_width: Optional[int] = None
    merge_orders: bool = True
    use_dataless_guidance: bool = True
    ipp_relaxation_rows: Optional[float] = None
    covering: CoveringPolicy = field(default_factory=CoveringPolicy)
    covering_phase: bool = True
    covering_weight_fraction: float = 0.02
    lambda2: float = 0.05
    lambda3: float = 0.10
    validate: bool = True
    relative_to_current: bool = False
    jobs: int = 1


class AimAdvisor:
    """Automatic Index Manager over one database."""

    def __init__(
        self,
        db: Database,
        config: AimConfig = AimConfig(),
        monitor: Optional[WorkloadMonitor] = None,
    ):
        self.db = db
        self.config = config
        self.monitor = monitor

    # -- public API ---------------------------------------------------------------

    def recommend_from_monitor(
        self,
        budget_bytes: int,
        policy: SelectionPolicy = SelectionPolicy(),
    ) -> Recommendation:
        """Representative workload selection (Sec. III-C) + recommend."""
        if self.monitor is None:
            raise RuntimeError("advisor has no workload monitor attached")
        with trace("advisor.workload_selection") as span:
            workload = select_representative_workload(self.monitor, policy)
            span.set(selected_queries=len(workload))
        return self.recommend(workload, budget_bytes)

    def recommend(
        self,
        workload: Workload,
        budget_bytes: int,
        evaluator: Optional[CostEvaluator] = None,
    ) -> Recommendation:
        """Run Algorithm 1 on *workload* under *budget_bytes*.

        Pass *evaluator* to reuse one across advisor runs: its plan
        caches then persist between tuning cycles, which is what makes
        repeated recommendations over a stable workload nearly free of
        optimizer calls.  A caller-supplied evaluator is left open;
        ``optimizer_calls`` on the result always counts this run only.
        """
        owned = evaluator is None
        if evaluator is None:
            evaluator = CostEvaluator(
                self.db,
                include_schema_indexes=self.config.relative_to_current,
                jobs=self.config.jobs,
            )
        calls_start = evaluator.optimizer_calls
        generator = self._generator(evaluator)
        registry = get_registry()
        registry.counter("advisor.runs", "advisor invocations").inc()

        with trace("advisor.recommend", queries=len(workload)) as root:
            with advisor_phase("advisor.baseline_cost", evaluator):
                cost_before = evaluator.workload_cost(workload.pairs())

            # Phase 1: narrow (non-covering) indexes for every tuning target.
            selects = [q for q in workload if not q.is_dml]
            with advisor_phase("advisor.candidate_generation", evaluator) as span:
                phase1_queries = [
                    (q.normalized_sql, evaluator.analyze(q.sql), MODE_NON_COVERING)
                    for q in selects
                ]
                candidates = generator.generate(phase1_queries)
                span.set(candidates=len(candidates.indexes))

            with advisor_phase("advisor.ranking", evaluator) as span:
                ranked = rank_candidates(
                    evaluator, self.db, workload, candidates, self._cpu_basis
                )
                span.set(ranked=len(ranked))

            with advisor_phase("advisor.knapsack", evaluator) as span:
                selected = knapsack_select(ranked, budget_bytes)
                span.set(selected=len(selected))
            phases = {c.index.name: PHASE_NARROW for c in selected}
            picked = {c.index.name for c in selected}
            for candidate in selected:
                self._emit_decision(
                    "accepted", "knapsack_selected", candidate, PHASE_NARROW
                )
            for candidate in ranked:
                if candidate.index.name not in picked:
                    self._emit_decision(
                        "rejected", "knapsack_evicted", candidate, PHASE_NARROW
                    )

            # Phase 2: covering indexes for very frequent, still-seek-heavy
            # queries, evaluated on top of the phase-1 configuration.
            if self.config.covering_phase:
                with advisor_phase("advisor.covering_phase", evaluator) as span:
                    selected, phases = self._covering_phase(
                        evaluator, generator, workload, selects,
                        selected, phases, budget_bytes,
                    )
                    span.set(selected=len(selected))

            # Validation: the no-regression guarantee (Eq. 4) on the clone.
            rejected: list[Index] = []
            if self.config.validate:
                with advisor_phase("advisor.validation", evaluator) as span:
                    selected, rejected = self._validate(
                        evaluator, workload, selected
                    )
                    span.set(accepted=len(selected), rejected=len(rejected))
                verdicts = registry.counter(
                    "advisor.validation.verdicts",
                    "clone-validation outcomes per candidate index",
                )
                verdicts.inc(len(selected), verdict="accepted")
                verdicts.inc(len(rejected), verdict="rejected")

            with advisor_phase("advisor.finalize", evaluator) as span:
                chosen_indexes = [c.index for c in selected]
                cost_after = evaluator.workload_cost(
                    workload.pairs(), chosen_indexes
                )
                # Eq. 3: require a minimum improvement for at least one query.
                if selected and not self._improves_some_query(
                    evaluator, workload, chosen_indexes
                ):
                    for candidate in selected:
                        self._emit_decision(
                            "rejected",
                            "below_min_improvement",
                            candidate,
                            phases.get(candidate.index.name, PHASE_NARROW),
                        )
                    selected, chosen_indexes = [], []
                    cost_after = cost_before
                span.set(chosen=len(chosen_indexes))

            root.set(optimizer_calls=evaluator.optimizer_calls - calls_start)

        registry.counter(
            "advisor.indexes.recommended", "indexes across all advisor runs"
        ).inc(len(selected))
        created = [
            IndexRecommendation(
                index=c.index.materialized(),
                benefit=c.benefit,
                maintenance=c.maintenance,
                size_bytes=c.size_bytes,
                benefiting_queries=c.benefiting_queries,
                phase=phases.get(c.index.name, PHASE_NARROW),
            )
            for c in sorted(selected, key=lambda c: c.utility, reverse=True)
        ]
        if owned:
            evaluator.close()
        return Recommendation(
            created=created,
            budget_bytes=budget_bytes,
            cost_before=cost_before,
            cost_after=cost_after,
            runtime_seconds=root.duration,
            optimizer_calls=evaluator.optimizer_calls - calls_start,
            rejected_for_regression=rejected,
        )

    # -- pipeline pieces --------------------------------------------------------

    def _emit_decision(
        self,
        action: str,
        reason: str,
        candidate: RankedCandidate,
        phase: str = "",
    ) -> None:
        """Journal one accept/reject transition of Algorithm 1."""
        index = candidate.index
        emit(
            AdvisorDecision(
                action=action,
                reason=reason,
                index=index.name,
                table=index.table,
                columns=tuple(index.columns),
                phase=phase,
                benefit=candidate.benefit,
                maintenance=candidate.maintenance,
                size_bytes=candidate.size_bytes,
                database=self.db.name,
            )
        )

    def _generator(self, evaluator: CostEvaluator) -> CandidateGenerator:
        if self.config.use_dataless_guidance:
            chooser = RangeColumnChooser(evaluator=evaluator)
        else:
            chooser = RangeColumnChooser(evaluator=None, stats_lookup=None)
        return CandidateGenerator(
            self.db.schema,
            self.db.stats,
            GeneratorConfig(
                join_parameter=self.config.join_parameter,
                max_index_width=self.config.max_index_width,
                merge_orders=self.config.merge_orders,
                ipp_relaxation_rows=self.config.ipp_relaxation_rows,
                switches=self.db.switches,
            ),
            range_chooser=chooser,
        )

    def _cpu_basis(self, query: WorkloadQuery, base_cost: float) -> float:
        """cpu_avg(q, ∅) from the monitor when available, else the
        estimated base cost (pure-estimation mode)."""
        if self.monitor is not None:
            stats = self.monitor.stats.get(query.normalized_sql)
            if stats is not None and stats.cpu_avg > 0:
                return stats.cpu_avg
        return default_cpu_basis(query, base_cost)

    def _covering_phase(
        self,
        evaluator: CostEvaluator,
        generator: CandidateGenerator,
        workload: Workload,
        selects: list[WorkloadQuery],
        selected: list[RankedCandidate],
        phases: dict[str, str],
        budget_bytes: int,
    ) -> tuple[list[RankedCandidate], dict[str, str]]:
        phase1_indexes = [c.index for c in selected]
        total_weight = max(1e-9, workload.total_weight)
        min_weight = self.config.covering_weight_fraction * total_weight

        covering_queries = []
        for query in selects:
            plan = evaluator.plan(query.sql, phase1_indexes)
            mode = try_covering_index(
                evaluator.analyze(query.sql),
                plan,
                replace(self.config.covering, min_weight=min_weight),
                weight=query.weight,
                schema=self.db.schema,
            )
            if mode == MODE_COVERING:
                covering_queries.append(
                    (query.normalized_sql, evaluator.analyze(query.sql), mode)
                )
        if not covering_queries:
            return selected, phases

        covering_candidates = generator.generate(covering_queries)
        # Drop covering candidates already selected in phase 1.
        existing = {c.index.name for c in selected}
        fresh = CandidateSet(
            orders=covering_candidates.orders,
            indexes=[
                idx for idx in covering_candidates.indexes
                if idx.name not in existing
            ],
            attribution=covering_candidates.attribution,
        )
        if not fresh.indexes:
            return selected, phases
        ranked2 = rank_candidates(
            evaluator, self.db, workload, fresh, self._cpu_basis
        )
        remaining = budget_bytes - sum(c.size_bytes for c in selected)
        extra = knapsack_select(ranked2, remaining)
        for candidate in extra:
            phases[candidate.index.name] = PHASE_COVERING
            self._emit_decision(
                "accepted", "covering_promoted", candidate, PHASE_COVERING
            )
        merged = selected + extra

        # A covering index may subsume a narrower phase-1 pick; drop
        # subsumed prefixes to reclaim budget.
        final: list[RankedCandidate] = []
        for candidate in merged:
            subsumed = any(
                candidate.index.is_prefix_of(other.index)
                for other in merged
                if other.index.name != candidate.index.name
            )
            if not subsumed:
                final.append(candidate)
            else:
                self._emit_decision(
                    "rejected",
                    "subsumed_by_covering",
                    candidate,
                    phases.get(candidate.index.name, PHASE_NARROW),
                )
        return final, phases

    def _validate(
        self,
        evaluator: CostEvaluator,
        workload: Workload,
        selected: list[RankedCandidate],
    ) -> tuple[list[RankedCandidate], list[Index]]:
        """Eq. 4: drop indexes until no query's *plan* regresses beyond λ3.

        Validation covers SELECT plans (the clone-replay catches optimizer
        plan regressions).  DML maintenance overhead is intentionally out
        of scope here: it is already charged against each index's utility
        via Eq. 8, and any nonzero maintenance would otherwise "regress" a
        cheap point-write by more than λ3 and veto every index on a
        written table.
        """
        rejected: list[Index] = []
        current = list(selected)
        for _ in range(len(selected) + 1):
            config = [c.index for c in current]
            worst: tuple[float, Optional[WorkloadQuery]] = (0.0, None)
            for query in workload:
                if query.is_dml:
                    continue
                base = evaluator.cost(query.sql, [])
                with_config = evaluator.cost(query.sql, config)
                if base <= 0:
                    continue
                regression = with_config / base - 1.0
                if regression > self.config.lambda3 and regression > worst[0]:
                    worst = (regression, query)
            if worst[1] is None:
                return current, rejected
            # Drop the lowest-utility index affecting the regressing query.
            query = worst[1]
            info = evaluator.analyze(query.sql)
            tables = set(info.bindings.values())
            affecting = [c for c in current if c.index.table in tables]
            if not affecting:
                return current, rejected
            victim = min(affecting, key=lambda c: c.utility)
            current = [c for c in current if c.index.name != victim.index.name]
            rejected.append(victim.index)
            self._emit_decision("rejected", "validation_regression", victim)
        return current, rejected

    def _improves_some_query(
        self,
        evaluator: CostEvaluator,
        workload: Workload,
        config: list[Index],
    ) -> bool:
        """Eq. 3: at least one query improves by at least λ2."""
        for query in workload:
            base = evaluator.cost(query.sql, [])
            if base <= 0:
                continue
            improved = evaluator.cost(query.sql, config)
            if improved <= (1.0 - self.config.lambda2) * base:
                return True
        return False
