"""Merging of partial orders (paper Sec. III-E).

``MergeCandidatesPairwise`` combines two strict partial orders
``(P, ≺_P)`` and ``(Q, ≺_Q)`` into one when the merge condition holds::

    C_merge := P ⊆ Q  ∧  ¬∃ a, b ∈ P : a ≺_P b ∧ b ≺_Q a

The result is the ordinal sum of P (with Q's order folded in) and the
leftover columns ``Q \\ P`` (keeping Q's internal order): the paper's
example merges ``<{col1, col2, col3}>`` with ``<{col2, col3}>`` into
``<{col2, col3}, {col1}>`` -- an index serving both source queries.

Two engineering refinements relative to the paper's formula, both
documented in DESIGN.md:

1. Within a P-partition we refine by Q's relative order (C_merge
   guarantees this refinement is conflict-free), so the merged order stays
   a linear-extension superset of *both* inputs.
2. We additionally require that no column of ``Q \\ P`` precede a column
   of ``P`` under ``≺_Q``; otherwise the merged index could not serve Q
   with P's columns as its prefix, defeating the merge's purpose.

``merge_partial_orders`` iterates pairwise merging to a fixpoint (Eq. 6).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .partial_order import PartialOrder

#: Safety cap on the per-table partial order set during fixpoint iteration.
MAX_ORDERS_PER_TABLE = 512


def merge_candidates_pairwise(
    p: PartialOrder, q: PartialOrder
) -> Optional[PartialOrder]:
    """Merge P into Q per Sec. III-E; None when ``C_merge`` fails."""
    if p.table != q.table:
        return None
    p_cols = p.columns
    q_cols = q.columns
    if not p_cols <= q_cols:
        return None

    # No conflicting orders among P's columns.
    for a in p_cols:
        for b in p_cols:
            if a != b and p.precedes(a, b) and q.precedes(b, a):
                return None
    # Refinement guard: Q may not demand a non-P column before a P column.
    rest = q_cols - p_cols
    for a in rest:
        for b in p_cols:
            if q.precedes(a, b):
                return None

    # Head: P's partitions, each refined by Q's partition ranks.
    head: list[frozenset[str]] = []
    for part in p.partitions:
        by_q_rank: dict[int, set[str]] = {}
        for col in part:
            by_q_rank.setdefault(q.partition_index(col), set()).add(col)
        for rank in sorted(by_q_rank):
            head.append(frozenset(by_q_rank[rank]))

    # Tail: Q \ P in Q's partition order (ordinal sum).
    tail: list[frozenset[str]] = []
    for part in q.partitions:
        leftover = part & rest
        if leftover:
            tail.append(frozenset(leftover))

    return PartialOrder(p.table, tuple(head + tail))


def merge_partial_orders(
    orders: Iterable[PartialOrder],
    max_orders: int = MAX_ORDERS_PER_TABLE,
) -> set[PartialOrder]:
    """Fixpoint pairwise merging (Eq. 6): iterate
    ``PO_{n+1} = {merge(X, Y) | X, Y ∈ PO_n}`` until stable.

    Self-merges keep every original order in the set, so the result is the
    input plus every reachable merged order.  The per-table *max_orders*
    cap bounds pathological workloads; hitting it stops expansion early
    (the already-merged orders remain valid candidates).
    """
    current: set[PartialOrder] = set(orders)
    while True:
        produced: set[PartialOrder] = set()
        # Iterate in sorted order so results do not depend on the process
        # hash seed (set iteration order) when the cap cuts expansion.
        snapshot = sorted(current, key=str)
        for p in snapshot:
            for q in snapshot:
                if p is q:
                    continue
                merged = merge_candidates_pairwise(p, q)
                if merged is not None and merged not in current:
                    produced.add(merged)
                    if len(current) + len(produced) >= max_orders:
                        return current | produced
        if not produced:
            return current
        current |= produced


def merge_by_table(
    orders: Iterable[PartialOrder],
    max_orders: int = MAX_ORDERS_PER_TABLE,
) -> set[PartialOrder]:
    """Run the merge fixpoint independently per table."""
    by_table: dict[str, set[PartialOrder]] = {}
    for order in orders:
        by_table.setdefault(order.table, set()).add(order)
    out: set[PartialOrder] = set()
    for table_orders in by_table.values():
        out |= merge_partial_orders(table_orders, max_orders)
    return out
