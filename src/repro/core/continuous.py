"""Continuous index tuning (paper Sec. II-B, VI-D).

AIM achieves continuous tuning "naïvely" by running the advisor
periodically -- its runtime is low enough that this is practical.  The
tuner also detects and drops unused and prefix-redundant indexes
("It can also detect and drop (parts of) unused indexes", Sec. I-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Index
from ..engine import Database
from ..obs import (
    CycleEnd,
    CycleStart,
    DdlApplied,
    WorkloadDigest,
    capture_now,
    emit,
    get_registry,
)
from ..optimizer import CostEvaluator
from ..workload import (
    SelectionPolicy,
    Workload,
    WorkloadMonitor,
    select_representative_workload,
)
from .advisor import AimAdvisor, AimConfig
from .explain import Recommendation


def find_unused_indexes(db: Database, workload: Workload) -> list[Index]:
    """Materialized indexes no plan of *workload* uses."""
    evaluator = CostEvaluator(db, include_schema_indexes=True)
    used: set[str] = set()
    for query in workload:
        plan = evaluator.plan(query.sql)
        used |= plan.used_indexes
    return [
        idx
        for idx in db.schema.indexes(include_dataless=False)
        if idx.name not in used
    ]


def find_prefix_redundant_indexes(db: Database) -> list[Index]:
    """Indexes whose key is a strict prefix of a wider index's key.

    The wider index can answer every query the narrower one can, so the
    narrower index is pure maintenance overhead ("drop (parts of) unused
    indexes").
    """
    indexes = db.schema.indexes(include_dataless=False)
    redundant = []
    for narrow in indexes:
        for wide in indexes:
            if narrow.name != wide.name and narrow.is_prefix_of(wide):
                redundant.append(narrow)
                break
    return redundant


@dataclass
class TuningCycleResult:
    """Outcome of one continuous tuning cycle."""

    recommendation: Optional[Recommendation] = None
    created: list[Index] = field(default_factory=list)
    dropped: list[Index] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.created or self.dropped)


class ContinuousTuner:
    """Periodically re-tunes a database from live monitor statistics.

    One ``run_cycle()`` call corresponds to one configurable tuning
    interval in production: select the representative workload from the
    monitor, recommend changes *relative to the current configuration*,
    apply them, and garbage-collect unused indexes.
    """

    def __init__(
        self,
        db: Database,
        budget_bytes: int,
        config: AimConfig = AimConfig(),
        monitor: Optional[WorkloadMonitor] = None,
        selection: SelectionPolicy = SelectionPolicy(),
        drop_unused: bool = True,
    ):
        self.db = db
        self.budget_bytes = budget_bytes
        self.monitor = monitor or WorkloadMonitor()
        self.selection = selection
        self.drop_unused = drop_unused
        # Continuous mode always evaluates against the current config.
        self.config = AimConfig(
            join_parameter=config.join_parameter,
            max_index_width=config.max_index_width,
            merge_orders=config.merge_orders,
            use_dataless_guidance=config.use_dataless_guidance,
            ipp_relaxation_rows=config.ipp_relaxation_rows,
            covering=config.covering,
            covering_phase=config.covering_phase,
            covering_weight_fraction=config.covering_weight_fraction,
            lambda2=config.lambda2,
            lambda3=config.lambda3,
            validate=config.validate,
            relative_to_current=True,
        )
        self.history: list[TuningCycleResult] = []

    def run_cycle(self, workload: Optional[Workload] = None) -> TuningCycleResult:
        """One tuning interval: recommend, apply, clean up."""
        if workload is None:
            workload = select_representative_workload(self.monitor, self.selection)
        emit(
            CycleStart(
                database=self.db.name,
                queries=len(workload),
                budget_bytes=self.budget_bytes,
            )
        )
        if self.monitor.stats:
            emit(
                WorkloadDigest(
                    database=self.db.name,
                    window=len(self.history),
                    **self.monitor.digest(),
                )
            )
        result = TuningCycleResult()
        if len(workload):
            advisor = AimAdvisor(self.db, self.config, self.monitor)
            remaining = self.budget_bytes - self.db.total_secondary_index_bytes()
            recommendation = advisor.recommend(workload, max(0, remaining))
            result.recommendation = recommendation
            for index in recommendation.indexes:
                if not self.db.schema.has_index(index):
                    self.db.create_index(index.materialized())
                    result.created.append(index)
                    self._emit_ddl("create", index)
        if self.drop_unused and workload is not None and len(workload):
            for index in find_prefix_redundant_indexes(self.db):
                self.db.drop_index(index)
                result.dropped.append(index)
                self._emit_ddl("drop", index)
            for index in find_unused_indexes(self.db, workload):
                self.db.drop_index(index)
                result.dropped.append(index)
                self._emit_ddl("drop", index)
        self.history.append(result)
        recommendation = result.recommendation
        emit(
            CycleEnd(
                database=self.db.name,
                created=tuple(idx.name for idx in result.created),
                dropped=tuple(idx.name for idx in result.dropped),
                cost_before=recommendation.cost_before if recommendation else 0.0,
                cost_after=recommendation.cost_after if recommendation else 0.0,
                improvement=recommendation.improvement if recommendation else 0.0,
                optimizer_calls=(
                    recommendation.optimizer_calls if recommendation else 0
                ),
            )
        )
        registry = get_registry()
        registry.counter(
            "tuner.cycles", "completed continuous-tuning cycles"
        ).inc(1, database=self.db.name)
        registry.gauge(
            "tuner.last_improvement",
            "workload-cost improvement of the most recent cycle",
        ).set(
            recommendation.improvement if recommendation else 0.0,
            database=self.db.name,
        )
        capture_now()
        return result

    def _emit_ddl(self, action: str, index: Index) -> None:
        columns = ", ".join(index.columns)
        if action == "create":
            statement = f"CREATE INDEX {index.name} ON {index.table} ({columns})"
        else:
            statement = f"DROP INDEX {index.name} ON {index.table}"
        emit(
            DdlApplied(
                action=action,
                index=index.name,
                table=index.table,
                columns=tuple(index.columns),
                database=self.db.name,
                statement=statement,
            )
        )
