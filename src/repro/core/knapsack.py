"""Index selection as a knapsack problem (paper Sec. III-F).

"Index selection can then be modeled as a knapsack problem where index
candidates are evaluated in the order of their overall utility per unit
storage overhead while not violating the budget allocated for indexes."

The greedy density order is the paper's method; an exact DP solver is
provided for small instances (tests, ablations).
"""

from __future__ import annotations

from typing import Sequence

from .ranking import RankedCandidate


def knapsack_select(
    candidates: Sequence[RankedCandidate],
    budget_bytes: int,
    prune_prefixes: bool = True,
) -> list[RankedCandidate]:
    """Greedy selection by utility density under a storage budget.

    Candidates carrying per-query gains (``query_gains``) are selected by
    *marginal* coverage: once a query's gain is delivered by a chosen
    index, equivalent orderings of the same columns stop counting it --
    so merged-order inheritance (Sec. III-F) never double-builds storage.
    Candidates without per-query gains fall back to their static utility.

    Non-positive-(marginal-)utility candidates never enter.  With
    *prune_prefixes* a candidate whose key is a prefix of an already
    selected index on the same table (or vice versa) is skipped.
    """
    selected: list[RankedCandidate] = []
    remaining = max(0, budget_bytes)
    pool = [c for c in candidates if c.size_bytes <= max(0, budget_bytes)]
    # Delivery is tracked per (query, table): a join query draws gains
    # from indexes on several tables, each accounted independently.
    delivered: dict[tuple[str, str], float] = {}

    def marginal_utility(candidate: RankedCandidate) -> float:
        if not candidate.query_gains:
            return candidate.utility
        table = candidate.index.table
        gain = sum(
            max(0.0, g - delivered.get((key, table), 0.0))
            for key, g in candidate.query_gains.items()
        )
        return gain - candidate.maintenance

    while pool:
        best = None
        best_key = None
        for candidate in pool:
            utility = marginal_utility(candidate)
            if utility <= 0 or candidate.size_bytes > remaining:
                continue
            density = utility / max(1, candidate.size_bytes)
            key = (density, -len(candidate.index.columns), candidate.index.name)
            if best is None or key > best_key:
                best, best_key = candidate, key
        if best is None:
            return selected
        pool.remove(best)
        if prune_prefixes and any(
            best.index.is_prefix_of(chosen.index)
            or chosen.index.is_prefix_of(best.index)
            for chosen in selected
        ):
            continue
        selected.append(best)
        remaining -= best.size_bytes
        table = best.index.table
        for key, gain in best.query_gains.items():
            delivered[(key, table)] = max(delivered.get((key, table), 0.0), gain)
    return selected


def knapsack_exact(
    candidates: Sequence[RankedCandidate],
    budget_bytes: int,
    granularity: int = 1 << 16,
) -> list[RankedCandidate]:
    """Exact 0/1 knapsack via DP over discretized sizes.

    Sizes are rounded *up* to ``granularity`` so the solution never
    violates the true budget.  Intended for small candidate sets.
    """
    items = [c for c in candidates if c.utility > 0]
    capacity = budget_bytes // granularity
    if capacity <= 0 or not items:
        return []
    weights = [max(1, -(-c.size_bytes // granularity)) for c in items]
    # dp[w] = (best utility, chosen bitmask-ish list)
    dp: list[tuple[float, tuple[int, ...]]] = [(0.0, ())] * (capacity + 1)
    for i, item in enumerate(items):
        weight = weights[i]
        for w in range(capacity, weight - 1, -1):
            cand_value = dp[w - weight][0] + item.utility
            if cand_value > dp[w][0]:
                dp[w] = (cand_value, dp[w - weight][1] + (i,))
    best = max(dp, key=lambda entry: entry[0])
    return [items[i] for i in best[1]]
