"""Sorted secondary index structure.

A :class:`SortedIndex` emulates a B+ tree with a sorted array of
``(key_tuple, row_id)`` entries and binary search.  It supports the access
patterns the executor needs: equality/prefix probes, bounded range scans
and full in-order scans.  NULLs sort before every non-NULL value
(MySQL/InnoDB semantics).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional, Sequence


class _KeyWrapper:
    """Total-order wrapper making heterogeneous/NULL keys comparable.

    Values compare by (type rank, value): NULL < numbers < strings.  This
    keeps bisect happy on mixed data without custom comparators everywhere.
    """

    __slots__ = ("rank", "value")

    def __init__(self, value: Any):
        if value is None:
            self.rank, self.value = 0, 0
        elif isinstance(value, bool):
            self.rank, self.value = 1, int(value)
        elif isinstance(value, (int, float)):
            self.rank, self.value = 1, value
        else:
            self.rank, self.value = 2, str(value)

    def __lt__(self, other: "_KeyWrapper") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _KeyWrapper)
            and self.rank == other.rank
            and self.value == other.value
        )

    def __le__(self, other: "_KeyWrapper") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return hash((self.rank, self.value))


def wrap_key(values: Sequence[Any]) -> tuple[_KeyWrapper, ...]:
    """Wrap a key tuple for total-order comparison."""
    return tuple(_KeyWrapper(v) for v in values)


class SortedIndex:
    """A sorted (key, row_id) mapping emulating a B+ tree.

    The structure intentionally keeps a flat sorted list: at reproduction
    scale (<= a few million rows) bisect operations dominate and behave
    exactly like tree descents for cost accounting purposes.
    """

    def __init__(self, n_key_columns: int):
        self.n_key_columns = n_key_columns
        self._entries: list[tuple[tuple, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, key: Sequence[Any], row_id: int) -> None:
        """Insert an entry (duplicates allowed; ties broken by row id)."""
        entry = (wrap_key(key), row_id)
        bisect.insort(self._entries, entry)

    def delete(self, key: Sequence[Any], row_id: int) -> bool:
        """Remove an entry; returns False if it was not present."""
        entry = (wrap_key(key), row_id)
        pos = bisect.bisect_left(self._entries, entry)
        if pos < len(self._entries) and self._entries[pos] == entry:
            del self._entries[pos]
            return True
        return False

    def scan_prefix(
        self,
        prefix: Sequence[Any],
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[tuple, int]]:
        """Scan entries matching an equality *prefix*, optionally bounded
        on the next key column by [low, high].

        Yields ``(raw_key_wrappers, row_id)`` pairs in key order.
        """
        wrapped_prefix = wrap_key(prefix)
        k = len(wrapped_prefix)
        wrapped_low = _KeyWrapper(low) if low is not None else None
        wrapped_high = _KeyWrapper(high) if high is not None else None
        if wrapped_low is not None:
            # Seek directly to the low bound within the prefix range.
            start = bisect.bisect_left(
                self._entries, (wrapped_prefix + (wrapped_low,), -1)
            )
        else:
            start = bisect.bisect_left(self._entries, (wrapped_prefix, -1))
        for pos in range(start, len(self._entries)):
            key, row_id = self._entries[pos]
            if key[:k] != wrapped_prefix:
                break
            if k < len(key):
                bound_val = key[k]
                if wrapped_low is not None:
                    if bound_val < wrapped_low:
                        continue
                    if not low_inclusive and bound_val == wrapped_low:
                        continue
                if wrapped_high is not None:
                    if wrapped_high < bound_val:
                        break
                    if not high_inclusive and bound_val == wrapped_high:
                        break
            yield key, row_id

    def scan_all(self, reverse: bool = False) -> Iterator[tuple[tuple, int]]:
        """Full scan in key order (or reverse key order)."""
        if reverse:
            yield from reversed(self._entries)
        else:
            yield from self._entries

    def clear(self) -> None:
        self._entries.clear()
