"""Cost parameters and storage engine profiles.

Costs are expressed in abstract *cost units* that we interpret as CPU
seconds on the reference machine (the paper's ``cpu_avg`` includes
CPU_IOWAIT, so I/O work is convertible to CPU seconds; Sec. III-C).

Two storage engine profiles mirror the paper's deployment targets
(Sec. VI-A): InnoDB (B+ trees; symmetric read/write page costs) and
RocksDB (LSM trees; cheaper writes via the memtable, slightly costlier
point reads across levels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostParams:
    """Tunable unit costs for the analytical cost model.

    Attributes:
        page_size: bytes per page.
        seq_page_cost: cost of one sequentially read page.
        random_page_cost: cost of one randomly sought page (PK lookups,
            inner index probes).  High for spinning disks, lower for SSD.
        cpu_tuple_cost: per-row processing cost.
        cpu_operator_cost: per-predicate-evaluation cost.
        cpu_index_tuple_cost: per-index-entry processing cost.
        write_page_cost: cost of writing one page (index maintenance).
        write_amplification: engine-level multiplier on index maintenance
            (LSM compaction amortizes writes; B+ trees pay in place).
        sort_unit_cost: multiplier on ``n log2 n`` comparison work.
    """

    page_size: int = 16384
    seq_page_cost: float = 1.0
    random_page_cost: float = 2.0
    cpu_tuple_cost: float = 0.1
    cpu_operator_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.05
    write_page_cost: float = 2.0
    write_amplification: float = 1.0
    sort_unit_cost: float = 0.01

    def pages_for(self, rows: int, row_width: int) -> int:
        """Number of pages needed to store *rows* rows of *row_width* bytes."""
        if rows <= 0:
            return 0
        rows_per_page = max(1, self.page_size // max(1, row_width))
        return max(1, math.ceil(rows / rows_per_page))

    def btree_height(self, rows: int) -> int:
        """Approximate B+tree height (number of non-leaf levels touched)."""
        if rows <= 1:
            return 1
        return max(1, math.ceil(math.log(max(rows, 2), 128)))


#: InnoDB-like profile on flash storage (the deployment the paper
#: describes): random seeks ~2x sequential pages, row evaluation dominates
#: small scans -- the unit ratios mirror MySQL's io_block_read_cost=1.0 /
#: row_evaluate_cost=0.1 defaults.
INNODB = CostParams()

#: Alias making the SSD assumption explicit at call sites.
INNODB_SSD = INNODB

#: InnoDB on spinning disks: random seeks are much more expensive, which
#: lowers the covering-index seek threshold (Sec. III-D: "this threshold
#: is high for fast storage media such as SSDs").
INNODB_HDD = CostParams(random_page_cost=8.0)

#: RocksDB-like profile: cheap writes (memtable + compaction amortization),
#: slightly more expensive random reads (level probes).
ROCKSDB = CostParams(
    random_page_cost=2.5,
    write_page_cost=0.6,
    write_amplification=0.5,
)
