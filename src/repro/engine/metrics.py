"""Execution accounting.

Every executor run produces an :class:`ExecutionMetrics`: the raw counters
a DBMS exposes per statement (rows read / rows sent, page I/O, index
maintenance work).  The workload monitor converts these into the paper's
quantities: ``cpu_avg`` (Sec. III-C, including IOWAIT) and the discarded
data ratio ``ddr`` (Sec. III-A2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from .pages import CostParams


@dataclass
class ExecutionMetrics:
    """Mutable per-statement counters, accumulated by executor operators."""

    rows_read: int = 0          # rows fetched from base tables / indexes
    rows_sent: int = 0          # rows returned to the client
    seq_pages: int = 0          # sequentially read pages
    random_pages: int = 0       # randomly sought pages (PK lookups, probes)
    index_entries_read: int = 0
    index_entries_written: int = 0  # maintenance work on DML
    pages_written: int = 0
    sort_rows: int = 0          # rows passed through explicit sorts
    predicate_evals: int = 0

    def cpu_seconds(self, params: CostParams) -> float:
        """Total cost in cost units (interpreted as CPU seconds incl. IOWAIT)."""
        sort_cost = 0.0
        if self.sort_rows > 1:
            sort_cost = params.sort_unit_cost * self.sort_rows * math.log2(self.sort_rows)
        return (
            self.seq_pages * params.seq_page_cost
            + self.random_pages * params.random_page_cost
            + self.rows_read * params.cpu_tuple_cost
            + self.index_entries_read * params.cpu_index_tuple_cost
            + self.predicate_evals * params.cpu_operator_cost
            + self.index_entries_written
            * params.write_page_cost
            * params.write_amplification
            + self.pages_written * params.write_page_cost
            + sort_cost
        )

    def discarded_data_ratio(self) -> float:
        """``rows_sent / rows_read`` clamped to [0, 1] (paper Sec. III-A2:
        "the ratio of data sent to data read").  1.0 means every row read
        was returned; values near 0 mean almost all I/O was wasted."""
        if self.rows_read <= 0:
            return 1.0
        return min(1.0, max(0.0, self.rows_sent / self.rows_read))

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (telemetry export, stats export)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate counters from another metrics object."""
        self.rows_read += other.rows_read
        self.rows_sent += other.rows_sent
        self.seq_pages += other.seq_pages
        self.random_pages += other.random_pages
        self.index_entries_read += other.index_entries_read
        self.index_entries_written += other.index_entries_written
        self.pages_written += other.pages_written
        self.sort_rows += other.sort_rows
        self.predicate_evals += other.predicate_evals
