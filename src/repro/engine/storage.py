"""Row storage with index maintenance.

Each :class:`TableStorage` keeps rows as dicts addressed by a synthetic
row id, a clustered primary key index, and one :class:`SortedIndex` per
materialized secondary index.  All mutation paths account their index
maintenance work in the supplied :class:`ExecutionMetrics`, which is what
Eq. 8's ``cost_u`` is measured from.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional

from ..catalog import Index, Table
from .btree import SortedIndex
from .metrics import ExecutionMetrics


class StorageError(RuntimeError):
    """Raised on invalid storage operations."""


class TableStorage:
    """In-memory row store for one table."""

    def __init__(self, table: Table):
        self.table = table
        self.rows: dict[int, dict[str, Any]] = {}
        self._next_id = 0
        self.pk_index = SortedIndex(len(table.primary_key))
        self.secondary: dict[str, SortedIndex] = {}
        self.secondary_meta: dict[str, Index] = {}

    # -- row level operations -------------------------------------------------

    def insert_row(
        self, row: Mapping[str, Any], metrics: Optional[ExecutionMetrics] = None
    ) -> int:
        """Insert a row; maintains the PK and every secondary index."""
        stored = {name: row.get(name) for name in self.table.column_names}
        row_id = self._next_id
        self._next_id += 1
        self.rows[row_id] = stored
        self.pk_index.insert(self._pk_key(stored), row_id)
        for name, index in self.secondary.items():
            index.insert(self._index_key(self.secondary_meta[name], stored), row_id)
        if metrics is not None:
            metrics.index_entries_written += 1 + len(self.secondary)
        return row_id

    def delete_row(
        self, row_id: int, metrics: Optional[ExecutionMetrics] = None
    ) -> None:
        """Delete a row by id; maintains all indexes."""
        stored = self.rows.pop(row_id, None)
        if stored is None:
            raise StorageError(f"no row {row_id} in table {self.table.name}")
        self.pk_index.delete(self._pk_key(stored), row_id)
        for name, index in self.secondary.items():
            index.delete(self._index_key(self.secondary_meta[name], stored), row_id)
        if metrics is not None:
            metrics.index_entries_written += 1 + len(self.secondary)

    def update_row(
        self,
        row_id: int,
        changes: Mapping[str, Any],
        metrics: Optional[ExecutionMetrics] = None,
    ) -> None:
        """Update columns of a row; only affected indexes pay maintenance."""
        stored = self.rows.get(row_id)
        if stored is None:
            raise StorageError(f"no row {row_id} in table {self.table.name}")
        touched = set(changes)
        written = 0
        if touched & set(self.table.primary_key):
            self.pk_index.delete(self._pk_key(stored), row_id)
            written += 1
        affected = [
            name
            for name, meta in self.secondary_meta.items()
            if touched & set(meta.columns)
        ]
        for name in affected:
            self.secondary[name].delete(
                self._index_key(self.secondary_meta[name], stored), row_id
            )
        stored.update({k: v for k, v in changes.items() if self.table.has_column(k)})
        if touched & set(self.table.primary_key):
            self.pk_index.insert(self._pk_key(stored), row_id)
        for name in affected:
            self.secondary[name].insert(
                self._index_key(self.secondary_meta[name], stored), row_id
            )
            written += 1
        if metrics is not None:
            # One in-place row write even when no index key changed.
            metrics.index_entries_written += max(1, written * 2)

    def get_row(self, row_id: int) -> dict[str, Any]:
        return self.rows[row_id]

    def all_row_ids(self) -> Iterator[int]:
        return iter(self.rows.keys())

    @property
    def row_count(self) -> int:
        return len(self.rows)

    # -- index management ------------------------------------------------------

    def build_index(self, index: Index) -> SortedIndex:
        """Materialize a secondary index over the current rows; idempotent."""
        if index.table != self.table.name:
            raise StorageError(
                f"index targets {index.table}, storage is {self.table.name}"
            )
        if index.name in self.secondary:
            return self.secondary[index.name]
        structure = SortedIndex(index.width)
        for row_id, row in self.rows.items():
            structure.insert(self._index_key(index, row), row_id)
        self.secondary[index.name] = structure
        self.secondary_meta[index.name] = index
        return structure

    def drop_index(self, index: Index | str) -> None:
        name = index if isinstance(index, str) else index.name
        self.secondary.pop(name, None)
        self.secondary_meta.pop(name, None)

    def get_index(self, name: str) -> Optional[SortedIndex]:
        return self.secondary.get(name)

    def column_values(self, column: str) -> list:
        """All values of one column (ANALYZE input)."""
        return [row.get(column) for row in self.rows.values()]

    # -- key extraction ----------------------------------------------------------

    def _pk_key(self, row: Mapping[str, Any]) -> tuple:
        return tuple(row.get(c) for c in self.table.primary_key)

    def _index_key(self, index: Index, row: Mapping[str, Any]) -> tuple:
        # Secondary keys append the PK for uniqueness / ordering stability.
        return tuple(row.get(c) for c in index.columns) + self._pk_key(row)
