"""The Database facade: schema + statistics + (optional) row storage.

Two operating modes, matching how the paper's experiments use databases:

* **stats-only** -- no row data; the optimizer works purely from the
  statistics catalog.  This is the mode for the estimated-cost experiments
  (Fig 4/5) and for every dataless-index what-if evaluation.
* **stored** -- rows are materialized and the executor can run statements.
  Used by the replay experiments (Fig 3/6) and integration tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from ..catalog import Index, Schema, Table
from ..stats import StatsCatalog, TableStats, analyze_table
from .pages import INNODB, CostParams
from .storage import TableStorage


def _default_switches():
    # Imported lazily to keep engine/ free of an optimizer dependency at
    # import time (optimizer imports engine.pages).
    from ..optimizer.switches import DEFAULT_SWITCHES

    return DEFAULT_SWITCHES


class Database:
    """A database instance the advisor and executor operate on."""

    def __init__(
        self,
        schema: Schema,
        params: CostParams = INNODB,
        with_storage: bool = True,
        name: str = "db",
    ):
        self.name = name
        self.schema = schema
        self.params = params
        self.stats = StatsCatalog()
        self.switches = _default_switches()
        self.storage: Optional[dict[str, TableStorage]] = None
        if with_storage:
            self.storage = {t.name: TableStorage(t) for t in schema}

    @classmethod
    def from_tables(
        cls,
        tables: Iterable[Table],
        params: CostParams = INNODB,
        with_storage: bool = True,
        name: str = "db",
    ) -> "Database":
        return cls(Schema.from_tables(tables), params, with_storage, name)

    # -- data loading -------------------------------------------------------

    def load_rows(self, table: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk load rows into a stored table; returns the number loaded."""
        storage = self._storage_for(table)
        count = 0
        for row in rows:
            storage.insert_row(row)
            count += 1
        return count

    def analyze(self, tables: Optional[Iterable[str]] = None) -> None:
        """Refresh the statistics catalog from stored data (ANALYZE TABLE)."""
        if self.storage is None:
            raise RuntimeError("analyze() requires a stored database")
        names = list(tables) if tables is not None else list(self.schema.tables)
        for name in names:
            storage = self._storage_for(name)
            by_column = {
                col: storage.column_values(col)
                for col in storage.table.column_names
            }
            self.stats.set_table(name, analyze_table(by_column))

    def set_stats(self, table: str, stats: TableStats) -> None:
        """Install synthetic statistics (stats-only benchmarks)."""
        self.stats.set_table(table, stats)

    # -- index DDL -----------------------------------------------------------

    def create_index(self, index: Index) -> Index:
        """Create an index.  Dataless indexes never touch storage."""
        registered = self.schema.add_index(index)
        if not index.dataless and self.storage is not None:
            self._storage_for(index.table).build_index(index)
        return registered

    def drop_index(self, index: Index | str) -> None:
        name = index if isinstance(index, str) else index.name
        existing = self.schema.get_index(name)
        self.schema.drop_index(name)
        if existing is not None and self.storage is not None:
            self._storage_for(existing.table).drop_index(name)

    def drop_all_secondary_indexes(self) -> list[Index]:
        """Drop every secondary index; returns what was dropped.

        This is the starting state of the bootstrapping experiments
        (Fig 3: "secondary indexes dropped").
        """
        dropped = list(self.schema.indexes())
        for index in dropped:
            self.drop_index(index)
        return dropped

    def clear_dataless(self) -> None:
        """End a what-if session: remove all dataless indexes."""
        self.schema.clear_dataless()

    # -- size accounting ----------------------------------------------------

    def index_size_bytes(self, index: Index) -> int:
        """Estimated on-disk size of an index from current statistics."""
        table = self.schema.table(index.table)
        rows = self.stats.row_count(index.table)
        fill_factor = 0.75   # b-tree pages are ~3/4 full in steady state
        return int(rows * index.entry_width(table) / fill_factor)

    def total_secondary_index_bytes(self, include_dataless: bool = False) -> int:
        return sum(
            self.index_size_bytes(idx)
            for idx in self.schema.indexes(include_dataless=include_dataless)
        )

    def table_size_bytes(self, table: str) -> int:
        rows = self.stats.row_count(table)
        return rows * self.schema.table(table).row_width

    # -- cloning --------------------------------------------------------------

    def stats_clone(self, name: Optional[str] = None) -> "Database":
        """A stats-only clone sharing statistics but owning its index set.

        This is the cheap clone advisors use for what-if evaluation: index
        DDL on the clone never affects the production database.
        """
        clone = Database(
            self.schema.copy(),
            self.params,
            with_storage=False,
            name=name or f"{self.name}-clone",
        )
        clone.stats = self.stats
        clone.switches = self.switches
        return clone

    def full_clone(self, name: Optional[str] = None) -> "Database":
        """A deep clone with copied rows and rebuilt indexes (MyShadow)."""
        if self.storage is None:
            return self.stats_clone(name)
        clone = Database(
            self.schema.copy(),
            self.params,
            with_storage=True,
            name=name or f"{self.name}-shadow",
        )
        clone.stats = self.stats
        for table_name, storage in self.storage.items():
            target = clone._storage_for(table_name)
            for row in storage.rows.values():
                target.insert_row(dict(row))
        for index in clone.schema.indexes(include_dataless=False):
            clone._storage_for(index.table).build_index(index)
        return clone

    # -- internals ----------------------------------------------------------

    def _storage_for(self, table: str) -> TableStorage:
        if self.storage is None:
            raise RuntimeError(f"database {self.name} has no storage")
        try:
            return self.storage[table]
        except KeyError:
            raise KeyError(f"no table named {table!r}") from None
