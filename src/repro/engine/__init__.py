"""Storage engine substrate: cost params, B-tree emulation, row storage."""

from .btree import SortedIndex
from .engine import Database
from .metrics import ExecutionMetrics
from .pages import INNODB, INNODB_HDD, INNODB_SSD, ROCKSDB, CostParams
from .storage import StorageError, TableStorage

__all__ = [
    "Database",
    "SortedIndex",
    "TableStorage",
    "StorageError",
    "ExecutionMetrics",
    "CostParams",
    "INNODB",
    "INNODB_SSD",
    "INNODB_HDD",
    "ROCKSDB",
]
