"""Command-line index advisor.

Feed it a schema (CREATE TABLE script) and a workload (SQL statements,
optionally weighted), get back AIM's recommendation as CREATE INDEX
statements::

    python -m repro.cli --schema schema.sql --workload workload.sql \\
        --budget 2GiB --rows orders=5000000 --rows users=200000

Subcommands (the bare flag form above implies ``advise``):

* ``advise`` -- run an advisor; ``--trace FILE.json`` additionally writes
  a Chrome ``trace_event`` file of the run (load in chrome://tracing),
  and ``--format json`` output carries a ``telemetry`` block.
* ``obs-report FILE`` -- summarize a previously written trace/telemetry
  JSON (see ``docs/OBSERVABILITY.md``).
* ``explain`` -- print the optimizer plan for each workload statement;
  with ``--analyze`` the statements are *executed* against synthesized
  rows and each plan node shows estimated vs. actual rows with its
  Q-error (EXPLAIN ANALYZE).
* ``fleet-report JOURNAL.jsonl`` -- render the fleet health report
  (decision audit, regression timeline, digest time series, top
  estimation errors) from a decision journal written by an instrumented
  run; ``--json`` emits the structured sections.
* ``fuzz`` -- run the deterministic workload fuzzer and differential /
  metamorphic oracles of :mod:`repro.qa` (``--seed``, ``--iters``,
  ``--oracles``, ``--shrink``); failing cases are minimized and written
  to ``qa_failures/`` and re-run with ``--replay FILE``.  See
  ``docs/TESTING.md``.
* ``top`` -- live dashboard over the status snapshots an instrumented
  run publishes (``advise`` publishes them automatically; ``--once``
  prints a single frame, ``--serve PORT`` exposes the JSON over HTTP).

``advise`` additionally takes ``--profile FILE`` to run the sampling
profiler and write collapsed stacks (``flamegraph.pl`` input), and
``--status FILE`` to publish dashboard snapshots somewhere other than
the default path ``repro top`` watches.

Workload file format: statements separated by ``;``.  A comment line
``-- weight: <number>`` immediately before a statement sets its weight
(execution frequency); the default weight is 1.

Without row data the advisor runs on *synthesized* statistics (row
counts from ``--rows``/``--default-rows``, NDV heuristics from types and
column names).  Treat the output as a first-pass recommendation and
re-run against ANALYZE-backed statistics for production use.
"""

from __future__ import annotations

import argparse
import json
import random
import re
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from .baselines import ALL_ALGORITHMS, AimAlgorithm
from .catalog import Column, Table, TypeKind
from .core import AimAdvisor, AimConfig
from .engine import Database, INNODB, INNODB_HDD, ROCKSDB
from .executor import Executor, render_explain_analyze
from .obs import (
    MetricsSnapshotBus,
    default_status_path,
    disable_profiler,
    enable_profiler,
    get_tracer,
    profile,
    read_events,
    set_bus,
    telemetry_snapshot,
)
from .obs.fleet_report import fleet_report_data, render_fleet_report
from .obs.report import render_report
from .obs.top import run_top
from .sqlparser.ddl import parse_ddl
from .stats import SyntheticColumn, synthesize_table
from .workload import Workload, WorkloadQuery

_ENGINES = {"innodb": INNODB, "rocksdb": ROCKSDB, "hdd": INNODB_HDD}

_SIZE_UNITS = {
    "": 1, "B": 1,
    "K": 1 << 10, "KB": 1 << 10, "KIB": 1 << 10,
    "M": 1 << 20, "MB": 1 << 20, "MIB": 1 << 20,
    "G": 1 << 30, "GB": 1 << 30, "GIB": 1 << 30,
    "T": 1 << 40, "TB": 1 << 40, "TIB": 1 << 40,
}


def parse_size(text: str) -> int:
    """Parse a human size like ``10GiB``, ``500MB`` or ``1048576``."""
    match = re.fullmatch(r"\s*([0-9]+(?:\.[0-9]+)?)\s*([A-Za-z]*)\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}")
    value, unit = match.groups()
    unit_key = unit.upper()
    if unit_key not in _SIZE_UNITS:
        raise argparse.ArgumentTypeError(f"unknown size unit {unit!r}")
    return int(float(value) * _SIZE_UNITS[unit_key])


def parse_workload_file(text: str) -> Workload:
    """Split a SQL script into weighted statements.

    ``-- weight: N`` comment lines annotate the following statement.
    """
    queries: list[WorkloadQuery] = []
    pending_weight = 1.0
    buffer: list[str] = []

    def flush() -> None:
        nonlocal pending_weight
        sql = "\n".join(buffer).strip()
        buffer.clear()
        if not sql:
            return
        queries.append(
            WorkloadQuery(sql, pending_weight, name=f"q{len(queries) + 1}")
        )
        pending_weight = 1.0

    for raw_line in text.splitlines():
        line = raw_line.strip()
        weight_match = re.match(r"--\s*weight:\s*([0-9.]+)", line, re.I)
        if weight_match:
            pending_weight = float(weight_match.group(1))
            continue
        if line.startswith("--"):
            continue
        while ";" in line:
            head, line = line.split(";", 1)
            buffer.append(head)
            flush()
            line = line.strip()
        if line:
            buffer.append(line)
    flush()
    return Workload(queries, name="cli")


def synthesize_column_stats(table: Table, column: Column, rows: int) -> SyntheticColumn:
    """NDV heuristics for stats-less advising (documented in --help)."""
    name = column.name.lower()
    kind = column.ctype.kind.value
    if column.name in table.primary_key:
        return SyntheticColumn(ndv=-1, lo=1, hi=max(2, rows))
    if name.endswith("_id") or name.endswith("id"):
        return SyntheticColumn(ndv=max(2, rows // 2), lo=1, hi=max(2, rows))
    if any(word in name for word in ("status", "state", "kind", "type", "flag")):
        return SyntheticColumn(ndv=8)
    if kind == "boolean":
        return SyntheticColumn(ndv=2)
    if kind in ("date", "datetime"):
        return SyntheticColumn(ndv=min(rows, 3650), lo=0, hi=3650)
    if kind == "string":
        return SyntheticColumn(ndv=max(2, rows // 20))
    return SyntheticColumn(ndv=max(2, rows // 10), lo=0, hi=1_000_000)


def build_database(
    schema_sql: str,
    row_counts: dict[str, int],
    default_rows: int,
    engine: str,
) -> Database:
    """Assemble a stats-only database from DDL plus row-count hints."""
    parsed = parse_ddl(schema_sql)
    db = Database(
        parsed.to_schema(), params=_ENGINES[engine],
        with_storage=False, name="cli",
    )
    for table in parsed.tables:
        rows = row_counts.get(table.name, default_rows)
        spec = {
            column.name: synthesize_column_stats(table, column, rows)
            for column in table.columns
        }
        db.set_stats(table.name, synthesize_table(rows, spec))
    return db


def synthesize_row_value(
    table: Table, column: Column, rows: int, i: int, rng: random.Random
):
    """One deterministic cell value, mirroring the NDV heuristics of
    :func:`synthesize_column_stats` so plans over generated rows estimate
    the same way stats-only advising does."""
    name = column.name.lower()
    kind = column.ctype.kind
    if column.name in table.primary_key:
        return i + 1
    if column.nullable and rng.random() < 0.05:
        return None
    if name.endswith("id"):
        return rng.randint(1, max(2, rows))
    if any(word in name for word in ("status", "state", "kind", "type", "flag")):
        return f"v{rng.randrange(8)}"
    if kind == TypeKind.BOOLEAN:
        return rng.randrange(2)
    if kind in (TypeKind.DATE, TypeKind.DATETIME):
        return rng.randint(0, 3650)
    if kind == TypeKind.STRING:
        return f"s{rng.randrange(max(2, rows // 20))}"
    return rng.randint(0, 1_000_000)


def build_stored_database(
    schema_sql: str,
    row_counts: dict[str, int],
    default_rows: int,
    engine: str,
    seed: int = 7,
) -> Database:
    """Assemble a *stored* database (rows + ANALYZE'd statistics) from DDL
    plus row-count hints, for ``explain --analyze`` runs."""
    parsed = parse_ddl(schema_sql)
    db = Database(
        parsed.to_schema(), params=_ENGINES[engine],
        with_storage=True, name="cli",
    )
    for table in parsed.tables:
        rows = row_counts.get(table.name, default_rows)
        rng = random.Random(f"{seed}:{table.name}")   # str seeds hash stably
        db.load_rows(
            table.name,
            [
                {
                    column.name: synthesize_row_value(
                        table, column, rows, i, rng
                    )
                    for column in table.columns
                }
                for i in range(rows)
            ],
        )
    db.analyze()
    return db


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="AIM index advisor over SQL schema + workload files.",
    )
    parser.add_argument("--trace", default=None, metavar="FILE.json",
                        help="write a Chrome trace_event file of the run")
    parser.add_argument("--schema", required=True,
                        help="path to a CREATE TABLE script")
    parser.add_argument("--workload", required=True,
                        help="path to a SQL workload script (see module docs)")
    parser.add_argument("--budget", type=parse_size, default=parse_size("1GiB"),
                        help="storage budget, e.g. 10GiB (default 1GiB)")
    parser.add_argument("--rows", action="append", default=[],
                        metavar="TABLE=COUNT",
                        help="row count hint, repeatable")
    parser.add_argument("--default-rows", type=int, default=1_000_000,
                        help="row count for tables without a --rows hint")
    parser.add_argument("--engine", choices=sorted(_ENGINES), default="innodb",
                        help="storage engine cost profile")
    parser.add_argument("--join-parameter", type=int, default=2,
                        help="AIM's j (Sec. IV-C)")
    parser.add_argument("--max-width", type=int, default=None,
                        help="optional cap on index width")
    parser.add_argument("--algorithm", choices=sorted(ALL_ALGORITHMS),
                        default="aim", help="advisor to run")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for workload costing "
                             "(default 1 = serial; results are identical)")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="run the sampling profiler and write "
                             "collapsed stacks (flamegraph.pl input)")
    parser.add_argument("--status", default=None, metavar="FILE",
                        help="publish live status snapshots for `repro "
                             "top` to this file (default: the shared "
                             "temp-dir path)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def make_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli explain",
        description="Optimizer plans (and, with --analyze, executed "
        "actuals with per-node Q-error) for workload statements.",
    )
    parser.add_argument("--schema", required=True,
                        help="path to a CREATE TABLE script")
    parser.add_argument("--workload", default=None,
                        help="path to a SQL workload script")
    parser.add_argument("--sql", default=None,
                        help="a single statement instead of --workload")
    parser.add_argument("--rows", action="append", default=[],
                        metavar="TABLE=COUNT",
                        help="row count hint, repeatable")
    parser.add_argument("--default-rows", type=int, default=2000,
                        help="rows to synthesize per table (default 2000; "
                        "rows are generated and executed, keep it small)")
    parser.add_argument("--engine", choices=sorted(_ENGINES),
                        default="innodb", help="storage engine cost profile")
    parser.add_argument("--seed", type=int, default=7,
                        help="row synthesis seed")
    parser.add_argument("--analyze", action="store_true",
                        help="execute each statement and show actuals")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def make_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli fuzz",
        description="Deterministic workload fuzzer with differential and "
                    "metamorphic oracles (repro.qa).",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; case i uses seed+i (default 0)")
    parser.add_argument("--iters", type=int, default=100,
                        help="number of cases to generate (default 100)")
    parser.add_argument("--oracles", default=None, metavar="NAMES",
                        help="comma-separated oracle subset "
                             "(default: all)")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize failing cases before writing them")
    parser.add_argument("--out", default="qa_failures",
                        help="directory for failure repro files "
                             "(default qa_failures)")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many failing cases (default 5)")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run the oracles against a persisted "
                             "qa_failures file instead of fuzzing")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    return parser


#: Options of the advise parser that consume a value (subcommand scan).
_VALUE_FLAGS = {
    "--trace", "--schema", "--workload", "--budget", "--rows",
    "--default-rows", "--engine", "--join-parameter", "--max-width",
    "--algorithm", "--jobs", "--format", "--sql", "--seed",
    "--iters", "--oracles", "--out", "--max-failures", "--replay",
    "--profile", "--status", "--interval", "--window", "--serve",
}


def _split_command(argv: list[str]) -> tuple[str, list[str]]:
    """Pop the subcommand (first positional token) out of *argv*.

    ``advise`` is the default, so the historical bare-flag invocation
    keeps working; flags may precede the subcommand
    (``repro --trace out.json advise --schema ...``).
    """
    i = 0
    while i < len(argv):
        token = argv[i]
        if token in _VALUE_FLAGS:
            i += 2
        elif token.startswith("-"):
            i += 1
        else:
            if token in (
                "advise", "obs-report", "explain", "fleet-report", "fuzz",
                "top",
            ):
                return token, argv[:i] + argv[i + 1:]
            return "advise", argv
    return "advise", argv


def obs_report(argv: Sequence[str]) -> int:
    """Summarize trace/telemetry JSON files (``repro.cli obs-report``)."""
    paths = [token for token in argv if not token.startswith("-")]
    if not paths:
        print("usage: repro.cli obs-report FILE.json [FILE.json ...]",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if len(paths) > 1:
            print(f"== {path} ==")
        print(render_report(payload))
    return 0


def explain(argv: Sequence[str]) -> int:
    """``repro.cli explain``: plans, optionally with executed actuals."""
    args = make_explain_parser().parse_args(list(argv))
    if (args.sql is None) == (args.workload is None):
        print("error: give exactly one of --sql or --workload",
              file=sys.stderr)
        return 2
    row_counts: dict[str, int] = {}
    for hint in args.rows:
        if "=" not in hint:
            print(f"error: bad --rows value {hint!r}", file=sys.stderr)
            return 2
        table, _, count = hint.partition("=")
        row_counts[table.strip()] = int(count)
    with open(args.schema) as fh:
        schema_sql = fh.read()
    if args.sql is not None:
        workload = Workload([WorkloadQuery(args.sql, name="q1")], name="cli")
    else:
        with open(args.workload) as fh:
            workload = parse_workload_file(fh.read())
    if not len(workload):
        print("error: nothing to explain", file=sys.stderr)
        return 2

    db = build_stored_database(
        schema_sql, row_counts, args.default_rows, args.engine, args.seed
    )
    executor = Executor(db)
    reports = []
    for query in workload:
        if query.is_dml:
            reports.append(
                {"name": query.name, "sql": query.sql, "skipped": "DML"}
            )
            continue
        result = executor.execute(query.sql, analyze=args.analyze)
        entry = {
            "name": query.name,
            "sql": query.sql,
            "estimated_cost": result.plan.total_cost,
            "rendered": render_explain_analyze(
                result.plan, result.actual if args.analyze else None
            ),
        }
        if result.actual is not None:
            entry["actual"] = result.actual.to_dict()
            entry["rows_returned"] = result.rowcount
        reports.append(entry)

    if args.format == "json":
        print(json.dumps({"statements": reports}, indent=2))
        return 0
    for entry in reports:
        print(f"-- {entry['name']}: {entry['sql']}")
        if "skipped" in entry:
            print(f"   (skipped: {entry['skipped']})")
        else:
            print(entry["rendered"])
        print()
    return 0


def fleet_report(argv: Sequence[str]) -> int:
    """``repro.cli fleet-report``: render a decision-journal report."""
    as_json = "--json" in argv
    paths = [token for token in argv if not token.startswith("-")]
    if len(paths) != 1:
        print("usage: repro.cli fleet-report JOURNAL.jsonl [--json]",
              file=sys.stderr)
        return 2
    try:
        records = read_events(paths[0])
    except (OSError, ValueError) as exc:
        print(f"error: cannot read journal {paths[0]}: {exc}",
              file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps(fleet_report_data(records), indent=2))
    else:
        print(render_fleet_report(records))
    return 0


def fuzz(argv: Sequence[str]) -> int:
    """``repro.cli fuzz``: deterministic fuzzing with the qa oracles.

    Exit status: 0 when every oracle held on every case, 1 when at
    least one violation was found (repro files land in ``--out``),
    2 on usage errors.
    """
    from .qa import ORACLES, replay_case, run_fuzz

    args = make_fuzz_parser().parse_args(list(argv))
    names = None
    if args.oracles:
        names = [n.strip() for n in args.oracles.split(",") if n.strip()]
        unknown = [n for n in names if n not in ORACLES]
        if unknown:
            print(f"error: unknown oracle(s) {', '.join(unknown)}; "
                  f"choose from {', '.join(sorted(ORACLES))}",
                  file=sys.stderr)
            return 2

    if args.replay is not None:
        try:
            report = replay_case(args.replay, oracles=names)
        except (OSError, KeyError, ValueError,
                json.JSONDecodeError) as exc:
            print(f"error: cannot replay {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        if args.iters < 1:
            print("error: --iters must be >= 1", file=sys.stderr)
            return 2

        def progress(done: int, total: int, failures: int) -> None:
            if done % 50 == 0 or done == total:
                print(f"fuzz: {done}/{total} cases, "
                      f"{failures} failing", file=sys.stderr)

        report = run_fuzz(
            seed=args.seed,
            iters=args.iters,
            oracles=names,
            shrink=args.shrink,
            out_dir=args.out,
            max_failures=args.max_failures,
            progress=progress if args.format == "text" else None,
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    if report.ok:
        print(f"OK: {report.cases_run} cases x "
              f"{len(report.oracle_names)} oracles, no violations "
              f"(seed {report.seed})")
        return 0
    print(f"FAIL: {len(report.violations)} violation(s) across "
          f"{report.cases_run} cases (seed {report.seed})")
    for violation in report.violations:
        stmt = f" [{violation.statement}]" if violation.statement else ""
        print(f"  {violation.oracle} seed={violation.seed}{stmt}: "
              f"{violation.detail}")
    for path in report.failure_files:
        print(f"  repro written: {path}")
    if report.stopped_early:
        print("  (stopped early: --max-failures reached)")
    return 1


@contextmanager
def _observed_advise(args) -> Iterator[None]:
    """The advise run's observability harness.

    Publishes status snapshots for ``repro top`` (to ``--status`` or the
    shared default path) for the duration of the run, and -- with
    ``--profile FILE`` -- runs the sampling profiler and writes its
    collapsed stacks when the run finishes.
    """
    if args.profile:
        enable_profiler()
    bus = MetricsSnapshotBus(
        interval=0.5,
        path=args.status or default_status_path(),
        source=f"advise:{args.algorithm}",
    )
    set_bus(bus)
    bus.start()
    try:
        with profile("cli.advise"):
            yield
    finally:
        bus.stop(final_capture=True)
        set_bus(None)
        if args.profile:
            profiler = disable_profiler()
            if profiler is not None:
                try:
                    profiler.write_collapsed(args.profile)
                except OSError as exc:
                    print(f"error: cannot write profile: {exc}",
                          file=sys.stderr)
                else:
                    print(
                        f"profile: {profiler.samples} samples -> "
                        f"{args.profile} (overhead "
                        f"{profiler.overhead_pct:.2f}%)",
                        file=sys.stderr,
                    )


def _write_trace(path: Optional[str]) -> int:
    if path:
        try:
            get_tracer().write_chrome_trace(path)
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    command, argv = _split_command(argv)
    if command == "obs-report":
        return obs_report(argv)
    if command == "explain":
        return explain(argv)
    if command == "fleet-report":
        return fleet_report(argv)
    if command == "fuzz":
        return fuzz(argv)
    if command == "top":
        return run_top(argv)
    args = make_parser().parse_args(argv)
    row_counts: dict[str, int] = {}
    for hint in args.rows:
        if "=" not in hint:
            print(f"error: bad --rows value {hint!r}", file=sys.stderr)
            return 2
        table, _, count = hint.partition("=")
        row_counts[table.strip()] = int(count)

    with open(args.schema) as fh:
        schema_sql = fh.read()
    with open(args.workload) as fh:
        workload = parse_workload_file(fh.read())
    if not len(workload):
        print("error: the workload file contains no statements", file=sys.stderr)
        return 2

    db = build_database(schema_sql, row_counts, args.default_rows, args.engine)

    with _observed_advise(args):
        return _advise(args, db, workload)


def _advise(args, db: Database, workload: Workload) -> int:
    if args.algorithm == "aim":
        config = AimConfig(
            join_parameter=args.join_parameter,
            max_index_width=args.max_width,
            jobs=args.jobs,
        )
        recommendation = AimAdvisor(db, config).recommend(workload, args.budget)
        if args.format == "json":
            payload = {
                "indexes": [
                    {
                        "table": rec.index.table,
                        "columns": list(rec.index.columns),
                        "size_bytes": rec.size_bytes,
                        "benefit": rec.benefit,
                        "maintenance": rec.maintenance,
                        "phase": rec.phase,
                    }
                    for rec in recommendation.created
                ],
                "cost_before": recommendation.cost_before,
                "cost_after": recommendation.cost_after,
                "improvement": recommendation.improvement,
                "optimizer_calls": recommendation.optimizer_calls,
                "runtime_seconds": recommendation.runtime_seconds,
                "telemetry": telemetry_snapshot(),
            }
            print(json.dumps(payload, indent=2))
        else:
            print(recommendation.summary())
            print()
            for index in recommendation.indexes:
                print(f"CREATE INDEX {index.name} ON "
                      f"{index.table} ({', '.join(index.columns)});")
        return _write_trace(args.trace)

    algorithm = ALL_ALGORITHMS[args.algorithm](db)
    algorithm.jobs = args.jobs
    result = algorithm.select(workload, args.budget)
    if args.format == "json":
        payload = {
            "algorithm": result.algorithm,
            "indexes": [
                {"table": i.table, "columns": list(i.columns)}
                for i in result.indexes
            ],
            "relative_cost": result.relative_cost,
            "runtime_seconds": result.runtime_seconds,
            "optimizer_calls": result.optimizer_calls,
            "telemetry": telemetry_snapshot(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"{result.algorithm}: relative cost "
              f"{result.relative_cost:.3f}, {len(result.indexes)} indexes")
        for index in result.indexes:
            print(f"CREATE INDEX {index.materialized().name} ON "
                  f"{index.table} ({', '.join(index.columns)});")
    return _write_trace(args.trace)


if __name__ == "__main__":
    sys.exit(main())
