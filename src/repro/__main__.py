"""``python -m repro`` -- the CLI entry point (same as ``python -m repro.cli``)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
