"""Centralized tuning coordinator (paper Sec. VIII-c).

"The AIM process does not run on individual database hosts and a
centralized coordinator kicks off the tuning process for a database if it
detects inefficient queries."  The coordinator watches the statistics
warehouse and triggers a :class:`~repro.core.ContinuousTuner` cycle for
any database whose top queries cross the expected-benefit threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import AimConfig, ContinuousTuner, TuningCycleResult
from ..engine import Database
from ..obs import IndexRollback, capture_now, emit, get_registry, trace
from ..workload import SelectionPolicy
from .regression import ContinuousRegressionDetector
from .replica import ReplicaSet
from .stats_export import StatsWarehouse


@dataclass
class ManagedDatabase:
    """One database under the coordinator's management."""

    name: str
    replica_set: ReplicaSet
    tuner: ContinuousTuner
    detector: ContinuousRegressionDetector = field(
        default_factory=ContinuousRegressionDetector
    )


class FleetCoordinator:
    """Kicks off tuning for databases with inefficient queries."""

    def __init__(
        self,
        warehouse: StatsWarehouse,
        budget_bytes: int,
        config: AimConfig = AimConfig(),
        selection: SelectionPolicy = SelectionPolicy(),
    ):
        self.warehouse = warehouse
        self.budget_bytes = budget_bytes
        self.config = config
        self.selection = selection
        self.managed: dict[str, ManagedDatabase] = {}

    def register(self, name: str, replica_set: ReplicaSet) -> ManagedDatabase:
        tuner = ContinuousTuner(
            replica_set.primary.db,
            self.budget_bytes,
            config=self.config,
            monitor=self.warehouse.monitor_for(name),
            selection=self.selection,
        )
        managed = ManagedDatabase(name, replica_set, tuner)
        self.managed[name] = managed
        return managed

    def needs_tuning(self, name: str) -> bool:
        """True if any query crosses the benefit threshold (Eq. 5)."""
        monitor = self.warehouse.monitor_for(name)
        for stats in monitor.top_by_benefit(limit=5):
            if (
                stats.executions >= self.selection.min_executions
                and stats.expected_benefit >= self.selection.min_benefit
            ):
                return True
        return False

    def scan_and_tune(self) -> dict[str, TuningCycleResult]:
        """One coordinator sweep over the fleet."""
        registry = get_registry()
        registry.gauge(
            "fleet.managed", "databases under coordinator management"
        ).set(len(self.managed))
        results: dict[str, TuningCycleResult] = {}
        with trace("fleet.scan_and_tune", managed=len(self.managed)) as span:
            for name, managed in self.managed.items():
                if not self.needs_tuning(name):
                    continue
                with trace("fleet.tuning_cycle", database=name):
                    result = managed.tuner.run_cycle()
                registry.counter(
                    "fleet.tuning_cycles", "tuning cycles triggered per database"
                ).inc(database=name)
                for index in result.created:
                    managed.detector.note_index_created(index)
                if result.changed:
                    managed.replica_set.apply_ddl()   # flush replica plan caches
                results[name] = result
                capture_now()
            span.set(tuned=len(results))
        return results

    def check_regressions(self, name: str) -> list:
        """Run the regression detector over the latest stats window and
        revert flagged automation-added indexes."""
        managed = self.managed[name]
        monitor = self.warehouse.monitor_for(name)
        with trace("fleet.check_regressions", database=name) as span:
            events = managed.detector.observe_window(monitor, database=name)
            flagged = managed.detector.flagged_for_removal(events)
            for index in flagged:
                managed.replica_set.primary.db.drop_index(index)
                emit(
                    IndexRollback(
                        index=index.name,
                        table=index.table,
                        database=name,
                        reason="regression",
                    )
                )
            if flagged:
                managed.replica_set.apply_ddl()
            span.set(events=len(events), reverted=len(flagged))
        registry = get_registry()
        if events:
            registry.counter(
                "fleet.regression.events", "detected per-query regressions"
            ).inc(len(events), database=name)
        if flagged:
            registry.counter(
                "fleet.indexes_reverted", "automation indexes reverted"
            ).inc(len(flagged), database=name)
        return events
