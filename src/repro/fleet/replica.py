"""Replica set simulation (paper Sec. VII-A).

Meta's MySQL offering replicates each database across machines; reads are
served by any replica, so execution statistics must be gathered from all
of them and aggregated for a holistic view.  :class:`ReplicaSet` models
that topology on top of stats-only databases: each replica owns a
:class:`~repro.workload.WorkloadMonitor`, reads round-robin across
replicas, writes hit every replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import Database
from ..optimizer import CostEvaluator
from ..workload import WorkloadMonitor, WorkloadQuery


@dataclass
class Replica:
    """One machine serving a copy of the database."""

    name: str
    db: Database
    monitor: WorkloadMonitor = field(default_factory=WorkloadMonitor)

    def __post_init__(self) -> None:
        self._evaluator = CostEvaluator(self.db, include_schema_indexes=True)

    def serve(self, query: WorkloadQuery) -> float:
        """Estimate-serve one statement; returns its cost and records
        statistics the way a production statement digest would."""
        plan = self._evaluator.plan(query.sql)
        self.monitor.record_plan(query.sql, plan)
        return plan.total_cost

    def invalidate_plans(self) -> None:
        """Flush the plan cache after a configuration change."""
        self._evaluator = CostEvaluator(self.db, include_schema_indexes=True)


class ReplicaSet:
    """A primary plus N-1 replicas sharing one schema object.

    The schema (and therefore the index configuration) is shared by
    reference: index DDL applied through :meth:`apply_ddl` is visible on
    every replica at once, mirroring replicated DDL.
    """

    def __init__(self, db: Database, n_replicas: int = 3):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.replicas = [
            Replica(f"{db.name}-r{i}", _share(db, i)) for i in range(n_replicas)
        ]
        self._next_read = 0

    @property
    def primary(self) -> Replica:
        return self.replicas[0]

    def serve_read(self, query: WorkloadQuery) -> float:
        """Round-robin a read across replicas."""
        replica = self.replicas[self._next_read % len(self.replicas)]
        self._next_read += 1
        return replica.serve(query)

    def serve_write(self, query: WorkloadQuery) -> float:
        """A write executes on every replica; returns total fleet cost."""
        return sum(replica.serve(query) for replica in self.replicas)

    def serve(self, query: WorkloadQuery) -> float:
        if query.is_dml:
            return self.serve_write(query)
        return self.serve_read(query)

    def apply_ddl(self, create=(), drop=()) -> None:
        """Apply index DDL fleet-wide and flush plan caches."""
        db = self.primary.db
        for index in drop:
            db.drop_index(index)
        for index in create:
            db.create_index(index.materialized())
        for replica in self.replicas:
            replica.invalidate_plans()


def _share(db: Database, i: int) -> Database:
    """Replica i shares the primary's schema and stats objects."""
    if i == 0:
        return db
    clone = Database.__new__(Database)
    clone.name = f"{db.name}-r{i}"
    clone.schema = db.schema          # shared: replicated DDL
    clone.params = db.params
    clone.stats = db.stats
    clone.switches = db.switches
    clone.storage = None
    return clone
