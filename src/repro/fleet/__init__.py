"""Operational layer: replicas, stats export, MyShadow, regression
 detection, the centralized coordinator and the replay simulator."""

from .coordinator import FleetCoordinator, ManagedDatabase
from .myshadow import MyShadow, ShadowReport
from .regression import ContinuousRegressionDetector, RegressionEvent
from .replay import (
    ReplayConfig,
    ReplaySimulator,
    Timeline,
    TimelinePoint,
    incremental_index_events,
)
from .replica import Replica, ReplicaSet
from .stats_export import PubSubChannel, StatsExportDaemon, StatsWarehouse

__all__ = [
    "Replica",
    "ReplicaSet",
    "PubSubChannel",
    "StatsWarehouse",
    "StatsExportDaemon",
    "MyShadow",
    "ShadowReport",
    "ContinuousRegressionDetector",
    "RegressionEvent",
    "FleetCoordinator",
    "ManagedDatabase",
    "ReplayConfig",
    "ReplaySimulator",
    "Timeline",
    "TimelinePoint",
    "incremental_index_events",
]
