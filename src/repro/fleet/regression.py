"""Continuous regression detector (paper Sec. VII-C).

An independent, off-host process watching per-normalized-query average
CPU time across time windows.  If a query regresses after automation
added an index, the index is flagged for removal -- the safety net behind
the "no regression" guarantee, indispensable because "some portions of
the workload may repeat after a very long duration" (Sec. VIII-c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Index
from ..obs import RegressionFlagged, counter, emit
from ..sqlparser import ast, parse
from ..workload import WorkloadMonitor

_WINDOWS = counter(
    "regression.windows_observed", "observation windows processed"
).labels()
_EVENTS = counter(
    "regression.events_detected", "per-query regressions flagged"
).labels()


def _referenced_tables(*sql_texts: str) -> set[str]:
    """Table names a query actually references, from its parsed AST.

    Substring matching (``idx.table in sql``) false-positives whenever a
    table's name happens to occur inside another identifier or a string
    literal (``user`` vs ``user_events``), mis-attributing regressions to
    innocent indexes.  Parsing sidesteps that; unparseable text
    contributes nothing.
    """
    tables: set[str] = set()
    for sql in sql_texts:
        if not sql:
            continue
        try:
            stmt = parse(sql)
        except Exception:
            continue
        if isinstance(stmt, ast.Select):
            tables.update(ref.name for ref in stmt.all_table_refs())
        elif isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            tables.add(stmt.table.name)
    return tables


@dataclass
class RegressionEvent:
    """One detected regression."""

    normalized_sql: str
    before_cpu_avg: float
    after_cpu_avg: float
    suspect_indexes: list[Index] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        if self.before_cpu_avg <= 0:
            return 1.0
        return self.after_cpu_avg / self.before_cpu_avg


class ContinuousRegressionDetector:
    """Window-over-window cpu_avg comparison with index attribution."""

    def __init__(self, regression_threshold: float = 1.5, suspect_windows: int = 4):
        self.regression_threshold = regression_threshold
        self.suspect_windows = suspect_windows
        self._baseline: dict[str, float] = {}
        self._recent_ddl: dict[str, tuple[Index, int]] = {}

    def note_index_created(self, index: Index) -> None:
        """Record automation-driven DDL for suspect attribution.

        The index stays on the suspect list for ``suspect_windows``
        observation windows -- long enough to catch regressions from
        workload portions that repeat with a long period (Sec. VIII-c).
        """
        self._recent_ddl[index.name] = (index, self.suspect_windows)

    def observe_window(
        self, monitor: WorkloadMonitor, database: str = ""
    ) -> list[RegressionEvent]:
        """Compare this window's cpu_avg per query with the baseline.

        The baseline updates to the current window afterwards (rolling);
        recently created indexes are attached to any regression whose
        query *references* their table (parsed, not substring-matched)
        and age off the suspect list after ``suspect_windows`` windows.
        Each detected regression is journaled as a ``regression_flagged``
        event.
        """
        events: list[RegressionEvent] = []
        current: dict[str, float] = {}
        recent = [entry[0] for entry in self._recent_ddl.values()]
        for normalized, stats in monitor.stats.items():
            if stats.executions == 0:
                continue
            current[normalized] = stats.cpu_avg
            baseline = self._baseline.get(normalized)
            if baseline is None or baseline <= 0:
                continue
            if stats.cpu_avg > baseline * self.regression_threshold:
                tables = _referenced_tables(normalized, stats.example_sql)
                suspects = [idx for idx in recent if idx.table in tables]
                event = RegressionEvent(
                    normalized_sql=normalized,
                    before_cpu_avg=baseline,
                    after_cpu_avg=stats.cpu_avg,
                    suspect_indexes=suspects or recent,
                )
                events.append(event)
                emit(
                    RegressionFlagged(
                        normalized_sql=normalized,
                        before_cpu_avg=baseline,
                        after_cpu_avg=stats.cpu_avg,
                        ratio=event.ratio,
                        suspects=tuple(
                            idx.name for idx in event.suspect_indexes
                        ),
                        database=database,
                    )
                )
        _WINDOWS.inc()
        if events:
            _EVENTS.inc(len(events))
        self._baseline.update(current)
        # Age the suspect list.
        aged: dict[str, tuple[Index, int]] = {}
        for name, (index, remaining) in self._recent_ddl.items():
            if remaining > 1:
                aged[name] = (index, remaining - 1)
        self._recent_ddl = aged
        return events

    def flagged_for_removal(self, events: list[RegressionEvent]) -> list[Index]:
        """Deduplicated suspect indexes across events."""
        seen: dict[str, Index] = {}
        for event in events:
            for index in event.suspect_indexes:
                seen[index.name] = index
        return list(seen.values())
