"""Continuous statistics export (paper Sec. VII-A).

A daemon periodically queries every machine of a replica set and exports
per-query statistics through a pub-sub channel into a central warehouse,
where "complex analytics can be run almost instantaneously".  The
warehouse here is simply an aggregated :class:`WorkloadMonitor` per
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..workload import QueryStatistics, WorkloadMonitor
from .replica import ReplicaSet


@dataclass
class PubSubChannel:
    """A minimal in-process pub-sub topic (the Kafka stand-in)."""

    subscribers: list[Callable[[str, list[QueryStatistics]], None]] = field(
        default_factory=list
    )
    published: int = 0

    def subscribe(
        self, callback: Callable[[str, list[QueryStatistics]], None]
    ) -> None:
        self.subscribers.append(callback)

    def publish(self, database: str, records: list[QueryStatistics]) -> None:
        self.published += len(records)
        for callback in self.subscribers:
            callback(database, records)


class StatsWarehouse:
    """Central store of aggregated workload statistics per database."""

    def __init__(self) -> None:
        self.monitors: dict[str, WorkloadMonitor] = {}

    def ingest(self, database: str, records: list[QueryStatistics]) -> None:
        monitor = self.monitors.setdefault(database, WorkloadMonitor())
        staging = WorkloadMonitor()
        for record in records:
            staging.stats[record.normalized_sql] = record
        monitor.merge(staging)

    def monitor_for(self, database: str) -> WorkloadMonitor:
        return self.monitors.setdefault(database, WorkloadMonitor())


class StatsExportDaemon:
    """Periodically drains replica monitors into the warehouse."""

    def __init__(
        self,
        database: str,
        replica_set: ReplicaSet,
        channel: PubSubChannel,
    ):
        self.database = database
        self.replica_set = replica_set
        self.channel = channel
        self.export_runs = 0

    def run_once(self) -> int:
        """One export interval: drain every replica's monitor.

        Returns the number of exported records.  Replica monitors reset
        after export (per-interval statistics, like a statement digest
        flush).
        """
        exported = 0
        for replica in self.replica_set.replicas:
            records = list(replica.monitor.stats.values())
            if records:
                self.channel.publish(self.database, records)
                exported += len(records)
            replica.monitor.clear()
        self.export_runs += 1
        return exported
