"""Continuous statistics export (paper Sec. VII-A).

A daemon periodically queries every machine of a replica set and exports
per-query statistics through a pub-sub channel into a central warehouse,
where "complex analytics can be run almost instantaneously".  The
warehouse here is simply an aggregated :class:`WorkloadMonitor` per
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..engine import ExecutionMetrics
from ..obs import WorkloadDigest, emit, get_registry
from ..workload import QueryStatistics, WorkloadMonitor
from .replica import ReplicaSet


@dataclass
class PubSubChannel:
    """A minimal in-process pub-sub topic (the Kafka stand-in)."""

    subscribers: list[Callable[[str, list[QueryStatistics]], None]] = field(
        default_factory=list
    )
    published: int = 0

    def subscribe(
        self, callback: Callable[[str, list[QueryStatistics]], None]
    ) -> None:
        self.subscribers.append(callback)

    def publish(self, database: str, records: list[QueryStatistics]) -> None:
        self.published += len(records)
        for callback in self.subscribers:
            callback(database, records)


class StatsWarehouse:
    """Central store of aggregated workload statistics per database."""

    def __init__(self) -> None:
        self.monitors: dict[str, WorkloadMonitor] = {}
        self.engine_totals: dict[str, ExecutionMetrics] = {}

    def ingest(self, database: str, records: list[QueryStatistics]) -> None:
        monitor = self.monitors.setdefault(database, WorkloadMonitor())
        staging = WorkloadMonitor()
        for record in records:
            staging.stats[record.normalized_sql] = record
        monitor.merge(staging)
        get_registry().counter(
            "warehouse.records_ingested", "statistics records ingested"
        ).inc(len(records), database=database)

    def ingest_engine_metrics(
        self, database: str, metrics: ExecutionMetrics
    ) -> None:
        """Fold one machine's engine counters into the per-database totals
        (the global-status-variable side of the statistics export)."""
        totals = self.engine_totals.setdefault(database, ExecutionMetrics())
        totals.merge(metrics)
        registry = get_registry()
        for name, value in metrics.as_dict().items():
            if value:
                registry.counter(f"warehouse.engine.{name}").inc(
                    value, database=database
                )

    def engine_snapshot(self, database: str) -> dict[str, int]:
        """The aggregated engine counters for one database, as a dict."""
        totals = self.engine_totals.get(database)
        return totals.as_dict() if totals is not None else {}

    def monitor_for(self, database: str) -> WorkloadMonitor:
        return self.monitors.setdefault(database, WorkloadMonitor())


class StatsExportDaemon:
    """Periodically drains replica monitors into the warehouse."""

    def __init__(
        self,
        database: str,
        replica_set: ReplicaSet,
        channel: PubSubChannel,
    ):
        self.database = database
        self.replica_set = replica_set
        self.channel = channel
        self.export_runs = 0

    def run_once(self) -> int:
        """One export interval: drain every replica's monitor.

        Returns the number of exported records.  Replica monitors reset
        after export (per-interval statistics, like a statement digest
        flush).  Each non-empty window also journals a
        ``workload_digest`` event summarizing what was exported.
        """
        exported = 0
        window = WorkloadMonitor()
        for replica in self.replica_set.replicas:
            records = list(replica.monitor.stats.values())
            if records:
                self.channel.publish(self.database, records)
                exported += len(records)
                window.merge(replica.monitor)
            replica.monitor.clear()
        if exported:
            emit(
                WorkloadDigest(
                    database=self.database,
                    window=self.export_runs,
                    **window.digest(),
                )
            )
        self.export_runs += 1
        get_registry().counter(
            "fleet.stats.records_exported", "records drained to the warehouse"
        ).inc(exported, database=self.database)
        return exported
