"""Discrete-time workload replay: CPU% and throughput time series.

Reproduces the measurement harness behind Fig 3 and Fig 6: a machine with
fixed processing capacity serves a statement stream; the y-axes are CPU
utilization (offered load over capacity) and completed statements per
tick (capacity-clipped).  Index DDL is injected as timeline events --
including the paper's "indexes were created incrementally with sleeps in
between in order to clearly observe the impact".

Per-statement costs come from the optimizer under the *current* index
configuration, cached per (normalized statement, configuration version):
re-planning happens exactly when the configuration changes, which is also
how the estimated series responds to each index build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..catalog import Index
from ..engine import Database
from ..optimizer import CostEvaluator
from ..workload import Workload, WorkloadQuery
from ..workloads.oltp import WorkloadSampler


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters.

    Attributes:
        ticks: number of simulation steps.
        arrivals_per_tick: statements offered per tick.
        capacity: cost units the machine can process per tick (100% CPU).
        seed: sampler seed.
    """

    ticks: int = 120
    arrivals_per_tick: int = 60
    capacity: float = 50_000.0
    seed: int = 0


@dataclass
class TimelinePoint:
    tick: int
    cpu_pct: float
    throughput: float
    offered_cost: float
    n_indexes: int


@dataclass
class Timeline:
    """A recorded replay run."""

    points: list[TimelinePoint] = field(default_factory=list)

    def cpu_series(self) -> list[float]:
        return [p.cpu_pct for p in self.points]

    def throughput_series(self) -> list[float]:
        return [p.throughput for p in self.points]

    def mean_cpu(self, start: int = 0, end: Optional[int] = None) -> float:
        window = self.points[start:end]
        return sum(p.cpu_pct for p in window) / max(1, len(window))

    def mean_throughput(self, start: int = 0, end: Optional[int] = None) -> float:
        window = self.points[start:end]
        return sum(p.throughput for p in window) / max(1, len(window))


Event = Callable[["ReplaySimulator"], None]


class ReplaySimulator:
    """Drives one machine through the replay."""

    def __init__(self, db: Database, workload: Workload, config: ReplayConfig):
        self.db = db
        self.workload = workload
        self.config = config
        self.sampler = WorkloadSampler(workload, seed=config.seed)
        self._evaluator = CostEvaluator(db, include_schema_indexes=True)
        self._cost_cache: dict[str, float] = {}
        self.timeline = Timeline()

    # -- configuration events --------------------------------------------------

    def create_indexes(self, indexes: Iterable[Index]) -> None:
        for index in indexes:
            self.db.create_index(index.materialized())
        self._invalidate()

    def drop_all_indexes(self) -> None:
        self.db.drop_all_secondary_indexes()
        self._invalidate()

    def set_workload(self, workload: Workload) -> None:
        self.workload = workload
        self.sampler.replace_workload(workload)
        self._cost_cache.clear()

    def _invalidate(self) -> None:
        self._evaluator = CostEvaluator(self.db, include_schema_indexes=True)
        self._cost_cache.clear()

    # -- execution ------------------------------------------------------------------

    def statement_cost(self, query: WorkloadQuery) -> float:
        cached = self._cost_cache.get(query.sql)
        if cached is None:
            cached = self._evaluator.cost(query.sql)
            self._cost_cache[query.sql] = cached
        return cached

    def run(self, events: Optional[dict[int, Event]] = None) -> Timeline:
        """Run the full replay; *events* maps tick -> callback."""
        events = events or {}
        for tick in range(self.config.ticks):
            if tick in events:
                events[tick](self)
            arrivals = self.sampler.sample(self.config.arrivals_per_tick)
            offered = sum(self.statement_cost(q) for q in arrivals)
            utilization = offered / self.config.capacity
            cpu_pct = min(100.0, utilization * 100.0)
            if utilization <= 1.0:
                throughput = float(len(arrivals))
            else:
                throughput = len(arrivals) / utilization
            self.timeline.points.append(
                TimelinePoint(
                    tick=tick,
                    cpu_pct=cpu_pct,
                    throughput=throughput,
                    offered_cost=offered,
                    n_indexes=len(self.db.schema.indexes(include_dataless=False)),
                )
            )
        return self.timeline


def incremental_index_events(
    indexes: list[Index],
    start_tick: int,
    interval: int,
) -> dict[int, Event]:
    """DDL events creating one index every *interval* ticks from
    *start_tick* (the paper's incremental creation with sleeps)."""
    events: dict[int, Event] = {}
    for i, index in enumerate(indexes):
        tick = start_tick + i * interval

        def make_event(idx: Index) -> Event:
            return lambda sim: sim.create_indexes([idx])

        events[tick] = _chain(events.get(tick), make_event(index))
    return events


def _chain(first: Optional[Event], second: Event) -> Event:
    if first is None:
        return second

    def chained(sim: "ReplaySimulator") -> None:
        first(sim)
        second(sim)

    return chained
