"""MyShadow: clone-and-replay validation (paper Sec. VII-B).

MyShadow provides a temporary logical copy of a database and replays
(sampled) production traffic onto it, catching regressions "that are only
possible to detect in a production-like environment" before any index
reaches production.  Here the clone is a stats clone (or full clone when
storage exists) and the replay compares per-query costs between the
current and the candidate configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..catalog import Index
from ..engine import Database
from ..optimizer import CostEvaluator
from ..workload import Workload, WorkloadQuery


@dataclass
class ShadowReport:
    """Outcome of one shadow replay."""

    improved: list[tuple[str, float]] = field(default_factory=list)
    regressed: list[tuple[str, float]] = field(default_factory=list)
    unchanged: int = 0
    cost_before: float = 0.0
    cost_after: float = 0.0

    @property
    def safe(self) -> bool:
        return not self.regressed


class MyShadow:
    """A production-like test bed for candidate configurations."""

    def __init__(
        self,
        db: Database,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ):
        self.source = db
        self.sample_fraction = sample_fraction
        self._rng = random.Random(seed)
        # Economical test bed: stats clone unless rows are needed.
        self.clone = db.stats_clone(name=f"{db.name}-myshadow")

    def sample_traffic(self, workload: Workload) -> list[WorkloadQuery]:
        """Sample the workload to replay (MyShadow can subsample)."""
        if self.sample_fraction >= 1.0:
            return list(workload.queries)
        keep = max(1, int(len(workload) * self.sample_fraction))
        return self._rng.sample(list(workload.queries), keep)

    def validate(
        self,
        workload: Workload,
        candidate_indexes: list[Index],
        regression_lambda: float = 0.10,
        improvement_lambda: float = 0.05,
    ) -> ShadowReport:
        """Replay traffic against current vs candidate configuration.

        A query counts as regressed when Eq. 4's bound is violated
        (cost ratio above ``1 + λ3``) and as improved when it clears
        Eq. 3's bar (ratio below ``1 - λ2``).
        """
        evaluator = CostEvaluator(self.clone, include_schema_indexes=True)
        report = ShadowReport()
        traffic = self.sample_traffic(workload)
        for query in traffic:
            before = evaluator.cost(query.sql, [])
            after = evaluator.cost(query.sql, candidate_indexes)
            report.cost_before += query.weight * before
            report.cost_after += query.weight * after
            if before <= 0:
                report.unchanged += 1
                continue
            ratio = after / before
            if not query.is_dml and ratio > 1.0 + regression_lambda:
                report.regressed.append((query.name or query.sql[:60], ratio))
            elif ratio < 1.0 - improvement_lambda:
                report.improved.append((query.name or query.sql[:60], ratio))
            else:
                report.unchanged += 1
        return report
