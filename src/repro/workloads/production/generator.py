"""Synthetic production workloads (Table II's Products A-G).

Meta's production traces are proprietary; this generator reproduces their
*shape* from the metadata Table II publishes: table count, join-query
count, read/write mix, and the rough data volume implied by the reported
index sizes.  Everything is seeded, so each product is a deterministic
(schema, workload) pair.

Schemas are FK-linked star/snowflake meshes; workloads mix point lookups,
range scans, grouped reports, top-k scans, FK joins and DML, with
Zipf-like frequency skew (a few hot queries dominate, matching the
paper's observation that "only the top few most expensive queries account
for most of the CPU utilization").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...catalog import Column, Table, varchar, BIGINT, DATETIME, DECIMAL, INT
from ...engine import Database, INNODB, CostParams
from ...stats import SyntheticColumn, synthesize_table
from ...workload import Workload, WorkloadQuery

READ_HEAVY = "read_heavy"
WRITE_HEAVY = "write_heavy"
BALANCED = "balanced"

#: DML weight share per workload type.
_DML_SHARE = {READ_HEAVY: 0.10, WRITE_HEAVY: 0.55, BALANCED: 0.30}


@dataclass(frozen=True)
class ProductSpec:
    """Metadata describing one production database (Table II row)."""

    name: str
    tables: int
    join_queries: int
    workload_type: str
    min_rows: int
    max_rows: int
    seed: int
    single_table_queries: int = 0

    @property
    def query_count(self) -> int:
        singles = self.single_table_queries or max(10, self.tables)
        return singles + self.join_queries


#: The seven products of Table II.  Row ranges are tuned so total index
#: volumes land in the same order of magnitude the table reports.
PRODUCTS: dict[str, ProductSpec] = {
    "A": ProductSpec("A", 147, 67, WRITE_HEAVY, 200_000, 12_000_000, seed=101),
    "B": ProductSpec("B", 184, 733, READ_HEAVY, 2_000, 120_000, seed=102),
    "C": ProductSpec("C", 42, 25, BALANCED, 50_000, 6_000_000, seed=103),
    "D": ProductSpec("D", 16, 18, WRITE_HEAVY, 60_000, 7_000_000, seed=104),
    "E": ProductSpec("E", 51, 41, READ_HEAVY, 5_000_000, 120_000_000, seed=105),
    "F": ProductSpec("F", 5, 10, READ_HEAVY, 20_000, 300_000, seed=106),
    "G": ProductSpec("G", 79, 386, BALANCED, 1_000_000, 90_000_000, seed=107),
}

_COLUMN_TYPES = [INT, BIGINT, DECIMAL, DATETIME, varchar(16), varchar(32), varchar(64)]


@dataclass
class Product:
    """A generated production database plus its workload."""

    spec: ProductSpec
    db: Database
    workload: Workload
    fk_edges: list[tuple[str, str, str]] = field(default_factory=list)
    # (child_table, fk_column, parent_table)


def build_product(
    spec: ProductSpec, params: CostParams = INNODB
) -> Product:
    """Generate the stats-only database and workload for a product."""
    rng = random.Random(spec.seed)
    builder = _ProductBuilder(spec, rng, params)
    return builder.build()


class _ProductBuilder:
    def __init__(self, spec: ProductSpec, rng: random.Random, params: CostParams):
        self.spec = spec
        self.rng = rng
        self.params = params
        self.tables: list[Table] = []
        self.row_counts: dict[str, int] = {}
        self.fk_edges: list[tuple[str, str, str]] = []
        self.filterable: dict[str, list[str]] = {}   # table -> non-fk columns

    def build(self) -> Product:
        for i in range(self.spec.tables):
            self._make_table(i)
        db = Database.from_tables(
            self.tables, params=self.params, with_storage=False,
            name=f"product-{self.spec.name}",
        )
        for table in self.tables:
            db.set_stats(table.name, self._stats_for(table))
        workload = self._make_workload()
        return Product(self.spec, db, workload, self.fk_edges)

    # -- schema -------------------------------------------------------------------

    def _make_table(self, i: int) -> None:
        rng = self.rng
        name = f"t{i}"
        columns = [Column("id", BIGINT)]
        # FK columns to up to three earlier tables (a DAG of references).
        n_fks = 0
        if i > 0:
            n_fks = rng.randint(0, min(3, i))
            parents = rng.sample(range(i), n_fks)
            for parent in parents:
                fk = f"t{parent}_id"
                columns.append(Column(fk, BIGINT))
                self.fk_edges.append((name, fk, f"t{parent}"))
        n_payload = rng.randint(4, 10)
        payload_cols = []
        for c in range(n_payload):
            ctype = rng.choice(_COLUMN_TYPES)
            col = Column(f"c{c}", ctype, nullable=rng.random() < 0.2)
            columns.append(col)
            payload_cols.append(col.name)
        self.filterable[name] = payload_cols
        self.tables.append(Table(name, columns, ("id",)))
        lo, hi = self.spec.min_rows, self.spec.max_rows
        # Log-uniform row counts: most tables small, a few huge.
        import math

        self.row_counts[name] = int(
            math.exp(rng.uniform(math.log(lo), math.log(hi)))
        )

    def _stats_for(self, table: Table):
        rng = self.rng
        rows = self.row_counts[table.name]
        spec: dict[str, SyntheticColumn] = {}
        for col in table.columns:
            if col.name == "id":
                spec[col.name] = SyntheticColumn(ndv=-1, lo=1, hi=rows)
            elif col.name.endswith("_id"):
                parent = col.name[:-3]
                parent_rows = self.row_counts.get(parent, rows)
                spec[col.name] = SyntheticColumn(
                    ndv=min(parent_rows, max(1, rows // 2)),
                    lo=1, hi=max(2, parent_rows),
                )
            else:
                # Payload columns: skewed NDV from tiny enums to unique.
                choice = rng.random()
                if choice < 0.3:
                    ndv = rng.randint(2, 20)
                elif choice < 0.7:
                    ndv = rng.randint(100, 100_000)
                else:
                    ndv = -1
                spec[col.name] = SyntheticColumn(
                    ndv=ndv, lo=0, hi=1_000_000,
                    null_frac=0.1 if col.nullable else 0.0,
                )
        return synthesize_table(rows, spec)

    # -- workload ---------------------------------------------------------------------

    def _make_workload(self) -> Workload:
        rng = self.rng
        queries: list[WorkloadQuery] = []
        singles = self.spec.query_count - self.spec.join_queries
        for i in range(singles):
            queries.append(self._single_table_query(i))
        for i in range(self.spec.join_queries):
            queries.append(self._join_query(i))
        dml_share = _DML_SHARE[self.spec.workload_type]
        n_dml = max(1, int(len(queries) * dml_share))
        for i in range(n_dml):
            queries.append(self._dml_statement(i))
        # Zipf-like weights: rank r gets weight ~ 1/r, scaled.
        rng.shuffle(queries)
        for rank, query in enumerate(queries, start=1):
            query.weight = round(10_000.0 / rank, 2)
        return Workload(queries, name=f"product-{self.spec.name}")

    def _pick_table(self) -> Table:
        return self.rng.choice(self.tables)

    def _filter_clause(self, table: Table, n: int) -> list[str]:
        rng = self.rng
        columns = self.filterable[table.name]
        if not columns:
            return []
        preds = []
        for col_name in rng.sample(columns, min(n, len(columns))):
            col = table.column(col_name)
            kind = rng.random()
            if col.ctype.kind.value == "string":
                preds.append(f"{col_name} = 'v{rng.randint(0, 50)}'")
            elif kind < 0.6:
                preds.append(f"{col_name} = {rng.randint(0, 1_000_000)}")
            elif kind < 0.8:
                lo = rng.randint(0, 900_000)
                preds.append(f"{col_name} BETWEEN {lo} AND {lo + rng.randint(1000, 90_000)}")
            else:
                preds.append(f"{col_name} > {rng.randint(500_000, 990_000)}")
        return preds

    def _projection(self, table: Table, n: int) -> list[str]:
        cols = [c for c in table.column_names if c != "id"]
        self.rng.shuffle(cols)
        return sorted(cols[: max(1, min(n, len(cols)))])

    def _single_table_query(self, i: int) -> WorkloadQuery:
        rng = self.rng
        table = self._pick_table()
        preds = self._filter_clause(table, rng.randint(1, 3))
        projection = ", ".join(self._projection(table, rng.randint(1, 4)))
        sql = f"SELECT {projection} FROM {table.name}"
        if preds:
            sql += " WHERE " + " AND ".join(preds)
        shape = rng.random()
        candidates = self.filterable[table.name]
        if shape < 0.25 and candidates:
            group = rng.choice(candidates)
            sql = (
                f"SELECT {group}, COUNT(*) FROM {table.name}"
                + (" WHERE " + " AND ".join(preds) if preds else "")
                + f" GROUP BY {group}"
            )
        elif shape < 0.5 and candidates:
            order = rng.choice(candidates)
            sql += f" ORDER BY {order} DESC LIMIT {rng.choice([10, 50, 100])}"
        return WorkloadQuery(sql, name=f"{self.spec.name}-s{i}")

    def _join_query(self, i: int) -> WorkloadQuery:
        rng = self.rng
        if not self.fk_edges:
            return self._single_table_query(i)
        # Walk 1-3 FK edges from a random child table.
        child, fk, parent = rng.choice(self.fk_edges)
        joins = [(child, fk, parent)]
        frontier = parent
        for _ in range(rng.randint(0, 2)):
            options = [e for e in self.fk_edges if e[0] == frontier]
            if not options:
                break
            edge = rng.choice(options)
            joins.append(edge)
            frontier = edge[2]
        tables = [child] + [e[2] for e in joins]
        conditions = [f"{c}.{fk} = {p}.id" for c, fk, p in joins]
        child_table = next(t for t in self.tables if t.name == child)
        preds = self._filter_clause(child_table, rng.randint(1, 2))
        preds = [f"{child}.{p}" if not p.startswith(child) else p for p in preds]
        last_table = next(t for t in self.tables if t.name == tables[-1])
        tail_preds = [
            f"{last_table.name}.{p}"
            for p in self._filter_clause(last_table, 1)
        ]
        projection = ", ".join(
            f"{child}.{c}" for c in self._projection(child_table, 2)
        )
        sql = (
            f"SELECT {projection} FROM {', '.join(dict.fromkeys(tables))} "
            f"WHERE {' AND '.join(conditions + preds + tail_preds)}"
        )
        return WorkloadQuery(sql, name=f"{self.spec.name}-j{i}")

    def _dml_statement(self, i: int) -> WorkloadQuery:
        rng = self.rng
        table = self._pick_table()
        payload = self.filterable[table.name]
        kind = rng.random()
        if kind < 0.5 or not payload:
            cols = ["id"] + [c for c in table.column_names if c != "id"]
            values = []
            for c in cols:
                col = table.column(c)
                if col.ctype.kind.value == "string":
                    values.append(f"'v{rng.randint(0, 50)}'")
                else:
                    values.append(str(rng.randint(1, 1_000_000)))
            sql = (
                f"INSERT INTO {table.name} ({', '.join(cols)}) "
                f"VALUES ({', '.join(values)})"
            )
        elif kind < 0.85:
            col = rng.choice(payload)
            column = table.column(col)
            value = (
                f"'v{rng.randint(0, 50)}'"
                if column.ctype.kind.value == "string"
                else str(rng.randint(1, 1_000_000))
            )
            sql = (
                f"UPDATE {table.name} SET {col} = {value} "
                f"WHERE id = {rng.randint(1, 1_000_000)}"
            )
        else:
            sql = f"DELETE FROM {table.name} WHERE id = {rng.randint(1, 1_000_000)}"
        return WorkloadQuery(sql, name=f"{self.spec.name}-w{i}")
