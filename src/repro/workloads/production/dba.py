"""The "DBA" reference index sets for the Table II comparison.

The paper compares AIM's indexes against those chosen by database
administrators.  Our DBA model rests on the observation the paper itself
makes: good DBAs apply the same first principles AIM encodes (equality
columns first, one range column, index the join keys) -- but *one slow
query at a time*, without AIM's workload-level machinery:

* queries are visited in descending weight (the slowest dashboards get
  attention first) and each gets the single best index for it alone,
* no partial-order merging and no covering phase (workload-level
  consolidation and wide covering indexes are automation-era habits),
* FK columns are indexed by default, used or not,
* an index is skipped only when an already-created one subsumes it
  (same column set or a prefix); DBAs rarely drop anything.

These deviations produce more, narrower indexes with substantial -- but
not total -- overlap with AIM's picks, which is exactly the Table II
pattern (AIM: fewer indexes, smaller total size, Jaccard 0.6-0.97).
"""

from __future__ import annotations

import random

from ...catalog import Index
from ...core import CandidateGenerator, GeneratorConfig, MODE_NON_COVERING
from ...core.ipp import RangeColumnChooser
from ...optimizer import CostEvaluator
from .generator import Product


def dba_index_set(
    product: Product,
    budget_bytes: int,
    fk_index_probability: float = 0.7,
    seed: int = 1337,
) -> list[Index]:
    """The reference configuration a DBA team would maintain."""
    db = product.db
    evaluator = CostEvaluator(db, include_schema_indexes=False)
    generator = CandidateGenerator(
        db.schema,
        db.stats,
        GeneratorConfig(join_parameter=1, merge_orders=False),
        range_chooser=RangeColumnChooser(evaluator=evaluator),
    )
    chosen: dict[str, Index] = {}
    used_bytes = 0
    queries = sorted(
        (q for q in product.workload if not q.is_dml),
        key=lambda q: -q.weight,
    )
    for query in queries:
        info = evaluator.analyze(query.sql)
        orders = generator.generate_for_query(info, MODE_NON_COVERING)
        base = evaluator.cost(query.sql, list(chosen.values()))
        best: tuple[float, Index] | None = None
        for po in orders:
            index = generator.index_for_order(po)
            if index is None:
                continue
            cost = evaluator.cost(query.sql, list(chosen.values()) + [index])
            gain = base - cost
            if gain > 0 and (best is None or gain > best[0]):
                best = (gain, index)
        if best is None:
            continue
        index = best[1].materialized()
        if _subsumed(index, chosen.values()):
            continue
        size = db.index_size_bytes(index)
        if used_bytes + size > budget_bytes:
            continue
        chosen[index.name] = index
        used_bytes += size

    rng = random.Random(seed)
    for child, fk, _parent in product.fk_edges:
        if rng.random() < fk_index_probability:
            idx = Index(child, (fk,))
            if idx.name not in chosen and not _subsumed(idx, chosen.values()):
                chosen[idx.name] = idx
    return list(chosen.values())


def _subsumed(index: Index, existing) -> bool:
    """True if an existing index has the same key or extends it."""
    return any(
        index.is_prefix_of(other)
        or (other.table == index.table and set(other.columns) == set(index.columns))
        for other in existing
    )


def jaccard_similarity(left: list[Index], right: list[Index]) -> float:
    """Jaccard index between two index sets, keyed by (table, columns)."""
    a = {(i.table, i.columns) for i in left}
    b = {(i.table, i.columns) for i in right}
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
