"""Synthetic production workloads (Products A-G of Table II)."""

from .dba import dba_index_set, jaccard_similarity
from .generator import (
    BALANCED,
    PRODUCTS,
    Product,
    ProductSpec,
    READ_HEAVY,
    WRITE_HEAVY,
    build_product,
)

__all__ = [
    "PRODUCTS",
    "Product",
    "ProductSpec",
    "build_product",
    "dba_index_set",
    "jaccard_similarity",
    "READ_HEAVY",
    "WRITE_HEAVY",
    "BALANCED",
]
