"""Benchmark workloads: TPC-H, JOB, synthetic production products, OLTP."""

from .oltp import WorkloadSampler, workload_shift

__all__ = ["WorkloadSampler", "workload_shift"]
