"""Join-heavy transactional workload for the join-parameter experiments.

Reproduces the workload shape behind Fig 6: star queries over a fact
table joined with up to three dimensions through *composite* join
predicates whose individual columns are unselective but whose
combination is highly selective -- the exact situation where greedy
one-column-at-a-time advisors stall ("It is possible that any
combination of two sub-predicates is not selective enough but a
combination of all three is highly selective", Sec. VI-C) and where
AIM's join parameter ``j`` controls how many join orders get supporting
candidates.
"""

from __future__ import annotations

import random

from ..catalog import BIGINT, Column, INT, Table, varchar
from ..engine import Database, INNODB, CostParams
from ..stats import SyntheticColumn, synthesize_table
from ..workload import Workload, WorkloadQuery

#: Composite key column NDVs: individually weak, jointly strong.
_KEY_NDV = 40

FACT_ROWS = 2_000_000
DIM_ROWS = 100_000


def starjoin_tables(n_dimensions: int = 3) -> list[Table]:
    """A fact table plus *n_dimensions* dimension tables.

    Every dimension ``d<i>`` relates to the fact through a composite
    (``k<i>a``, ``k<i>b``) pair; each component has only ~40 distinct
    values, the pair ~1600.
    """
    fact_columns = [Column("id", BIGINT)]
    for i in range(n_dimensions):
        fact_columns.append(Column(f"k{i}a", INT))
        fact_columns.append(Column(f"k{i}b", INT))
    fact_columns += [
        Column("amount", INT),
        Column("status", varchar(8)),
        Column("created", INT),
    ]
    tables = [Table("fact", fact_columns, ("id",))]
    for i in range(n_dimensions):
        tables.append(
            Table(
                f"d{i}",
                [
                    Column("id", BIGINT),
                    Column("ka", INT),
                    Column("kb", INT),
                    Column("label", varchar(16)),
                    Column("region", varchar(8)),
                ],
                ("id",),
            )
        )
    return tables


def starjoin_database(
    n_dimensions: int = 3, params: CostParams = INNODB
) -> Database:
    """Stats-only star schema with the composite-key distributions."""
    db = Database.from_tables(
        starjoin_tables(n_dimensions), params=params, with_storage=False,
        name="starjoin",
    )
    fact_spec = {
        "id": SyntheticColumn(ndv=-1, lo=1, hi=FACT_ROWS),
        "amount": SyntheticColumn(ndv=10_000, lo=1, hi=10_000),
        "status": SyntheticColumn(ndv=4),
        "created": SyntheticColumn(ndv=500_000, lo=0, hi=1_000_000),
    }
    for i in range(n_dimensions):
        fact_spec[f"k{i}a"] = SyntheticColumn(ndv=_KEY_NDV, lo=0, hi=_KEY_NDV)
        fact_spec[f"k{i}b"] = SyntheticColumn(ndv=_KEY_NDV, lo=0, hi=_KEY_NDV)
    db.set_stats("fact", synthesize_table(FACT_ROWS, fact_spec))
    for i in range(n_dimensions):
        db.set_stats(
            f"d{i}",
            synthesize_table(DIM_ROWS, {
                "id": SyntheticColumn(ndv=-1, lo=1, hi=DIM_ROWS),
                "ka": SyntheticColumn(ndv=_KEY_NDV, lo=0, hi=_KEY_NDV),
                "kb": SyntheticColumn(ndv=_KEY_NDV, lo=0, hi=_KEY_NDV),
                "label": SyntheticColumn(ndv=DIM_ROWS // 2),
                "region": SyntheticColumn(ndv=8),
            }),
        )
    return db


def _star_query(rng: random.Random, dims: list[int], name: str) -> WorkloadQuery:
    """One star query joining the fact with the given dimensions via
    composite predicates, driven by a selective dimension filter."""
    tables = ["fact"] + [f"d{i}" for i in dims]
    conditions = []
    for i in dims:
        conditions.append(f"fact.k{i}a = d{i}.ka")
        conditions.append(f"fact.k{i}b = d{i}.kb")
    driver = dims[0]
    conditions.append(f"d{driver}.label = 'v{rng.randint(0, DIM_ROWS // 2)}'")
    for other in dims[1:]:
        conditions.append(f"d{other}.region = 'r{rng.randint(0, 7)}'")
    conditions.append(f"fact.status = 's{rng.randint(0, 3)}'")
    sql = (
        f"SELECT fact.amount, d{driver}.label FROM {', '.join(tables)} "
        f"WHERE {' AND '.join(conditions)}"
    )
    return WorkloadQuery(sql, weight=10.0, name=name)


def starjoin_workload(seed: int = 17, n_queries: int = 24) -> Workload:
    """A transactional mix: 2- and 3-dimension star joins, point reads,
    and a sprinkle of DML."""
    rng = random.Random(seed)
    queries: list[WorkloadQuery] = []
    for q in range(n_queries):
        n_dims = 2 if q % 3 else 3    # one third of queries touch 3 dims
        dims = rng.sample(range(3), n_dims)
        queries.append(_star_query(rng, dims, name=f"star{q}"))
    for q in range(n_queries // 3):
        queries.append(
            WorkloadQuery(
                f"SELECT amount, status FROM fact WHERE created "
                f"BETWEEN {q * 1000} AND {q * 1000 + 500}",
                weight=20.0,
                name=f"range{q}",
            )
        )
    for q in range(n_queries // 4):
        queries.append(
            WorkloadQuery(
                f"UPDATE fact SET amount = {rng.randint(1, 10_000)} "
                f"WHERE id = {rng.randint(1, FACT_ROWS)}",
                weight=50.0,
                name=f"upd{q}",
            )
        )
    return Workload(queries, name="starjoin")
