"""JOB (Join Order Benchmark) over the IMDB schema."""

from ...workload import Workload
from .queries import TEMPLATES
from .schema import ROW_COUNTS, job_database, job_tables


def job_workload() -> Workload:
    """The JOB workload: one representative query per covered family."""
    workload = Workload.from_sql(
        [(template(), 1.0) for template in TEMPLATES.values()], name="job"
    )
    for query, family in zip(workload.queries, TEMPLATES):
        query.name = family
    return workload


__all__ = ["job_database", "job_tables", "job_workload", "ROW_COUNTS", "TEMPLATES"]
