"""JOB query templates.

One representative template per JOB family (the benchmark ships 113
variants over 33 families; variants within a family share structure and
differ only in constants).  Join graphs, filter placement and MIN()
projections follow the originals; string constants use the benchmark's
values.  Families relying on unsupported constructs substitute the
nearest structural equivalent (noted inline).
"""

from __future__ import annotations

from typing import Callable


def q1a() -> str:
    return (
        "SELECT MIN(mc.note), MIN(t.title), MIN(t.production_year) "
        "FROM company_type ct, info_type it, movie_companies mc, "
        "movie_info_idx mi_idx, title t "
        "WHERE ct.kind = 'production companies' "
        "AND it.info = 'top 250 rank' "
        "AND mc.note NOT LIKE '%(as Metro-Goldwyn-Mayer Pictures)%' "
        "AND ct.id = mc.company_type_id AND t.id = mc.movie_id "
        "AND t.id = mi_idx.movie_id AND mi_idx.info_type_id = it.id"
    )


def q2a() -> str:
    return (
        "SELECT MIN(t.title) "
        "FROM company_name cn, keyword k, movie_companies mc, "
        "movie_keyword mk, title t "
        "WHERE cn.country_code = '[de]' AND k.keyword = 'character-name-in-title' "
        "AND cn.id = mc.company_id AND mc.movie_id = t.id "
        "AND t.id = mk.movie_id AND mk.keyword_id = k.id"
    )


def q3b() -> str:
    return (
        "SELECT MIN(t.title) "
        "FROM keyword k, movie_info mi, movie_keyword mk, title t "
        "WHERE k.keyword LIKE '%sequel%' AND mi.info IN ('Bulgaria') "
        "AND t.production_year > 2010 AND t.id = mi.movie_id "
        "AND t.id = mk.movie_id AND mk.keyword_id = k.id"
    )


def q4a() -> str:
    return (
        "SELECT MIN(mi_idx.info), MIN(t.title) "
        "FROM info_type it, keyword k, movie_info_idx mi_idx, "
        "movie_keyword mk, title t "
        "WHERE it.info = 'rating' AND k.keyword LIKE '%sequel%' "
        "AND mi_idx.info > '5.0' AND t.production_year > 2005 "
        "AND t.id = mi_idx.movie_id AND t.id = mk.movie_id "
        "AND mk.keyword_id = k.id AND it.id = mi_idx.info_type_id"
    )


def q5c() -> str:
    return (
        "SELECT MIN(t.title) "
        "FROM company_type ct, info_type it, movie_companies mc, "
        "movie_info mi, title t "
        "WHERE ct.kind = 'production companies' "
        "AND mc.note NOT LIKE '%(TV)%' AND mc.note LIKE '%(USA)%' "
        "AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark', "
        "'Swedish', 'Denish', 'Norwegian', 'German', 'USA', 'American') "
        "AND t.production_year > 1990 AND t.id = mi.movie_id "
        "AND t.id = mc.movie_id AND mc.company_type_id = ct.id "
        "AND mi.info_type_id = it.id"
    )


def q6b() -> str:
    return (
        "SELECT MIN(k.keyword), MIN(n.name), MIN(t.title) "
        "FROM cast_info ci, keyword k, movie_keyword mk, name n, title t "
        "WHERE k.keyword IN ('superhero', 'sequel', 'second-part', "
        "'marvel-comics', 'based-on-comic', 'fight') "
        "AND n.name LIKE '%Downey%Robert%' AND t.production_year > 2014 "
        "AND k.id = mk.keyword_id AND t.id = mk.movie_id "
        "AND t.id = ci.movie_id AND ci.person_id = n.id"
    )


def q8c() -> str:
    return (
        "SELECT MIN(an.name), MIN(t.title) "
        "FROM aka_name an, cast_info ci, company_name cn, "
        "movie_companies mc, name n, role_type rt, title t "
        "WHERE cn.country_code = '[us]' AND rt.role = 'writer' "
        "AND an.person_id = n.id AND n.id = ci.person_id "
        "AND ci.movie_id = t.id AND t.id = mc.movie_id "
        "AND mc.company_id = cn.id AND ci.role_id = rt.id"
    )


def q10a() -> str:
    return (
        "SELECT MIN(chn.name), MIN(t.title) "
        "FROM char_name chn, cast_info ci, company_name cn, "
        "company_type ct, movie_companies mc, role_type rt, title t "
        "WHERE ci.note LIKE '%(voice)%' AND ci.note LIKE '%(uncredited)%' "
        "AND cn.country_code = '[ru]' AND rt.role = 'actor' "
        "AND t.production_year BETWEEN 2005 AND 2015 "
        "AND t.id = mc.movie_id AND t.id = ci.movie_id "
        "AND ci.person_role_id = chn.id AND ci.role_id = rt.id "
        "AND mc.company_id = cn.id AND mc.company_type_id = ct.id"
    )


def q11b() -> str:
    return (
        "SELECT MIN(cn.name), MIN(lt.link), MIN(t.title) "
        "FROM company_name cn, company_type ct, keyword k, link_type lt, "
        "movie_companies mc, movie_keyword mk, movie_link ml, title t "
        "WHERE cn.country_code != '[pl]' AND cn.name LIKE '20th Century Fox%' "
        "AND ct.kind != 'production companies' AND k.keyword = 'sequel' "
        "AND lt.link LIKE '%follows%' AND t.production_year = 1998 "
        "AND lt.id = ml.link_type_id AND ml.movie_id = t.id "
        "AND t.id = mk.movie_id AND mk.keyword_id = k.id "
        "AND t.id = mc.movie_id AND mc.company_type_id = ct.id "
        "AND mc.company_id = cn.id"
    )


def q13a() -> str:
    return (
        "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(t.title) "
        "FROM company_name cn, company_type ct, info_type it, "
        "info_type it2, kind_type kt, movie_companies mc, movie_info mi, "
        "movie_info_idx mi_idx, title t "
        "WHERE cn.country_code = '[de]' AND ct.kind = 'production companies' "
        "AND it.info = 'rating' AND it2.info = 'release dates' "
        "AND kt.kind = 'movie' "
        "AND mi.movie_id = t.id AND it2.id = mi.info_type_id "
        "AND kt.id = t.kind_id AND mc.movie_id = t.id "
        "AND cn.id = mc.company_id AND ct.id = mc.company_type_id "
        "AND mi_idx.movie_id = t.id AND it.id = mi_idx.info_type_id"
    )


def q14a() -> str:
    return (
        "SELECT MIN(mi_idx.info), MIN(t.title) "
        "FROM info_type it, info_type it2, keyword k, kind_type kt, "
        "movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t "
        "WHERE it.info = 'countries' AND it2.info = 'rating' "
        "AND k.keyword IN ('murder', 'murder-in-title', 'blood', 'violence') "
        "AND kt.kind = 'movie' AND mi.info IN ('Sweden', 'Norway', "
        "'Germany', 'Denmark', 'Swedish', 'Denish', 'Norwegian', 'German', 'USA', 'American') "
        "AND mi_idx.info < '8.5' AND t.production_year > 2010 "
        "AND kt.id = t.kind_id AND t.id = mi.movie_id "
        "AND t.id = mk.movie_id AND t.id = mi_idx.movie_id "
        "AND mk.keyword_id = k.id AND it.id = mi.info_type_id "
        "AND it2.id = mi_idx.info_type_id"
    )


def q16b() -> str:
    return (
        "SELECT MIN(an.name), MIN(t.title) "
        "FROM aka_name an, cast_info ci, company_name cn, keyword k, "
        "movie_companies mc, movie_keyword mk, name n, title t "
        "WHERE cn.country_code = '[us]' "
        "AND k.keyword = 'character-name-in-title' "
        "AND an.person_id = n.id AND n.id = ci.person_id "
        "AND ci.movie_id = t.id AND t.id = mk.movie_id "
        "AND mk.keyword_id = k.id AND t.id = mc.movie_id "
        "AND mc.company_id = cn.id"
    )


def q17a() -> str:
    return (
        "SELECT MIN(n.name) "
        "FROM cast_info ci, company_name cn, keyword k, "
        "movie_companies mc, movie_keyword mk, name n, title t "
        "WHERE cn.country_code = '[us]' "
        "AND k.keyword = 'character-name-in-title' AND n.name LIKE 'B%' "
        "AND n.id = ci.person_id AND ci.movie_id = t.id "
        "AND t.id = mk.movie_id AND mk.keyword_id = k.id "
        "AND t.id = mc.movie_id AND mc.company_id = cn.id"
    )


def q19d() -> str:
    return (
        "SELECT MIN(n.name), MIN(t.title) "
        "FROM aka_name an, char_name chn, cast_info ci, company_name cn, "
        "info_type it, movie_companies mc, movie_info mi, name n, "
        "role_type rt, title t "
        "WHERE ci.note = '(voice)' AND cn.country_code = '[us]' "
        "AND it.info = 'release dates' AND n.gender = 'f' "
        "AND rt.role = 'actress' AND t.production_year > 2000 "
        "AND t.id = mi.movie_id AND t.id = mc.movie_id "
        "AND t.id = ci.movie_id AND mc.company_id = cn.id "
        "AND mi.info_type_id = it.id AND n.id = ci.person_id "
        "AND ci.role_id = rt.id AND an.person_id = n.id "
        "AND ci.person_role_id = chn.id"
    )


def q20a() -> str:
    return (
        "SELECT MIN(t.title) "
        "FROM complete_cast cc, comp_cast_type cct1, comp_cast_type cct2, "
        "char_name chn, cast_info ci, keyword k, kind_type kt, "
        "movie_keyword mk, name n, title t "
        "WHERE cct1.kind = 'cast' AND cct2.kind LIKE '%complete%' "
        "AND chn.name NOT LIKE '%Sherlock%' "
        "AND k.keyword IN ('superhero', 'sequel', 'second-part', "
        "'marvel-comics', 'based-on-comic', 'fight') "
        "AND kt.kind = 'movie' AND t.production_year > 1950 "
        "AND kt.id = t.kind_id AND t.id = mk.movie_id "
        "AND t.id = ci.movie_id AND t.id = cc.movie_id "
        "AND mk.keyword_id = k.id AND ci.person_role_id = chn.id "
        "AND ci.person_id = n.id AND cc.subject_id = cct1.id "
        "AND cc.status_id = cct2.id"
    )


def q22c() -> str:
    return (
        "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) "
        "FROM company_name cn, company_type ct, info_type it, "
        "info_type it2, keyword k, kind_type kt, movie_companies mc, "
        "movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t "
        "WHERE cn.country_code != '[us]' AND it.info = 'countries' "
        "AND it2.info = 'rating' "
        "AND k.keyword IN ('murder', 'murder-in-title', 'blood', 'violence') "
        "AND kt.kind IN ('movie', 'episode') "
        "AND mc.note NOT LIKE '%(USA)%' AND mc.note LIKE '%(200%)%' "
        "AND mi.info IN ('Germany', 'German', 'USA', 'American') "
        "AND mi_idx.info < '7.0' AND t.production_year > 2008 "
        "AND kt.id = t.kind_id AND t.id = mi.movie_id "
        "AND t.id = mk.movie_id AND t.id = mi_idx.movie_id "
        "AND t.id = mc.movie_id AND mk.keyword_id = k.id "
        "AND it.id = mi.info_type_id AND it2.id = mi_idx.info_type_id "
        "AND ct.id = mc.company_type_id AND cn.id = mc.company_id"
    )


def q25a() -> str:
    return (
        "SELECT MIN(mi.info), MIN(n.name), MIN(t.title) "
        "FROM cast_info ci, info_type it1, info_type it2, keyword k, "
        "movie_info mi, movie_info_idx mi_idx, movie_keyword mk, "
        "name n, title t "
        "WHERE ci.note = '(writer)' AND it1.info = 'genres' "
        "AND it2.info = 'votes' AND k.keyword IN ('murder', "
        "'blood', 'gore', 'death', 'female-nudity') "
        "AND mi.info = 'Horror' AND n.gender = 'm' "
        "AND t.id = mi.movie_id AND t.id = mi_idx.movie_id "
        "AND t.id = ci.movie_id AND t.id = mk.movie_id "
        "AND ci.person_id = n.id AND mi.info_type_id = it1.id "
        "AND mi_idx.info_type_id = it2.id AND mk.keyword_id = k.id"
    )


def q26b() -> str:
    return (
        "SELECT MIN(chn.name), MIN(mi_idx.info) "
        "FROM complete_cast cc, comp_cast_type cct1, comp_cast_type cct2, "
        "char_name chn, cast_info ci, info_type it2, keyword k, "
        "kind_type kt, movie_info_idx mi_idx, movie_keyword mk, title t "
        "WHERE cct1.kind = 'cast' AND cct2.kind LIKE '%complete%' "
        "AND chn.name LIKE '%man%' AND it2.info = 'rating' "
        "AND k.keyword IN ('superhero', 'marvel-comics', "
        "'based-on-comic', 'fight') AND kt.kind = 'movie' "
        "AND mi_idx.info > '8.0' AND t.production_year > 2005 "
        "AND kt.id = t.kind_id AND t.id = mk.movie_id "
        "AND t.id = ci.movie_id AND t.id = cc.movie_id "
        "AND mk.keyword_id = k.id AND ci.person_role_id = chn.id "
        "AND mi_idx.movie_id = t.id AND it2.id = mi_idx.info_type_id "
        "AND cc.subject_id = cct1.id AND cc.status_id = cct2.id"
    )


def q28c() -> str:
    return (
        "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) "
        "FROM complete_cast cc, comp_cast_type cct1, company_name cn, "
        "company_type ct, info_type it1, info_type it2, keyword k, "
        "kind_type kt, movie_companies mc, movie_info mi, "
        "movie_info_idx mi_idx, movie_keyword mk, title t "
        "WHERE cct1.kind = 'complete' AND cn.country_code != '[us]' "
        "AND it1.info = 'countries' AND it2.info = 'rating' "
        "AND k.keyword IN ('murder', 'murder-in-title', 'blood', 'violence') "
        "AND kt.kind IN ('movie', 'episode') "
        "AND mc.note NOT LIKE '%(USA)%' AND mc.note LIKE '%(200%)%' "
        "AND mi.info IN ('Sweden', 'Germany', 'Swedish', 'German') "
        "AND mi_idx.info > '6.5' AND t.production_year > 2005 "
        "AND kt.id = t.kind_id AND t.id = mi.movie_id "
        "AND t.id = mk.movie_id AND t.id = mi_idx.movie_id "
        "AND t.id = mc.movie_id AND t.id = cc.movie_id "
        "AND mk.keyword_id = k.id AND it1.id = mi.info_type_id "
        "AND it2.id = mi_idx.info_type_id AND ct.id = mc.company_type_id "
        "AND cn.id = mc.company_id AND cct1.id = cc.status_id"
    )


def q30a() -> str:
    return (
        "SELECT MIN(mi.info), MIN(n.name), MIN(t.title) "
        "FROM complete_cast cc, comp_cast_type cct1, comp_cast_type cct2, "
        "cast_info ci, info_type it1, info_type it2, keyword k, "
        "movie_info mi, movie_info_idx mi_idx, movie_keyword mk, "
        "name n, title t "
        "WHERE cct1.kind IN ('cast', 'crew') AND cct2.kind = 'complete+verified' "
        "AND ci.note = '(writer)' AND it1.info = 'genres' "
        "AND it2.info = 'votes' AND k.keyword IN ('murder', "
        "'violence', 'blood', 'gore', 'death', 'female-nudity') "
        "AND mi.info = 'Horror' AND n.gender = 'm' "
        "AND t.id = mi.movie_id AND t.id = mi_idx.movie_id "
        "AND t.id = ci.movie_id AND t.id = mk.movie_id "
        "AND t.id = cc.movie_id AND ci.person_id = n.id "
        "AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id "
        "AND mk.keyword_id = k.id AND cct1.id = cc.subject_id "
        "AND cct2.id = cc.status_id"
    )


def q32b() -> str:
    return (
        "SELECT MIN(lt.link), MIN(t1.title), MIN(t2.title) "
        "FROM keyword k, link_type lt, movie_keyword mk, movie_link ml, "
        "title t1, title t2 "
        "WHERE k.keyword = 'character-name-in-title' "
        "AND mk.keyword_id = k.id AND t1.id = mk.movie_id "
        "AND ml.movie_id = t1.id AND ml.linked_movie_id = t2.id "
        "AND lt.id = ml.link_type_id"
    )


def q33c() -> str:
    return (
        "SELECT MIN(cn1.name), MIN(mi_idx2.info), MIN(t2.title) "
        "FROM company_name cn1, company_name cn2, info_type it2, "
        "kind_type kt1, kind_type kt2, link_type lt, movie_companies mc1, "
        "movie_companies mc2, movie_info_idx mi_idx2, movie_link ml, "
        "title t1, title t2 "
        "WHERE cn1.country_code != '[us]' AND it2.info = 'rating' "
        "AND kt1.kind IN ('tv series', 'episode') "
        "AND kt2.kind IN ('tv series', 'episode') "
        "AND lt.link IN ('sequel', 'follows', 'followed by') "
        "AND mi_idx2.info < '3.5' "
        "AND t2.production_year BETWEEN 2000 AND 2010 "
        "AND lt.id = ml.link_type_id AND t1.id = ml.movie_id "
        "AND t2.id = ml.linked_movie_id AND it2.id = mi_idx2.info_type_id "
        "AND t2.id = mi_idx2.movie_id AND kt1.id = t1.kind_id "
        "AND kt2.id = t2.kind_id AND cn1.id = mc1.company_id "
        "AND t1.id = mc1.movie_id AND cn2.id = mc2.company_id "
        "AND t2.id = mc2.movie_id"
    )


#: One representative template per covered JOB family.
TEMPLATES: dict[str, Callable[[], str]] = {
    "1a": q1a, "2a": q2a, "3b": q3b, "4a": q4a, "5c": q5c, "6b": q6b,
    "8c": q8c, "10a": q10a, "11b": q11b, "13a": q13a, "14a": q14a,
    "16b": q16b, "17a": q17a, "19d": q19d, "20a": q20a, "22c": q22c,
    "25a": q25a, "26b": q26b, "28c": q28c, "30a": q30a, "32b": q32b,
    "33c": q33c,
}
