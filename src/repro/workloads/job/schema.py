"""JOB (Join Order Benchmark) schema over the IMDB dataset.

Stats-only: table cardinalities and column NDVs follow the real IMDB
snapshot used by the benchmark (Leis et al., "How Good Are Query
Optimizers, Really?").  The evaluation never materializes rows -- exactly
like the paper's PostgreSQL+HypoPG setup for JOB (Fig 4c/d).
"""

from __future__ import annotations

from ...catalog import Column, Table, varchar, INT
from ...engine import Database, INNODB, CostParams
from ...stats import SyntheticColumn, synthesize_table

#: Real IMDB table cardinalities (JOB snapshot, May 2013).
ROW_COUNTS = {
    "aka_name": 901_343,
    "aka_title": 361_472,
    "cast_info": 36_244_344,
    "char_name": 3_140_339,
    "comp_cast_type": 4,
    "company_name": 234_997,
    "company_type": 4,
    "complete_cast": 135_086,
    "info_type": 113,
    "keyword": 134_170,
    "kind_type": 7,
    "link_type": 18,
    "movie_companies": 2_609_129,
    "movie_info": 14_835_720,
    "movie_info_idx": 1_380_035,
    "movie_keyword": 4_523_930,
    "movie_link": 29_997,
    "name": 4_167_491,
    "person_info": 2_963_664,
    "role_type": 12,
    "title": 2_528_312,
}


def _table(name: str, columns: list[Column]) -> Table:
    return Table(name, columns, ("id",))


def job_tables() -> list[Table]:
    """The 21 IMDB tables (columns trimmed to those JOB touches)."""
    return [
        _table("title", [
            Column("id", INT), Column("title", varchar(60)),
            Column("imdb_index", varchar(4), nullable=True),
            Column("kind_id", INT),
            Column("production_year", INT, nullable=True),
            Column("phonetic_code", varchar(5), nullable=True),
            Column("episode_of_id", INT, nullable=True),
            Column("season_nr", INT, nullable=True),
            Column("episode_nr", INT, nullable=True),
        ]),
        _table("movie_companies", [
            Column("id", INT), Column("movie_id", INT),
            Column("company_id", INT), Column("company_type_id", INT),
            Column("note", varchar(40), nullable=True),
        ]),
        _table("company_name", [
            Column("id", INT), Column("name", varchar(40)),
            Column("country_code", varchar(8), nullable=True),
            Column("name_pcode_nf", varchar(5), nullable=True),
        ]),
        _table("company_type", [
            Column("id", INT), Column("kind", varchar(24)),
        ]),
        _table("cast_info", [
            Column("id", INT), Column("person_id", INT),
            Column("movie_id", INT),
            Column("person_role_id", INT, nullable=True),
            Column("note", varchar(20), nullable=True),
            Column("nr_order", INT, nullable=True),
            Column("role_id", INT),
        ]),
        _table("name", [
            Column("id", INT), Column("name", varchar(30)),
            Column("imdb_index", varchar(4), nullable=True),
            Column("gender", varchar(1), nullable=True),
            Column("name_pcode_cf", varchar(5), nullable=True),
        ]),
        _table("char_name", [
            Column("id", INT), Column("name", varchar(40)),
        ]),
        _table("role_type", [
            Column("id", INT), Column("role", varchar(16)),
        ]),
        _table("movie_info", [
            Column("id", INT), Column("movie_id", INT),
            Column("info_type_id", INT), Column("info", varchar(30)),
            Column("note", varchar(20), nullable=True),
        ]),
        _table("movie_info_idx", [
            Column("id", INT), Column("movie_id", INT),
            Column("info_type_id", INT), Column("info", varchar(10)),
        ]),
        _table("info_type", [
            Column("id", INT), Column("info", varchar(24)),
        ]),
        _table("movie_keyword", [
            Column("id", INT), Column("movie_id", INT),
            Column("keyword_id", INT),
        ]),
        _table("keyword", [
            Column("id", INT), Column("keyword", varchar(20)),
            Column("phonetic_code", varchar(5), nullable=True),
        ]),
        _table("kind_type", [
            Column("id", INT), Column("kind", varchar(12)),
        ]),
        _table("aka_name", [
            Column("id", INT), Column("person_id", INT),
            Column("name", varchar(30)),
        ]),
        _table("aka_title", [
            Column("id", INT), Column("movie_id", INT),
            Column("title", varchar(60)),
        ]),
        _table("person_info", [
            Column("id", INT), Column("person_id", INT),
            Column("info_type_id", INT), Column("info", varchar(60)),
            Column("note", varchar(20), nullable=True),
        ]),
        _table("movie_link", [
            Column("id", INT), Column("movie_id", INT),
            Column("linked_movie_id", INT), Column("link_type_id", INT),
        ]),
        _table("link_type", [
            Column("id", INT), Column("link", varchar(16)),
        ]),
        _table("complete_cast", [
            Column("id", INT), Column("movie_id", INT),
            Column("subject_id", INT), Column("status_id", INT),
        ]),
        _table("comp_cast_type", [
            Column("id", INT), Column("kind", varchar(16)),
        ]),
    ]


def _specs() -> dict[str, dict[str, SyntheticColumn]]:
    u = SyntheticColumn
    n = ROW_COUNTS
    movies = n["title"]
    persons = n["name"]
    return {
        "title": {
            "id": u(ndv=-1, lo=1, hi=movies),
            "title": u(ndv=int(movies * 0.95)),
            "imdb_index": u(ndv=40, null_frac=0.97),
            "kind_id": u(ndv=7, lo=1, hi=7),
            "production_year": u(ndv=133, lo=1880, hi=2013, null_frac=0.27),
            "phonetic_code": u(ndv=20_000, null_frac=0.1),
            "episode_of_id": u(ndv=60_000, lo=1, hi=movies, null_frac=0.75),
            "season_nr": u(ndv=60, lo=1, hi=60, null_frac=0.75),
            "episode_nr": u(ndv=500, lo=1, hi=3000, null_frac=0.75),
        },
        "movie_companies": {
            "id": u(ndv=-1, lo=1, hi=n["movie_companies"]),
            "movie_id": u(ndv=1_087_236, lo=1, hi=movies),
            "company_id": u(ndv=n["company_name"], lo=1, hi=n["company_name"]),
            "company_type_id": u(ndv=2, lo=1, hi=2),
            "note": u(ndv=700_000, null_frac=0.65),
        },
        "company_name": {
            "id": u(ndv=-1, lo=1, hi=n["company_name"]),
            "name": u(ndv=230_000),
            "country_code": u(ndv=233, null_frac=0.35),
            "name_pcode_nf": u(ndv=80_000, null_frac=0.1),
        },
        "company_type": {"id": u(ndv=-1, lo=1, hi=4), "kind": u(ndv=4)},
        "cast_info": {
            "id": u(ndv=-1, lo=1, hi=n["cast_info"]),
            "person_id": u(ndv=persons, lo=1, hi=persons),
            "movie_id": u(ndv=2_331_601, lo=1, hi=movies),
            "person_role_id": u(ndv=n["char_name"], lo=1, hi=n["char_name"],
                                null_frac=0.6),
            "note": u(ndv=800_000, null_frac=0.7),
            "nr_order": u(ndv=1000, lo=1, hi=1000, null_frac=0.6),
            "role_id": u(ndv=11, lo=1, hi=11),
        },
        "name": {
            "id": u(ndv=-1, lo=1, hi=persons),
            "name": u(ndv=int(persons * 0.98)),
            "imdb_index": u(ndv=40, null_frac=0.97),
            "gender": u(ndv=2, null_frac=0.2),
            "name_pcode_cf": u(ndv=130_000, null_frac=0.05),
        },
        "char_name": {
            "id": u(ndv=-1, lo=1, hi=n["char_name"]),
            "name": u(ndv=int(n["char_name"] * 0.95)),
        },
        "role_type": {"id": u(ndv=-1, lo=1, hi=12), "role": u(ndv=12)},
        "movie_info": {
            "id": u(ndv=-1, lo=1, hi=n["movie_info"]),
            "movie_id": u(ndv=2_468_825, lo=1, hi=movies),
            "info_type_id": u(ndv=71, lo=1, hi=110),
            "info": u(ndv=2_720_930),
            "note": u(ndv=1_300_000, null_frac=0.6),
        },
        "movie_info_idx": {
            "id": u(ndv=-1, lo=1, hi=n["movie_info_idx"]),
            "movie_id": u(ndv=459_925, lo=1, hi=movies),
            "info_type_id": u(ndv=5, lo=99, hi=113),
            "info": u(ndv=10_000),
        },
        "info_type": {"id": u(ndv=-1, lo=1, hi=113), "info": u(ndv=113)},
        "movie_keyword": {
            "id": u(ndv=-1, lo=1, hi=n["movie_keyword"]),
            "movie_id": u(ndv=476_794, lo=1, hi=movies),
            "keyword_id": u(ndv=n["keyword"], lo=1, hi=n["keyword"]),
        },
        "keyword": {
            "id": u(ndv=-1, lo=1, hi=n["keyword"]),
            "keyword": u(ndv=n["keyword"]),
            "phonetic_code": u(ndv=30_000, null_frac=0.01),
        },
        "kind_type": {"id": u(ndv=-1, lo=1, hi=7), "kind": u(ndv=7)},
        "aka_name": {
            "id": u(ndv=-1, lo=1, hi=n["aka_name"]),
            "person_id": u(ndv=588_222, lo=1, hi=persons),
            "name": u(ndv=870_000),
        },
        "aka_title": {
            "id": u(ndv=-1, lo=1, hi=n["aka_title"]),
            "movie_id": u(ndv=229_224, lo=1, hi=movies),
            "title": u(ndv=340_000),
        },
        "person_info": {
            "id": u(ndv=-1, lo=1, hi=n["person_info"]),
            "person_id": u(ndv=550_721, lo=1, hi=persons),
            "info_type_id": u(ndv=22, lo=15, hi=39),
            "info": u(ndv=2_700_000),
            "note": u(ndv=15_000, null_frac=0.5),
        },
        "movie_link": {
            "id": u(ndv=-1, lo=1, hi=n["movie_link"]),
            "movie_id": u(ndv=6_411, lo=1, hi=movies),
            "linked_movie_id": u(ndv=15_245, lo=1, hi=movies),
            "link_type_id": u(ndv=16, lo=1, hi=18),
        },
        "link_type": {"id": u(ndv=-1, lo=1, hi=18), "link": u(ndv=18)},
        "complete_cast": {
            "id": u(ndv=-1, lo=1, hi=n["complete_cast"]),
            "movie_id": u(ndv=93_514, lo=1, hi=movies),
            "subject_id": u(ndv=2, lo=1, hi=2),
            "status_id": u(ndv=2, lo=3, hi=4),
        },
        "comp_cast_type": {"id": u(ndv=-1, lo=1, hi=4), "kind": u(ndv=4)},
    }


def job_database(params: CostParams = INNODB, name: str = "job") -> Database:
    """A stats-only IMDB database with JOB cardinalities."""
    db = Database.from_tables(
        job_tables(), params=params, with_storage=False, name=name
    )
    for table, spec in _specs().items():
        db.set_stats(table, synthesize_table(ROW_COUNTS[table], spec))
    return db
