"""OLTP statement stream helpers for the replay experiments.

A :class:`WorkloadSampler` turns a weighted :class:`Workload` into a
statement stream (weights = relative frequencies); ``workload_shift``
models the paper's continuous-tuning trigger -- "expensive queries result
from new code pushes where developers forget to create supporting
secondary indexes" (Sec. VI-D).
"""

from __future__ import annotations

import random
from typing import Iterable

from ..workload import Workload, WorkloadQuery


class WorkloadSampler:
    """Samples statements from a workload proportionally to weight."""

    def __init__(self, workload: Workload, seed: int = 0):
        self.workload = workload
        self._rng = random.Random(seed)
        self._queries = list(workload.queries)
        self._weights = [max(1e-9, q.weight) for q in self._queries]

    def sample(self, n: int) -> list[WorkloadQuery]:
        """Draw *n* statements (with replacement)."""
        return self._rng.choices(self._queries, weights=self._weights, k=n)

    def replace_workload(self, workload: Workload) -> None:
        """Swap the underlying workload (used by workload_shift)."""
        self.workload = workload
        self._queries = list(workload.queries)
        self._weights = [max(1e-9, q.weight) for q in self._queries]


def workload_shift(
    base: Workload,
    new_queries: Iterable[WorkloadQuery],
    hot_weight: float,
) -> Workload:
    """A new-code-push shift: *new_queries* arrive with *hot_weight* each."""
    shifted = Workload(list(base.queries), name=f"{base.name}-shifted")
    for query in new_queries:
        clone = WorkloadQuery(query.sql, hot_weight, name=query.name)
        shifted.add(clone)
    return shifted
