"""TPC-DS core-schema benchmark (the paper's third analytical workload)."""

from ...workload import Workload
from .queries import TEMPLATES
from .schema import row_counts, tpcds_database, tpcds_tables


def tpcds_workload() -> Workload:
    """Fifteen representative TPC-DS query templates."""
    workload = Workload.from_sql(
        [(template(), 1.0) for template in TEMPLATES.values()], name="tpcds"
    )
    for query, name in zip(workload.queries, TEMPLATES):
        query.name = name
    return workload


__all__ = ["tpcds_database", "tpcds_tables", "tpcds_workload", "row_counts",
           "TEMPLATES"]
