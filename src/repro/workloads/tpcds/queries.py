"""Representative TPC-DS query templates over the core retail schema.

Fifteen templates modeled on the most-cited TPC-DS queries (Q3, Q6, Q7,
Q13, Q19, Q25, Q26, Q28, Q42, Q48, Q52, Q53, Q55, Q68, Q98 families),
flattened to the supported SQL subset the same way the TPC-H templates
are (see that module's docstring for the conventions).
"""

from __future__ import annotations

from typing import Callable


def q3() -> str:
    return (
        "SELECT d.d_year, i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) "
        "FROM date_dim d, store_sales ss, item i "
        "WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk "
        "AND i.i_manufact_id = 128 AND d.d_moy = 11 "
        "GROUP BY d.d_year, i.i_brand_id, i.i_brand "
        "ORDER BY d.d_year, SUM(ss.ss_ext_sales_price) DESC LIMIT 100"
    )


def q6() -> str:
    return (
        "SELECT a.ca_state, COUNT(*) "
        "FROM customer_address a, customer c, store_sales s, date_dim d, item i "
        "WHERE a.ca_address_sk = c.c_current_addr_sk "
        "AND c.c_customer_sk = s.ss_customer_sk "
        "AND s.ss_sold_date_sk = d.d_date_sk AND s.ss_item_sk = i.i_item_sk "
        "AND d.d_year = 2001 AND d.d_moy = 1 AND i.i_current_price > 50 "
        "GROUP BY a.ca_state HAVING COUNT(*) >= 10 "
        "ORDER BY COUNT(*) LIMIT 100"
    )


def q7() -> str:
    return (
        "SELECT i.i_item_id, AVG(ss.ss_quantity), AVG(ss.ss_sales_price) "
        "FROM store_sales ss, customer_demographics cd, date_dim d, "
        "item i, promotion p "
        "WHERE ss.ss_sold_date_sk = d.d_date_sk "
        "AND ss.ss_item_sk = i.i_item_sk "
        "AND ss.ss_cdemo_sk = cd.cd_demo_sk "
        "AND ss.ss_promo_sk = p.p_promo_sk "
        "AND cd.cd_gender = 'M' AND cd.cd_marital_status = 'S' "
        "AND cd.cd_education_status = 'College' "
        "AND (p.p_channel_email = 'N' OR p.p_channel_event = 'N') "
        "AND d.d_year = 2000 "
        "GROUP BY i.i_item_id ORDER BY i.i_item_id LIMIT 100"
    )


def q13() -> str:
    return (
        "SELECT AVG(ss.ss_quantity), AVG(ss.ss_ext_sales_price), "
        "AVG(ss.ss_net_profit) "
        "FROM store_sales ss, store s, customer_demographics cd, "
        "household_demographics hd, customer_address ca, date_dim d "
        "WHERE s.s_store_sk = ss.ss_store_sk "
        "AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2001 "
        "AND ss.ss_hdemo_sk = hd.hd_demo_sk "
        "AND ss.ss_cdemo_sk = cd.cd_demo_sk "
        "AND ss.ss_addr_sk = ca.ca_address_sk "
        "AND cd.cd_marital_status = 'M' AND cd.cd_education_status = '4 yr Degree' "
        "AND hd.hd_dep_count = 3 AND ca.ca_state IN ('TX', 'OH', 'TX') "
        "AND ss.ss_net_profit BETWEEN 100 AND 200"
    )


def q19() -> str:
    return (
        "SELECT i.i_brand_id, i.i_brand, i.i_manufact_id, "
        "SUM(ss.ss_ext_sales_price) "
        "FROM date_dim d, store_sales ss, item i, customer c, "
        "customer_address ca, store s "
        "WHERE d.d_date_sk = ss.ss_sold_date_sk "
        "AND ss.ss_item_sk = i.i_item_sk AND i.i_manager_id = 8 "
        "AND d.d_moy = 11 AND d.d_year = 1998 "
        "AND ss.ss_customer_sk = c.c_customer_sk "
        "AND c.c_current_addr_sk = ca.ca_address_sk "
        "AND ss.ss_store_sk = s.s_store_sk "
        "GROUP BY i.i_brand_id, i.i_brand, i.i_manufact_id "
        "ORDER BY SUM(ss.ss_ext_sales_price) DESC LIMIT 100"
    )


def q25() -> str:
    return (
        "SELECT i.i_item_id, s.s_store_id, SUM(ss.ss_net_profit) "
        "FROM store_sales ss, store_returns sr, date_dim d1, item i, store s "
        "WHERE d1.d_moy = 4 AND d1.d_year = 2001 "
        "AND d1.d_date_sk = ss.ss_sold_date_sk "
        "AND i.i_item_sk = ss.ss_item_sk AND s.s_store_sk = ss.ss_store_sk "
        "AND ss.ss_customer_sk = sr.sr_customer_sk "
        "AND ss.ss_item_sk = sr.sr_item_sk "
        "AND ss.ss_ticket_number = sr.sr_ticket_number "
        "GROUP BY i.i_item_id, s.s_store_id "
        "ORDER BY i.i_item_id, s.s_store_id LIMIT 100"
    )


def q26() -> str:
    return (
        "SELECT i.i_item_id, AVG(cs.cs_quantity), AVG(cs.cs_ext_sales_price) "
        "FROM catalog_sales cs, customer_demographics cd, date_dim d, item i "
        "WHERE cs.cs_sold_date_sk = d.d_date_sk "
        "AND cs.cs_item_sk = i.i_item_sk "
        "AND cs.cs_bill_customer_sk = cd.cd_demo_sk "
        "AND cd.cd_gender = 'F' AND cd.cd_marital_status = 'W' "
        "AND cd.cd_education_status = 'Primary' AND d.d_year = 2000 "
        "GROUP BY i.i_item_id ORDER BY i.i_item_id LIMIT 100"
    )


def q28() -> str:
    return (
        "SELECT AVG(ss_sales_price), COUNT(*), COUNT(DISTINCT ss_sales_price) "
        "FROM store_sales "
        "WHERE ss_quantity BETWEEN 0 AND 5 "
        "AND (ss_sales_price BETWEEN 8 AND 18 "
        "OR ss_net_profit BETWEEN 0 AND 50)"
    )


def q42() -> str:
    return (
        "SELECT d.d_year, i.i_category_id, i.i_category, "
        "SUM(ss.ss_ext_sales_price) "
        "FROM date_dim d, store_sales ss, item i "
        "WHERE d.d_date_sk = ss.ss_sold_date_sk "
        "AND ss.ss_item_sk = i.i_item_sk "
        "AND i.i_manager_id = 1 AND d.d_moy = 11 AND d.d_year = 2000 "
        "GROUP BY d.d_year, i.i_category_id, i.i_category "
        "ORDER BY SUM(ss.ss_ext_sales_price) DESC, d.d_year LIMIT 100"
    )


def q48() -> str:
    return (
        "SELECT SUM(ss.ss_quantity) "
        "FROM store_sales ss, store s, customer_demographics cd, "
        "customer_address ca, date_dim d "
        "WHERE s.s_store_sk = ss.ss_store_sk "
        "AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2000 "
        "AND ss.ss_cdemo_sk = cd.cd_demo_sk "
        "AND ss.ss_addr_sk = ca.ca_address_sk "
        "AND ((cd.cd_marital_status = 'M' AND ss.ss_sales_price BETWEEN 100 AND 150) "
        "OR (cd.cd_marital_status = 'D' AND ss.ss_sales_price BETWEEN 50 AND 100) "
        "OR (cd.cd_marital_status = 'S' AND ss.ss_sales_price BETWEEN 150 AND 200))"
    )


def q52() -> str:
    return (
        "SELECT d.d_year, i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) "
        "FROM date_dim d, store_sales ss, item i "
        "WHERE d.d_date_sk = ss.ss_sold_date_sk "
        "AND ss.ss_item_sk = i.i_item_sk "
        "AND i.i_manager_id = 1 AND d.d_moy = 11 AND d.d_year = 2000 "
        "GROUP BY d.d_year, i.i_brand_id, i.i_brand "
        "ORDER BY d.d_year, SUM(ss.ss_ext_sales_price) DESC LIMIT 100"
    )


def q53() -> str:
    return (
        "SELECT i.i_manufact_id, SUM(ss.ss_sales_price) "
        "FROM item i, store_sales ss, date_dim d, store s "
        "WHERE ss.ss_item_sk = i.i_item_sk "
        "AND ss.ss_sold_date_sk = d.d_date_sk "
        "AND ss.ss_store_sk = s.s_store_sk "
        "AND d.d_qoy = 1 AND d.d_year = 2001 "
        "AND i.i_category IN ('Books', 'Children', 'Electronics') "
        "GROUP BY i.i_manufact_id "
        "ORDER BY SUM(ss.ss_sales_price) LIMIT 100"
    )


def q55() -> str:
    return (
        "SELECT i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) "
        "FROM date_dim d, store_sales ss, item i "
        "WHERE d.d_date_sk = ss.ss_sold_date_sk "
        "AND ss.ss_item_sk = i.i_item_sk "
        "AND i.i_manager_id = 28 AND d.d_moy = 11 AND d.d_year = 1999 "
        "GROUP BY i.i_brand_id, i.i_brand "
        "ORDER BY SUM(ss.ss_ext_sales_price) DESC LIMIT 100"
    )


def q68() -> str:
    return (
        "SELECT c.c_last_name, c.c_first_name, ca.ca_city, "
        "SUM(ss.ss_ext_sales_price) "
        "FROM store_sales ss, date_dim d, store s, "
        "household_demographics hd, customer_address ca, customer c "
        "WHERE ss.ss_sold_date_sk = d.d_date_sk "
        "AND ss.ss_store_sk = s.s_store_sk "
        "AND ss.ss_hdemo_sk = hd.hd_demo_sk "
        "AND ss.ss_addr_sk = ca.ca_address_sk "
        "AND ss.ss_customer_sk = c.c_customer_sk "
        "AND d.d_dom BETWEEN 1 AND 2 "
        "AND (hd.hd_dep_count = 4 OR hd.hd_vehicle_count = 3) "
        "AND d.d_year IN (1999, 2000, 2001) "
        "AND s.s_store_name = 'ese' "
        "GROUP BY c.c_last_name, c.c_first_name, ca.ca_city "
        "ORDER BY c.c_last_name LIMIT 100"
    )


def q98() -> str:
    return (
        "SELECT i.i_item_id, i.i_category, i.i_class, i.i_current_price, "
        "SUM(ss.ss_ext_sales_price) "
        "FROM store_sales ss, item i, date_dim d "
        "WHERE ss.ss_item_sk = i.i_item_sk "
        "AND i.i_category IN ('Sports', 'Books', 'Home') "
        "AND ss.ss_sold_date_sk = d.d_date_sk "
        "AND d.d_date_sk BETWEEN 2451911 AND 2451941 "
        "GROUP BY i.i_item_id, i.i_category, i.i_class, i.i_current_price "
        "ORDER BY i.i_category, i.i_class, i.i_item_id LIMIT 100"
    )


TEMPLATES: dict[str, Callable[[], str]] = {
    "q3": q3, "q6": q6, "q7": q7, "q13": q13, "q19": q19, "q25": q25,
    "q26": q26, "q28": q28, "q42": q42, "q48": q48, "q52": q52,
    "q53": q53, "q55": q55, "q68": q68, "q98": q98,
}
