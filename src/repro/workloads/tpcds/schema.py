"""TPC-DS core schema (stats-only) at configurable scale factors.

The paper also benchmarked TPC-DS but omitted the graphs ("followed the
same trend", Sec. VI-B); we include the core retail-sales star schema --
the tables the commonly-plotted TPC-DS queries touch -- so the trend can
be verified here as well (``benchmarks/bench_fig4_tpcds.py``).

Cardinalities follow the specification's SF-1 row counts scaled by the
usual TPC-DS growth factors.
"""

from __future__ import annotations

from ...catalog import Column, Table, char, varchar, BIGINT, DECIMAL, INT
from ...engine import Database, INNODB, CostParams
from ...stats import SyntheticColumn, synthesize_table


def row_counts(scale_factor: float) -> dict[str, int]:
    """Core-table cardinalities at a scale factor (SF-1 baseline)."""
    sf = scale_factor
    return {
        "date_dim": 73_049,                      # fixed
        "item": int(18_000 * max(1.0, sf ** 0.5)),
        "store": max(12, int(12 * sf ** 0.5)),
        "promotion": int(300 * max(1.0, sf ** 0.5)),
        "household_demographics": 7_200,         # fixed
        "customer_demographics": 1_920_800,      # fixed
        "customer_address": int(50_000 * sf),
        "customer": int(100_000 * sf),
        "store_sales": int(2_880_404 * sf),
        "store_returns": int(287_514 * sf),
        "catalog_sales": int(1_441_548 * sf),
    }


def tpcds_tables() -> list[Table]:
    return [
        Table("date_dim", [
            Column("d_date_sk", INT),
            Column("d_year", INT),
            Column("d_moy", INT),
            Column("d_dom", INT),
            Column("d_qoy", INT),
            Column("d_day_name", char(9)),
        ], ("d_date_sk",)),
        Table("item", [
            Column("i_item_sk", INT),
            Column("i_item_id", char(16)),
            Column("i_brand_id", INT, nullable=True),
            Column("i_brand", char(30), nullable=True),
            Column("i_category_id", INT, nullable=True),
            Column("i_category", char(25), nullable=True),
            Column("i_class", char(25), nullable=True),
            Column("i_manufact_id", INT, nullable=True),
            Column("i_current_price", DECIMAL, nullable=True),
            Column("i_manager_id", INT, nullable=True),
        ], ("i_item_sk",)),
        Table("store", [
            Column("s_store_sk", INT),
            Column("s_store_id", char(16)),
            Column("s_store_name", varchar(25), nullable=True),
            Column("s_state", char(2), nullable=True),
            Column("s_gmt_offset", DECIMAL, nullable=True),
        ], ("s_store_sk",)),
        Table("promotion", [
            Column("p_promo_sk", INT),
            Column("p_channel_email", char(1), nullable=True),
            Column("p_channel_event", char(1), nullable=True),
        ], ("p_promo_sk",)),
        Table("household_demographics", [
            Column("hd_demo_sk", INT),
            Column("hd_dep_count", INT, nullable=True),
            Column("hd_vehicle_count", INT, nullable=True),
        ], ("hd_demo_sk",)),
        Table("customer_demographics", [
            Column("cd_demo_sk", INT),
            Column("cd_gender", char(1), nullable=True),
            Column("cd_marital_status", char(1), nullable=True),
            Column("cd_education_status", char(20), nullable=True),
        ], ("cd_demo_sk",)),
        Table("customer_address", [
            Column("ca_address_sk", INT),
            Column("ca_state", char(2), nullable=True),
            Column("ca_city", varchar(30), nullable=True),
            Column("ca_gmt_offset", DECIMAL, nullable=True),
        ], ("ca_address_sk",)),
        Table("customer", [
            Column("c_customer_sk", INT),
            Column("c_customer_id", char(16)),
            Column("c_current_addr_sk", INT, nullable=True),
            Column("c_current_cdemo_sk", INT, nullable=True),
            Column("c_birth_year", INT, nullable=True),
            Column("c_first_name", char(20), nullable=True),
            Column("c_last_name", char(30), nullable=True),
        ], ("c_customer_sk",)),
        Table("store_sales", [
            Column("ss_item_sk", BIGINT),
            Column("ss_ticket_number", BIGINT),
            Column("ss_sold_date_sk", INT, nullable=True),
            Column("ss_customer_sk", INT, nullable=True),
            Column("ss_cdemo_sk", INT, nullable=True),
            Column("ss_hdemo_sk", INT, nullable=True),
            Column("ss_addr_sk", INT, nullable=True),
            Column("ss_store_sk", INT, nullable=True),
            Column("ss_promo_sk", INT, nullable=True),
            Column("ss_quantity", INT, nullable=True),
            Column("ss_sales_price", DECIMAL, nullable=True),
            Column("ss_ext_sales_price", DECIMAL, nullable=True),
            Column("ss_net_profit", DECIMAL, nullable=True),
        ], ("ss_item_sk", "ss_ticket_number")),
        Table("store_returns", [
            Column("sr_item_sk", BIGINT),
            Column("sr_ticket_number", BIGINT),
            Column("sr_returned_date_sk", INT, nullable=True),
            Column("sr_customer_sk", INT, nullable=True),
            Column("sr_return_amt", DECIMAL, nullable=True),
        ], ("sr_item_sk", "sr_ticket_number")),
        Table("catalog_sales", [
            Column("cs_item_sk", BIGINT),
            Column("cs_order_number", BIGINT),
            Column("cs_sold_date_sk", INT, nullable=True),
            Column("cs_bill_customer_sk", INT, nullable=True),
            Column("cs_quantity", INT, nullable=True),
            Column("cs_ext_sales_price", DECIMAL, nullable=True),
        ], ("cs_item_sk", "cs_order_number")),
    ]


def _specs(counts: dict[str, int]) -> dict[str, dict[str, SyntheticColumn]]:
    u = SyntheticColumn
    return {
        "date_dim": {
            "d_date_sk": u(ndv=-1, lo=2_415_022, hi=2_488_070),
            "d_year": u(ndv=201, lo=1900, hi=2100),
            "d_moy": u(ndv=12, lo=1, hi=12),
            "d_dom": u(ndv=31, lo=1, hi=31),
            "d_qoy": u(ndv=4, lo=1, hi=4),
            "d_day_name": u(ndv=7),
        },
        "item": {
            "i_item_sk": u(ndv=-1, lo=1, hi=counts["item"]),
            "i_item_id": u(ndv=counts["item"] // 2),
            "i_brand_id": u(ndv=1000, lo=1_000_000, hi=10_000_000),
            "i_brand": u(ndv=700),
            "i_category_id": u(ndv=10, lo=1, hi=10),
            "i_category": u(ndv=10),
            "i_class": u(ndv=100),
            "i_manufact_id": u(ndv=1000, lo=1, hi=1000),
            "i_current_price": u(ndv=100, lo=0.09, hi=99.99),
            "i_manager_id": u(ndv=100, lo=1, hi=100),
        },
        "store": {
            "s_store_sk": u(ndv=-1, lo=1, hi=counts["store"]),
            "s_store_id": u(ndv=max(1, counts["store"] // 2)),
            "s_store_name": u(ndv=10),
            "s_state": u(ndv=9),
            "s_gmt_offset": u(ndv=2, lo=-6, hi=-5),
        },
        "promotion": {
            "p_promo_sk": u(ndv=-1, lo=1, hi=counts["promotion"]),
            "p_channel_email": u(ndv=2),
            "p_channel_event": u(ndv=2),
        },
        "household_demographics": {
            "hd_demo_sk": u(ndv=-1, lo=1, hi=7200),
            "hd_dep_count": u(ndv=10, lo=0, hi=9),
            "hd_vehicle_count": u(ndv=6, lo=-1, hi=4),
        },
        "customer_demographics": {
            "cd_demo_sk": u(ndv=-1, lo=1, hi=1_920_800),
            "cd_gender": u(ndv=2),
            "cd_marital_status": u(ndv=5),
            "cd_education_status": u(ndv=7),
        },
        "customer_address": {
            "ca_address_sk": u(ndv=-1, lo=1, hi=counts["customer_address"]),
            "ca_state": u(ndv=51),
            "ca_city": u(ndv=min(counts["customer_address"], 1000)),
            "ca_gmt_offset": u(ndv=6, lo=-10, hi=-5),
        },
        "customer": {
            "c_customer_sk": u(ndv=-1, lo=1, hi=counts["customer"]),
            "c_customer_id": u(ndv=-1),
            "c_current_addr_sk": u(
                ndv=counts["customer_address"], lo=1,
                hi=counts["customer_address"],
            ),
            "c_current_cdemo_sk": u(ndv=1_000_000, lo=1, hi=1_920_800),
            "c_birth_year": u(ndv=69, lo=1924, hi=1992),
            "c_first_name": u(ndv=5_000),
            "c_last_name": u(ndv=5_000),
        },
        "store_sales": {
            "ss_item_sk": u(ndv=counts["item"], lo=1, hi=counts["item"]),
            "ss_ticket_number": u(
                ndv=max(1, counts["store_sales"] // 12), lo=1,
                hi=max(2, counts["store_sales"] // 2),
            ),
            "ss_sold_date_sk": u(ndv=1823, lo=2_450_816, hi=2_452_642,
                                 null_frac=0.02),
            "ss_customer_sk": u(ndv=counts["customer"], lo=1,
                                hi=counts["customer"], null_frac=0.02),
            "ss_cdemo_sk": u(ndv=1_000_000, lo=1, hi=1_920_800, null_frac=0.02),
            "ss_hdemo_sk": u(ndv=7200, lo=1, hi=7200, null_frac=0.02),
            "ss_addr_sk": u(ndv=counts["customer_address"], lo=1,
                            hi=counts["customer_address"], null_frac=0.02),
            "ss_store_sk": u(ndv=max(1, counts["store"] // 2), lo=1,
                             hi=counts["store"], null_frac=0.02),
            "ss_promo_sk": u(ndv=counts["promotion"], lo=1,
                             hi=counts["promotion"], null_frac=0.02),
            "ss_quantity": u(ndv=100, lo=1, hi=100),
            "ss_sales_price": u(ndv=20_000, lo=0, hi=200),
            "ss_ext_sales_price": u(ndv=100_000, lo=0, hi=20_000),
            "ss_net_profit": u(ndv=100_000, lo=-10_000, hi=10_000),
        },
        "store_returns": {
            "sr_item_sk": u(ndv=counts["item"], lo=1, hi=counts["item"]),
            "sr_ticket_number": u(
                ndv=max(1, counts["store_returns"] // 2), lo=1,
                hi=max(2, counts["store_sales"] // 2),
            ),
            "sr_returned_date_sk": u(ndv=2003, lo=2_450_820, hi=2_452_822,
                                     null_frac=0.03),
            "sr_customer_sk": u(ndv=counts["customer"], lo=1,
                                hi=counts["customer"], null_frac=0.03),
            "sr_return_amt": u(ndv=50_000, lo=0, hi=19_000),
        },
        "catalog_sales": {
            "cs_item_sk": u(ndv=counts["item"], lo=1, hi=counts["item"]),
            "cs_order_number": u(
                ndv=max(1, counts["catalog_sales"] // 6), lo=1,
                hi=max(2, counts["catalog_sales"]),
            ),
            "cs_sold_date_sk": u(ndv=1823, lo=2_450_816, hi=2_452_642),
            "cs_bill_customer_sk": u(ndv=counts["customer"], lo=1,
                                     hi=counts["customer"]),
            "cs_quantity": u(ndv=100, lo=1, hi=100),
            "cs_ext_sales_price": u(ndv=100_000, lo=0, hi=20_000),
        },
    }


def tpcds_database(
    scale_factor: float = 1.0,
    params: CostParams = INNODB,
    name: str = "tpcds",
) -> Database:
    """A stats-only core-TPC-DS database at the given scale factor."""
    db = Database.from_tables(
        tpcds_tables(), params=params, with_storage=False,
        name=f"{name}-sf{scale_factor:g}",
    )
    counts = row_counts(scale_factor)
    for table, spec in _specs(counts).items():
        db.set_stats(table, synthesize_table(counts[table], spec))
    return db
