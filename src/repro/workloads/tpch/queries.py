"""The 22 TPC-H query templates, expressed in the supported SQL subset.

Every template keeps the original query's *access-pattern structure* --
filters, join graph, grouping and ordering -- which is all an index
advisor consumes.  Deviations from the official text (all documented
per query):

* dates are integer day offsets (see :mod:`.schema`),
* correlated / scalar subqueries are flattened into joins or constant
  thresholds (Q2, Q4, Q11, Q13, Q15, Q17, Q18, Q20, Q21, Q22),
* ``EXTRACT(YEAR ...)`` becomes integer division by 365 (Q7-Q9),
* CASE expressions inside aggregates are dropped or reduced (Q8, Q12,
  Q14).

Default substitution parameters follow the specification's validation
values; pass an ``rng`` for randomized parameter instantiation.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .schema import day

Rng = Optional[random.Random]

_SEGMENTS = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = ["FRANCE", "GERMANY", "BRAZIL", "CANADA", "JAPAN", "INDIA",
            "ARGENTINA", "SAUDI ARABIA", "EGYPT", "KENYA"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
               "LG BOX", "JUMBO PACK", "WRAP CASE"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_TYPES = ["ECONOMY ANODIZED STEEL", "STANDARD POLISHED COPPER",
          "PROMO BURNISHED NICKEL", "MEDIUM PLATED BRASS"]


def _choice(rng: Rng, options, default_index: int = 0):
    if rng is None:
        return options[default_index]
    return rng.choice(options)


def q1(rng: Rng = None) -> str:
    delta = 90 if rng is None else rng.randint(60, 120)
    cutoff = day(1998, 12, 1) - delta
    return (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
        "SUM(l_extendedprice), SUM(l_extendedprice * (1 - l_discount)), "
        "AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) "
        f"FROM lineitem WHERE l_shipdate <= {cutoff} "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    )


def q2(rng: Rng = None) -> str:
    # Min-supplycost correlated subquery flattened into the join.
    size = 15 if rng is None else rng.randint(1, 50)
    region = _choice(rng, _REGIONS, 3)
    return (
        "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, "
        "s_phone, s_comment "
        "FROM part, supplier, partsupp, nation, region "
        "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey "
        f"AND p_size = {size} AND p_type LIKE '%BRASS' "
        "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        f"AND r_name = '{region}' "
        "ORDER BY s_acctbal DESC LIMIT 100"
    )


def q3(rng: Rng = None) -> str:
    segment = _choice(rng, _SEGMENTS, 0)
    pivot = day(1995, 3, 15) if rng is None else day(1995, 3, rng.randint(1, 28))
    return (
        "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)), "
        "o_orderdate, o_shippriority "
        "FROM customer, orders, lineitem "
        f"WHERE c_mktsegment = '{segment}' AND c_custkey = o_custkey "
        f"AND l_orderkey = o_orderkey AND o_orderdate < {pivot} "
        f"AND l_shipdate > {pivot} "
        "GROUP BY l_orderkey, o_orderdate, o_shippriority "
        "ORDER BY o_orderdate LIMIT 10"
    )


def q4(rng: Rng = None) -> str:
    # EXISTS flattened into an inner join on lineitem.
    start = day(1993, 7, 1) if rng is None else day(
        rng.randint(1993, 1997), rng.choice([1, 4, 7, 10]), 1
    )
    return (
        "SELECT o_orderpriority, COUNT(*) "
        "FROM orders, lineitem "
        f"WHERE o_orderdate >= {start} AND o_orderdate < {start + 92} "
        "AND l_orderkey = o_orderkey AND l_commitdate < l_receiptdate "
        "GROUP BY o_orderpriority ORDER BY o_orderpriority"
    )


def q5(rng: Rng = None) -> str:
    region = _choice(rng, _REGIONS, 2)
    start = day(1994, 1, 1) if rng is None else day(rng.randint(1993, 1997), 1, 1)
    return (
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM customer, orders, lineitem, supplier, nation, region "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
        "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
        "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        f"AND r_name = '{region}' AND o_orderdate >= {start} "
        f"AND o_orderdate < {start + 365} "
        "GROUP BY n_name "
        "ORDER BY SUM(l_extendedprice * (1 - l_discount)) DESC"
    )


def q6(rng: Rng = None) -> str:
    start = day(1994, 1, 1) if rng is None else day(rng.randint(1993, 1997), 1, 1)
    discount = 0.06 if rng is None else round(rng.uniform(0.02, 0.09), 2)
    quantity = 24 if rng is None else rng.randint(24, 25)
    return (
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
        f"WHERE l_shipdate >= {start} AND l_shipdate < {start + 365} "
        f"AND l_discount BETWEEN {discount - 0.01:.2f} AND {discount + 0.01:.2f} "
        f"AND l_quantity < {quantity}"
    )


def q7(rng: Rng = None) -> str:
    n1 = _choice(rng, _NATIONS, 0)
    n2 = _choice(rng, [n for n in _NATIONS if n != n1], 1)
    return (
        "SELECT n1.n_name, n2.n_name, l_shipdate / 365, "
        "SUM(l_extendedprice * (1 - l_discount)) "
        "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
        "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
        "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey "
        "AND c_nationkey = n2.n_nationkey "
        f"AND ((n1.n_name = '{n1}' AND n2.n_name = '{n2}') "
        f"OR (n1.n_name = '{n2}' AND n2.n_name = '{n1}')) "
        f"AND l_shipdate BETWEEN {day(1995, 1, 1)} AND {day(1996, 12, 31)} "
        "GROUP BY n1.n_name, n2.n_name, l_shipdate / 365 "
        "ORDER BY n1.n_name, n2.n_name"
    )


def q8(rng: Rng = None) -> str:
    nation = _choice(rng, _NATIONS, 2)
    region = _choice(rng, _REGIONS, 1)
    ptype = _choice(rng, _TYPES, 0)
    return (
        "SELECT o_orderdate / 365, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM part, supplier, lineitem, orders, customer, nation n1, "
        "nation n2, region "
        "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey "
        "AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
        "AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey "
        f"AND r_name = '{region}' AND s_nationkey = n2.n_nationkey "
        f"AND o_orderdate BETWEEN {day(1995, 1, 1)} AND {day(1996, 12, 31)} "
        f"AND p_type = '{ptype}' "
        "GROUP BY o_orderdate / 365 ORDER BY o_orderdate / 365"
    )


def q9(rng: Rng = None) -> str:
    fragment = "green" if rng is None else rng.choice(
        ["green", "blue", "red", "ivory", "peach"]
    )
    return (
        "SELECT n_name, o_orderdate / 365, "
        "SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) "
        "FROM part, supplier, lineitem, partsupp, orders, nation "
        "WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey "
        "AND ps_partkey = l_partkey AND p_partkey = l_partkey "
        "AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
        f"AND p_name LIKE '%{fragment}%' "
        "GROUP BY n_name, o_orderdate / 365 "
        "ORDER BY n_name, o_orderdate / 365 DESC"
    )


def q10(rng: Rng = None) -> str:
    start = day(1993, 10, 1) if rng is None else day(
        rng.randint(1993, 1995), rng.choice([1, 4, 7, 10]), 1
    )
    return (
        "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)), "
        "c_acctbal, n_name, c_address, c_phone, c_comment "
        "FROM customer, orders, lineitem, nation "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
        f"AND o_orderdate >= {start} AND o_orderdate < {start + 92} "
        "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
        "GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, "
        "c_address, c_comment "
        "ORDER BY SUM(l_extendedprice * (1 - l_discount)) DESC LIMIT 20"
    )


def q11(rng: Rng = None) -> str:
    # Scalar-subquery threshold flattened to a constant HAVING bound.
    nation = _choice(rng, _NATIONS, 1)
    threshold = 7_500_000 if rng is None else rng.randint(5_000_000, 10_000_000)
    return (
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) "
        "FROM partsupp, supplier, nation "
        "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
        f"AND n_name = '{nation}' "
        "GROUP BY ps_partkey "
        f"HAVING SUM(ps_supplycost * ps_availqty) > {threshold} "
        "ORDER BY SUM(ps_supplycost * ps_availqty) DESC"
    )


def q12(rng: Rng = None) -> str:
    m1 = _choice(rng, _SHIPMODES, 5)
    m2 = _choice(rng, [m for m in _SHIPMODES if m != m1], 4)
    start = day(1994, 1, 1) if rng is None else day(rng.randint(1993, 1997), 1, 1)
    return (
        "SELECT l_shipmode, COUNT(*) "
        "FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey "
        f"AND l_shipmode IN ('{m1}', '{m2}') "
        "AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate "
        f"AND l_receiptdate >= {start} AND l_receiptdate < {start + 365} "
        "GROUP BY l_shipmode ORDER BY l_shipmode"
    )


def q13(rng: Rng = None) -> str:
    # LEFT OUTER JOIN kept; the NOT LIKE comment filter is preserved.
    word = "special" if rng is None else rng.choice(
        ["special", "pending", "unusual", "express"]
    )
    return (
        "SELECT c_custkey, COUNT(*) "
        "FROM customer LEFT JOIN orders ON c_custkey = o_custkey "
        f"AND o_comment NOT LIKE '%{word}%requests%' "
        "GROUP BY c_custkey ORDER BY COUNT(*) DESC LIMIT 100"
    )


def q14(rng: Rng = None) -> str:
    start = day(1995, 9, 1) if rng is None else day(
        rng.randint(1993, 1997), rng.randint(1, 12), 1
    )
    return (
        "SELECT SUM(l_extendedprice * (1 - l_discount)) "
        "FROM lineitem, part "
        "WHERE l_partkey = p_partkey "
        f"AND l_shipdate >= {start} AND l_shipdate < {start + 30}"
    )


def q15(rng: Rng = None) -> str:
    # The revenue view is inlined; the max() comparison becomes LIMIT 1.
    start = day(1996, 1, 1) if rng is None else day(
        rng.randint(1993, 1997), rng.choice([1, 4, 7, 10]), 1
    )
    return (
        "SELECT s_suppkey, s_name, s_address, s_phone, "
        "SUM(l_extendedprice * (1 - l_discount)) "
        "FROM supplier, lineitem "
        "WHERE s_suppkey = l_suppkey "
        f"AND l_shipdate >= {start} AND l_shipdate < {start + 92} "
        "GROUP BY s_suppkey, s_name, s_address, s_phone "
        "ORDER BY SUM(l_extendedprice * (1 - l_discount)) DESC LIMIT 1"
    )


def q16(rng: Rng = None) -> str:
    brand = _choice(rng, _BRANDS, 20)
    sizes = "1, 4, 7, 14, 23, 25, 36, 45" if rng is None else ", ".join(
        str(s) for s in sorted(rng.sample(range(1, 51), 8))
    )
    return (
        "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) "
        "FROM partsupp, part "
        "WHERE p_partkey = ps_partkey "
        f"AND p_brand != '{brand}' AND p_type NOT LIKE 'MEDIUM POLISHED%' "
        f"AND p_size IN ({sizes}) "
        "GROUP BY p_brand, p_type, p_size "
        "ORDER BY COUNT(DISTINCT ps_suppkey) DESC, p_brand, p_type, p_size"
    )


def q17(rng: Rng = None) -> str:
    # The avg-quantity correlated subquery becomes a constant bound.
    brand = _choice(rng, _BRANDS, 5)
    container = _choice(rng, _CONTAINERS, 3)
    return (
        "SELECT SUM(l_extendedprice) / 7 "
        "FROM lineitem, part "
        "WHERE p_partkey = l_partkey "
        f"AND p_brand = '{brand}' AND p_container = '{container}' "
        "AND l_quantity < 3"
    )


def q18(rng: Rng = None) -> str:
    quantity = 300 if rng is None else rng.randint(300, 315)
    return (
        "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
        "SUM(l_quantity) "
        "FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
        f"HAVING SUM(l_quantity) > {quantity} "
        "ORDER BY o_totalprice DESC LIMIT 100"
    )


def q19(rng: Rng = None) -> str:
    # The canonical complex AND-OR showcase; kept structurally faithful.
    b1 = _choice(rng, _BRANDS, 11)
    b2 = _choice(rng, _BRANDS, 17)
    b3 = _choice(rng, _BRANDS, 23)
    q1_, q2_, q3_ = (1, 10, 20) if rng is None else (
        rng.randint(1, 10), rng.randint(10, 20), rng.randint(20, 30)
    )
    return (
        "SELECT SUM(l_extendedprice * (1 - l_discount)) "
        "FROM lineitem, part "
        "WHERE p_partkey = l_partkey "
        "AND l_shipinstruct = 'DELIVER IN PERSON' "
        "AND l_shipmode IN ('AIR', 'REG AIR') "
        f"AND ((p_brand = '{b1}' "
        "AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') "
        f"AND l_quantity BETWEEN {q1_} AND {q1_ + 10} "
        "AND p_size BETWEEN 1 AND 5) "
        f"OR (p_brand = '{b2}' "
        "AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') "
        f"AND l_quantity BETWEEN {q2_} AND {q2_ + 10} "
        "AND p_size BETWEEN 1 AND 10) "
        f"OR (p_brand = '{b3}' "
        "AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') "
        f"AND l_quantity BETWEEN {q3_} AND {q3_ + 10} "
        "AND p_size BETWEEN 1 AND 15))"
    )


def q20(rng: Rng = None) -> str:
    # Nested IN-subqueries flattened into the partsupp join.
    nation = _choice(rng, _NATIONS, 4)
    fragment = "forest" if rng is None else rng.choice(
        ["forest", "azure", "chocolate", "salmon"]
    )
    qty = 100 if rng is None else rng.randint(50, 500)
    return (
        "SELECT s_name, s_address "
        "FROM supplier, nation, partsupp, part "
        "WHERE s_nationkey = n_nationkey AND ps_suppkey = s_suppkey "
        "AND ps_partkey = p_partkey "
        f"AND n_name = '{nation}' AND p_name LIKE '{fragment}%' "
        f"AND ps_availqty > {qty} "
        "ORDER BY s_name"
    )


def q21(rng: Rng = None) -> str:
    # EXISTS / NOT EXISTS on sibling lineitems dropped; the waiting-orders
    # join core is preserved (the query the paper calls out in Fig 5 --
    # AIM picks a covering index here).
    nation = _choice(rng, _NATIONS, 5)
    return (
        "SELECT s_name, COUNT(*) "
        "FROM supplier, lineitem l1, orders, nation "
        "WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey "
        "AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate "
        f"AND s_nationkey = n_nationkey AND n_name = '{nation}' "
        "GROUP BY s_name ORDER BY COUNT(*) DESC, s_name LIMIT 100"
    )


def q22(rng: Rng = None) -> str:
    # substring(c_phone, 1, 2) IN (...) becomes a LIKE prefix disjunction;
    # the NOT EXISTS(orders) anti-join is dropped.
    prefixes = ["13", "31", "23", "29", "30", "18", "17"] if rng is None else [
        str(p) for p in rng.sample(range(10, 35), 7)
    ]
    likes = " OR ".join(f"c_phone LIKE '{p}%'" for p in prefixes)
    balance = 0.0 if rng is None else round(rng.uniform(0.0, 500.0), 2)
    return (
        "SELECT c_custkey, c_acctbal "
        f"FROM customer WHERE c_acctbal > {balance} AND ({likes}) "
        "ORDER BY c_acctbal DESC LIMIT 100"
    )


#: All templates in order; index 0 is Q1.
TEMPLATES: list[Callable[[Rng], str]] = [
    q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
    q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
]
