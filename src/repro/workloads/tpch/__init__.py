"""TPC-H benchmark: schema, statistics, data generation, 22 queries."""

import random
from typing import Optional

from ...workload import Workload
from .datagen import load_tpch
from .queries import TEMPLATES
from .schema import MAX_DAY, day, row_counts, tpch_database, tpch_tables


def tpch_workload(seed: Optional[int] = None) -> Workload:
    """The 22-query TPC-H workload (validation parameters when unseeded)."""
    rng = random.Random(seed) if seed is not None else None
    queries = []
    for i, template in enumerate(TEMPLATES):
        queries.append((template(rng), 1.0))
    workload = Workload.from_sql(queries, name="tpch")
    for i, query in enumerate(workload.queries):
        query.name = f"Q{i + 1}"
    return workload


__all__ = [
    "tpch_database",
    "tpch_tables",
    "tpch_workload",
    "load_tpch",
    "row_counts",
    "day",
    "MAX_DAY",
    "TEMPLATES",
]
