"""TPC-H schema and scale-factor-parameterized statistics.

Two ways to get a TPC-H database:

* :func:`tpch_database` -- stats-only, any scale factor.  Row counts and
  column NDVs follow the TPC-H specification; this is what the estimated
  cost experiments (Fig 4a/b, Fig 5) run on, mirroring the paper's use of
  HypoPG (optimizer statistics, no data).
* :func:`repro.workloads.tpch.datagen.load_tpch` -- materialized rows at
  small scale factors for executor-backed integration tests.

Dates are represented as integer day offsets from 1992-01-01 (the
substitution is documented in DESIGN.md); :func:`day` converts calendar
dates for query constants.
"""

from __future__ import annotations

import datetime

from ...catalog import Column, Table, char, varchar, BIGINT, DATE, DECIMAL, INT
from ...engine import Database, INNODB, CostParams
from ...stats import SyntheticColumn, synthesize_table

_EPOCH = datetime.date(1992, 1, 1)
#: Highest shipping date in TPC-H data (1998-12-01 + receipt lag).
MAX_DAY = (datetime.date(1998, 12, 31) - _EPOCH).days


def day(year: int, month: int = 1, dom: int = 1) -> int:
    """Calendar date -> integer day offset used by the schema."""
    return (datetime.date(year, month, dom) - _EPOCH).days


def row_counts(scale_factor: float) -> dict[str, int]:
    """TPC-H table cardinalities at a scale factor."""
    sf = scale_factor
    return {
        "region": 5,
        "nation": 25,
        "supplier": int(10_000 * sf),
        "customer": int(150_000 * sf),
        "part": int(200_000 * sf),
        "partsupp": int(800_000 * sf),
        "orders": int(1_500_000 * sf),
        "lineitem": int(6_000_000 * sf),
    }


def tpch_tables() -> list[Table]:
    """The eight TPC-H tables."""
    return [
        Table("region", [
            Column("r_regionkey", INT),
            Column("r_name", char(12)),
            Column("r_comment", varchar(60)),
        ], ("r_regionkey",)),
        Table("nation", [
            Column("n_nationkey", INT),
            Column("n_name", char(15)),
            Column("n_regionkey", INT),
            Column("n_comment", varchar(70)),
        ], ("n_nationkey",)),
        Table("supplier", [
            Column("s_suppkey", INT),
            Column("s_name", char(18)),
            Column("s_address", varchar(20)),
            Column("s_nationkey", INT),
            Column("s_phone", char(15)),
            Column("s_acctbal", DECIMAL),
            Column("s_comment", varchar(60)),
        ], ("s_suppkey",)),
        Table("customer", [
            Column("c_custkey", INT),
            Column("c_name", varchar(18)),
            Column("c_address", varchar(20)),
            Column("c_nationkey", INT),
            Column("c_phone", char(15)),
            Column("c_acctbal", DECIMAL),
            Column("c_mktsegment", char(10)),
            Column("c_comment", varchar(70)),
        ], ("c_custkey",)),
        Table("part", [
            Column("p_partkey", INT),
            Column("p_name", varchar(35)),
            Column("p_mfgr", char(25)),
            Column("p_brand", char(10)),
            Column("p_type", varchar(25)),
            Column("p_size", INT),
            Column("p_container", char(10)),
            Column("p_retailprice", DECIMAL),
            Column("p_comment", varchar(15)),
        ], ("p_partkey",)),
        Table("partsupp", [
            Column("ps_partkey", INT),
            Column("ps_suppkey", INT),
            Column("ps_availqty", INT),
            Column("ps_supplycost", DECIMAL),
            Column("ps_comment", varchar(120)),
        ], ("ps_partkey", "ps_suppkey")),
        Table("orders", [
            Column("o_orderkey", BIGINT),
            Column("o_custkey", INT),
            Column("o_orderstatus", char(1)),
            Column("o_totalprice", DECIMAL),
            Column("o_orderdate", DATE),
            Column("o_orderpriority", char(15)),
            Column("o_clerk", char(15)),
            Column("o_shippriority", INT),
            Column("o_comment", varchar(50)),
        ], ("o_orderkey",)),
        Table("lineitem", [
            Column("l_orderkey", BIGINT),
            Column("l_partkey", INT),
            Column("l_suppkey", INT),
            Column("l_linenumber", INT),
            Column("l_quantity", DECIMAL),
            Column("l_extendedprice", DECIMAL),
            Column("l_discount", DECIMAL),
            Column("l_tax", DECIMAL),
            Column("l_returnflag", char(1)),
            Column("l_linestatus", char(1)),
            Column("l_shipdate", DATE),
            Column("l_commitdate", DATE),
            Column("l_receiptdate", DATE),
            Column("l_shipinstruct", char(25)),
            Column("l_shipmode", char(10)),
            Column("l_comment", varchar(30)),
        ], ("l_orderkey", "l_linenumber")),
    ]


def _column_specs(counts: dict[str, int]) -> dict[str, dict[str, SyntheticColumn]]:
    """Per-table synthetic stats specs matching TPC-H distributions."""
    u = SyntheticColumn   # shorthand
    return {
        "region": {
            "r_regionkey": u(ndv=-1, lo=0, hi=4),
            "r_name": u(ndv=5),
            "r_comment": u(ndv=5),
        },
        "nation": {
            "n_nationkey": u(ndv=-1, lo=0, hi=24),
            "n_name": u(ndv=25),
            "n_regionkey": u(ndv=5, lo=0, hi=4),
            "n_comment": u(ndv=25),
        },
        "supplier": {
            "s_suppkey": u(ndv=-1, lo=1, hi=counts["supplier"]),
            "s_name": u(ndv=-1),
            "s_address": u(ndv=-1),
            "s_nationkey": u(ndv=25, lo=0, hi=24),
            "s_phone": u(ndv=-1),
            "s_acctbal": u(ndv=counts["supplier"] // 2, lo=-999, hi=9999),
            "s_comment": u(ndv=-1),
        },
        "customer": {
            "c_custkey": u(ndv=-1, lo=1, hi=counts["customer"]),
            "c_name": u(ndv=-1),
            "c_address": u(ndv=-1),
            "c_nationkey": u(ndv=25, lo=0, hi=24),
            "c_phone": u(ndv=-1),
            "c_acctbal": u(ndv=counts["customer"] // 2, lo=-999, hi=9999),
            "c_mktsegment": u(ndv=5),
            "c_comment": u(ndv=-1),
        },
        "part": {
            "p_partkey": u(ndv=-1, lo=1, hi=counts["part"]),
            "p_name": u(ndv=-1),
            "p_mfgr": u(ndv=5),
            "p_brand": u(ndv=25),
            "p_type": u(ndv=150),
            "p_size": u(ndv=50, lo=1, hi=50),
            "p_container": u(ndv=40),
            "p_retailprice": u(ndv=counts["part"] // 4, lo=900, hi=2100),
            "p_comment": u(ndv=counts["part"] // 2),
        },
        "partsupp": {
            "ps_partkey": u(ndv=counts["part"], lo=1, hi=counts["part"]),
            "ps_suppkey": u(ndv=counts["supplier"], lo=1, hi=counts["supplier"]),
            "ps_availqty": u(ndv=9999, lo=1, hi=9999),
            "ps_supplycost": u(ndv=99_901, lo=1, hi=1000),
            "ps_comment": u(ndv=-1),
        },
        "orders": {
            "o_orderkey": u(ndv=-1, lo=1, hi=counts["orders"] * 4),
            "o_custkey": u(ndv=max(1, counts["customer"] * 2 // 3),
                           lo=1, hi=counts["customer"]),
            "o_orderstatus": u(ndv=3),
            "o_totalprice": u(ndv=counts["orders"] // 2, lo=800, hi=560_000),
            "o_orderdate": u(ndv=2_400, lo=0, hi=MAX_DAY - 151),
            "o_orderpriority": u(ndv=5),
            "o_clerk": u(ndv=max(1, counts["orders"] // 1500)),
            "o_shippriority": u(ndv=1, lo=0, hi=0),
            "o_comment": u(ndv=-1),
        },
        "lineitem": {
            "l_orderkey": u(ndv=counts["orders"], lo=1, hi=counts["orders"] * 4),
            "l_partkey": u(ndv=counts["part"], lo=1, hi=counts["part"]),
            "l_suppkey": u(ndv=counts["supplier"], lo=1, hi=counts["supplier"]),
            "l_linenumber": u(ndv=7, lo=1, hi=7),
            "l_quantity": u(ndv=50, lo=1, hi=50),
            "l_extendedprice": u(ndv=counts["lineitem"] // 4, lo=900, hi=105_000),
            "l_discount": u(ndv=11, lo=0.0, hi=0.1),
            "l_tax": u(ndv=9, lo=0.0, hi=0.08),
            "l_returnflag": u(ndv=3),
            "l_linestatus": u(ndv=2),
            "l_shipdate": u(ndv=2_526, lo=1, hi=MAX_DAY),
            "l_commitdate": u(ndv=2_466, lo=30, hi=MAX_DAY),
            "l_receiptdate": u(ndv=2_554, lo=2, hi=MAX_DAY),
            "l_shipinstruct": u(ndv=4),
            "l_shipmode": u(ndv=7),
            "l_comment": u(ndv=-1),
        },
    }


def tpch_database(
    scale_factor: float = 1.0,
    params: CostParams = INNODB,
    name: str = "tpch",
) -> Database:
    """A stats-only TPC-H database at the given scale factor."""
    db = Database.from_tables(
        tpch_tables(), params=params, with_storage=False,
        name=f"{name}-sf{scale_factor:g}",
    )
    counts = row_counts(scale_factor)
    specs = _column_specs(counts)
    for table, spec in specs.items():
        db.set_stats(table, synthesize_table(counts[table], spec))
    return db
