"""TPC-H data generation for executor-backed tests.

Generates rows whose distributions match the synthetic statistics of
:mod:`.schema` closely enough for plan/selectivity validation.  Intended
for small scale factors (<= 0.05); the estimated-cost experiments use
stats-only databases instead.
"""

from __future__ import annotations

import random

from ...engine import Database, INNODB, CostParams
from .schema import MAX_DAY, row_counts, tpch_tables

_SEGMENTS = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]
_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_STATUSES = ["F", "O", "P"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
               "LG BOX", "JUMBO PACK", "WRAP CASE"]
_NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
_TYPE_WORDS1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_WORDS2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_WORDS3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_NAME_WORDS = ["green", "blue", "red", "ivory", "peach", "forest", "azure",
               "chocolate", "salmon", "linen"]


def load_tpch(
    scale_factor: float = 0.01,
    seed: int = 42,
    params: CostParams = INNODB,
) -> Database:
    """Build and populate a stored TPC-H database, then ANALYZE it."""
    rng = random.Random(seed)
    db = Database.from_tables(
        tpch_tables(), params=params, with_storage=True,
        name=f"tpch-data-sf{scale_factor:g}",
    )
    counts = row_counts(scale_factor)

    db.load_rows("region", (
        {"r_regionkey": i, "r_name": _REGION_NAMES[i], "r_comment": f"region {i}"}
        for i in range(5)
    ))
    db.load_rows("nation", (
        {
            "n_nationkey": i,
            "n_name": _NATION_NAMES[i],
            "n_regionkey": i % 5,
            "n_comment": f"nation {i}",
        }
        for i in range(25)
    ))
    db.load_rows("supplier", (
        {
            "s_suppkey": i + 1,
            "s_name": f"Supplier#{i + 1:09d}",
            "s_address": f"addr{i}",
            "s_nationkey": rng.randrange(25),
            "s_phone": f"{rng.randint(10, 34)}-{rng.randint(100, 999)}",
            "s_acctbal": round(rng.uniform(-999, 9999), 2),
            "s_comment": f"comment {i}",
        }
        for i in range(counts["supplier"])
    ))
    db.load_rows("customer", (
        {
            "c_custkey": i + 1,
            "c_name": f"Customer#{i + 1:09d}",
            "c_address": f"caddr{i}",
            "c_nationkey": rng.randrange(25),
            "c_phone": f"{rng.randint(10, 34)}-{rng.randint(100, 999)}",
            "c_acctbal": round(rng.uniform(-999, 9999), 2),
            "c_mktsegment": rng.choice(_SEGMENTS),
            "c_comment": f"ccomment {i}",
        }
        for i in range(counts["customer"])
    ))
    db.load_rows("part", (
        {
            "p_partkey": i + 1,
            "p_name": " ".join(rng.sample(_NAME_WORDS, 3)),
            "p_mfgr": f"Manufacturer#{rng.randint(1, 5)}",
            "p_brand": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            "p_type": (
                f"{rng.choice(_TYPE_WORDS1)} {rng.choice(_TYPE_WORDS2)} "
                f"{rng.choice(_TYPE_WORDS3)}"
            ),
            "p_size": rng.randint(1, 50),
            "p_container": rng.choice(_CONTAINERS),
            "p_retailprice": round(900 + (i % 1000) + rng.uniform(0, 100), 2),
            "p_comment": f"pc{i}",
        }
        for i in range(counts["part"])
    ))
    db.load_rows("partsupp", (
        {
            "ps_partkey": (i % counts["part"]) + 1,
            "ps_suppkey": rng.randint(1, counts["supplier"]),
            "ps_availqty": rng.randint(1, 9999),
            "ps_supplycost": round(rng.uniform(1, 1000), 2),
            "ps_comment": f"psc{i}",
        }
        for i in range(counts["partsupp"])
    ))
    order_rows = []
    for i in range(counts["orders"]):
        order_rows.append({
            "o_orderkey": i + 1,
            "o_custkey": rng.randint(1, counts["customer"]),
            "o_orderstatus": rng.choice(_STATUSES),
            "o_totalprice": round(rng.uniform(800, 560_000), 2),
            "o_orderdate": rng.randint(0, MAX_DAY - 151),
            "o_orderpriority": rng.choice(_PRIORITIES),
            "o_clerk": f"Clerk#{rng.randint(1, max(1, counts['orders'] // 100))}",
            "o_shippriority": 0,
            "o_comment": rng.choice(
                ["regular deposits", "special requests handled", "quiet ideas"]
            ),
        })
    db.load_rows("orders", order_rows)
    lineitems = []
    i = 0
    while i < counts["lineitem"]:
        order = order_rows[rng.randrange(len(order_rows))]
        for line in range(1, rng.randint(1, 7) + 1):
            if i >= counts["lineitem"]:
                break
            ship = order["o_orderdate"] + rng.randint(1, 121)
            commit = order["o_orderdate"] + rng.randint(30, 90)
            receipt = ship + rng.randint(1, 30)
            lineitems.append({
                "l_orderkey": order["o_orderkey"],
                "l_partkey": rng.randint(1, counts["part"]),
                "l_suppkey": rng.randint(1, counts["supplier"]),
                "l_linenumber": line,
                "l_quantity": rng.randint(1, 50),
                "l_extendedprice": round(rng.uniform(900, 105_000), 2),
                "l_discount": round(rng.randint(0, 10) / 100, 2),
                "l_tax": round(rng.randint(0, 8) / 100, 2),
                "l_returnflag": rng.choice(["A", "N", "R"]),
                "l_linestatus": rng.choice(["F", "O"]),
                "l_shipdate": min(ship, MAX_DAY),
                "l_commitdate": min(commit, MAX_DAY),
                "l_receiptdate": min(receipt, MAX_DAY),
                "l_shipinstruct": rng.choice(_INSTRUCTS),
                "l_shipmode": rng.choice(_SHIPMODES),
                "l_comment": f"lc{i}",
            })
            i += 1
    db.load_rows("lineitem", lineitems)
    db.analyze()
    return db
