"""Workload query and statement-statistics records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sqlparser import ast, normalize_statement, parse


@dataclass
class WorkloadQuery:
    """One (normalized) query of a workload with its weight ``w_q``.

    The weight follows the paper's definition (Sec. II): execution
    frequency, CPU share, or a manually assigned importance.
    """

    sql: str
    weight: float = 1.0
    name: str = ""

    _stmt: Optional[ast.Statement] = field(default=None, repr=False, compare=False)
    _normalized_sql: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def stmt(self) -> ast.Statement:
        if self._stmt is None:
            self._stmt = parse(self.sql)
        return self._stmt

    @property
    def normalized_sql(self) -> str:
        # Memoized: advisors key per-query candidate maps on it, so it is
        # recomputed many times per query per run otherwise.
        if self._normalized_sql is None:
            self._normalized_sql = normalize_statement(self.stmt).to_sql()
        return self._normalized_sql

    @property
    def is_dml(self) -> bool:
        return isinstance(self.stmt, (ast.Insert, ast.Update, ast.Delete))


@dataclass
class QueryStatistics:
    """Aggregated execution statistics for one normalized query.

    This is the record the workload monitor exports (paper Sec. III-C):
    executions, CPU cost (including IOWAIT) and the rows read/sent that
    define the discarded data ratio.
    """

    normalized_sql: str
    executions: int = 0
    total_cpu: float = 0.0
    rows_read: int = 0
    rows_sent: int = 0
    example_sql: str = ""        # a concrete instance, for re-planning

    @property
    def cpu_avg(self) -> float:
        """Average CPU seconds per execution (``cpu_avg`` of Eq. 5)."""
        if self.executions == 0:
            return 0.0
        return self.total_cpu / self.executions

    @property
    def ddr_avg(self) -> float:
        """Discarded data ratio (Sec. III-A2): the ratio of data *sent* to
        data *read*, averaged across executions.  1.0 means every row read
        was returned; values near 0 mean almost all I/O was wasted."""
        if self.rows_read <= 0:
            return 1.0
        return min(1.0, max(0.0, self.rows_sent / self.rows_read))

    @property
    def expected_benefit(self) -> float:
        """Optimistic expected benefit ``B`` of Eq. 5:
        ``B = (1 - ddr_avg) * cpu_avg``.  Assumes all I/O not returned in
        the result set could be avoided by proper index structures."""
        return (1.0 - self.ddr_avg) * self.cpu_avg

    def record(self, cpu: float, rows_read: int, rows_sent: int) -> None:
        self.executions += 1
        self.total_cpu += cpu
        self.rows_read += rows_read
        self.rows_sent += rows_sent

    def merge(self, other: "QueryStatistics") -> None:
        """Aggregate statistics from another replica (Sec. VII-A)."""
        if other.normalized_sql != self.normalized_sql:
            raise ValueError("cannot merge statistics of different queries")
        self.executions += other.executions
        self.total_cpu += other.total_cpu
        self.rows_read += other.rows_read
        self.rows_sent += other.rows_sent
        if not self.example_sql:
            self.example_sql = other.example_sql
