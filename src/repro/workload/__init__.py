"""Workload representation and monitoring."""

from .monitor import MonitoredExecutor, WorkloadMonitor
from .query import QueryStatistics, WorkloadQuery
from .selection import (
    DEFAULT_BENEFIT_THRESHOLD,
    SelectionPolicy,
    select_representative_workload,
    tuning_targets,
)
from .workload import Workload

__all__ = [
    "Workload",
    "WorkloadQuery",
    "QueryStatistics",
    "WorkloadMonitor",
    "MonitoredExecutor",
    "SelectionPolicy",
    "select_representative_workload",
    "tuning_targets",
    "DEFAULT_BENEFIT_THRESHOLD",
]
