"""Workload container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .query import WorkloadQuery


@dataclass
class Workload:
    """A weighted set of queries (the paper's ``W``)."""

    queries: list[WorkloadQuery] = field(default_factory=list)
    name: str = "workload"

    @classmethod
    def from_sql(
        cls,
        statements: Iterable[str | tuple[str, float]],
        name: str = "workload",
    ) -> "Workload":
        """Build a workload from SQL strings or (sql, weight) pairs."""
        queries = []
        for i, item in enumerate(statements):
            if isinstance(item, tuple):
                sql, weight = item
            else:
                sql, weight = item, 1.0
            queries.append(WorkloadQuery(sql, weight, name=f"q{i + 1}"))
        return cls(queries, name)

    def __iter__(self) -> Iterator[WorkloadQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def add(self, query: WorkloadQuery) -> None:
        self.queries.append(query)

    @property
    def total_weight(self) -> float:
        return sum(q.weight for q in self.queries)

    def pairs(self) -> list[tuple[str, float]]:
        """(sql, weight) pairs for :meth:`CostEvaluator.workload_cost`."""
        return [(q.sql, q.weight) for q in self.queries]

    def selects_only(self) -> "Workload":
        """The read-only sub-workload (analytical benchmarks)."""
        return Workload(
            [q for q in self.queries if not q.is_dml], name=f"{self.name}-reads"
        )

    def by_name(self, name: str) -> Optional[WorkloadQuery]:
        for q in self.queries:
            if q.name == name:
                return q
        return None
