"""Representative workload selection (paper Sec. III-C).

From the monitor's per-normalized-query statistics, select the queries
worth tuning: frequent enough to matter (frequency threshold weeds out ad
hoc executions), with a high optimistic expected benefit
``B = (1 - ddr_avg) * cpu_avg`` (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .monitor import WorkloadMonitor
from .query import QueryStatistics, WorkloadQuery
from .workload import Workload

#: Paper's example benefit threshold: 1/20 of a CPU core (in CPU seconds
#: per execution-window second; we express it directly in cost units).
DEFAULT_BENEFIT_THRESHOLD = 0.05


@dataclass(frozen=True)
class SelectionPolicy:
    """Thresholds controlling representative workload selection.

    Attributes:
        min_executions: executions below this are considered spurious.
        min_benefit: minimum expected benefit ``B`` per Eq. 5.
        max_queries: optional cap on the number of selected queries
            ("only the top few most expensive queries account for most of
            the CPU utilization", Sec. V-A).
    """

    min_executions: int = 2
    min_benefit: float = DEFAULT_BENEFIT_THRESHOLD
    max_queries: int | None = None


def select_representative_workload(
    monitor: WorkloadMonitor,
    policy: SelectionPolicy = SelectionPolicy(),
    include_dml: bool = True,
) -> Workload:
    """Pick the queries that need tuning, weighted by execution count.

    DML statements never *trigger* tuning, but when ``include_dml`` is set
    they are carried along with zero benefit so that index maintenance
    overhead (Eq. 8) is accounted against the same workload.
    """
    selected: list[WorkloadQuery] = []
    carried: list[WorkloadQuery] = []
    candidates = monitor.top_by_benefit()
    for stats in candidates:
        query = WorkloadQuery(
            sql=stats.example_sql or stats.normalized_sql,
            weight=float(stats.executions),
            name=stats.normalized_sql[:60],
        )
        if query.is_dml:
            if include_dml and stats.executions >= policy.min_executions:
                carried.append(query)
            continue
        if stats.executions < policy.min_executions:
            continue
        if stats.expected_benefit < policy.min_benefit:
            continue
        selected.append(query)
        if policy.max_queries is not None and len(selected) >= policy.max_queries:
            break
    return Workload(selected + carried, name="representative")


def tuning_targets(
    monitor: WorkloadMonitor, policy: SelectionPolicy = SelectionPolicy()
) -> list[QueryStatistics]:
    """The SELECT statistics records passing the selection thresholds."""
    out = []
    for stats in monitor.top_by_benefit():
        if stats.executions < policy.min_executions:
            continue
        if stats.expected_benefit < policy.min_benefit:
            continue
        out.append(stats)
        if policy.max_queries is not None and len(out) >= policy.max_queries:
            break
    return out
