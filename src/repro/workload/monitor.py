"""Workload monitor: per-normalized-query execution statistics.

The monitor is the paper's statistics substrate (Sec. III-C, VII-A): every
statement execution is keyed by its normalized SQL and contributes CPU
cost, rows read and rows sent.  Two feeding modes exist:

* *measured*: wrap an :class:`~repro.executor.Executor` and record real
  execution metrics (replay experiments),
* *estimated*: record optimizer plans (stats-only experiments), where the
  plan's cost plays the role of measured CPU seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..engine import Database, ExecutionMetrics
from ..executor import ExecutionResult, Executor
from ..optimizer.plan import Plan
from ..sqlparser import normalize_sql
from .query import QueryStatistics


@dataclass
class WorkloadMonitor:
    """Aggregates execution statistics keyed by normalized query."""

    stats: dict[str, QueryStatistics] = field(default_factory=dict)

    def _entry(self, sql: str) -> QueryStatistics:
        normalized = normalize_sql(sql)
        entry = self.stats.get(normalized)
        if entry is None:
            entry = QueryStatistics(normalized_sql=normalized, example_sql=sql)
            self.stats[normalized] = entry
        if not entry.example_sql:
            entry.example_sql = sql
        return entry

    def record_execution(
        self, sql: str, metrics: ExecutionMetrics, cpu_seconds: float
    ) -> QueryStatistics:
        """Record one measured execution."""
        entry = self._entry(sql)
        entry.record(cpu_seconds, metrics.rows_read, metrics.rows_sent)
        return entry

    def record_plan(self, sql: str, plan: Plan) -> QueryStatistics:
        """Record one estimated execution from an optimizer plan."""
        entry = self._entry(sql)
        entry.record(
            plan.total_cost, int(plan.rows_examined), int(round(plan.rows_out))
        )
        return entry

    def top_by_benefit(self, limit: Optional[int] = None) -> list[QueryStatistics]:
        """Statistics ordered by expected benefit ``B`` (Eq. 5), descending."""
        ordered = sorted(
            self.stats.values(), key=lambda s: s.expected_benefit, reverse=True
        )
        return ordered[:limit] if limit is not None else ordered

    def merge(self, other: "WorkloadMonitor") -> None:
        """Merge statistics from another replica's monitor (Sec. VII-A)."""
        for normalized, entry in other.stats.items():
            mine = self.stats.get(normalized)
            if mine is None:
                self.stats[normalized] = replace(entry)
            else:
                mine.merge(entry)

    def digest(self, top: int = 5) -> dict:
        """Aggregate snapshot of the current window, shaped for the
        ``workload_digest`` journal event (see ``repro.obs.events``)."""
        entries = list(self.stats.values())
        return {
            "queries": len(entries),
            "executions": sum(s.executions for s in entries),
            "total_cpu": sum(s.total_cpu for s in entries),
            "rows_read": sum(s.rows_read for s in entries),
            "rows_sent": sum(s.rows_sent for s in entries),
            "top": tuple(
                {
                    "sql": s.normalized_sql,
                    "executions": s.executions,
                    "cpu_avg": s.cpu_avg,
                    "benefit": s.expected_benefit,
                }
                for s in self.top_by_benefit(limit=top)
            ),
        }

    def clear(self) -> None:
        self.stats.clear()


class MonitoredExecutor:
    """An executor wrapper feeding a :class:`WorkloadMonitor`."""

    def __init__(self, db: Database, monitor: Optional[WorkloadMonitor] = None):
        self.db = db
        self.executor = Executor(db)
        self.monitor = monitor or WorkloadMonitor()

    def execute(self, sql: str, analyze: bool = False) -> ExecutionResult:
        result = self.executor.execute(sql, analyze=analyze)
        cpu = result.metrics.cpu_seconds(self.db.params)
        self.monitor.record_execution(sql, result.metrics, cpu)
        return result
