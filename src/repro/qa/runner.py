"""The fuzz loop: generate -> check oracles -> shrink -> persist.

``run_fuzz`` drives ``iters`` seeded cases through the selected oracles.
Every violating case is (optionally) minimized with
:mod:`repro.qa.shrink` and written to ``qa_failures/seed<N>.json``
together with its violations and a replay command; the run is also
observable -- ``qa.fuzz.*`` counters in the metrics registry and one
``oracle_violation`` journal event per violation.

``replay_case`` re-runs a persisted failure file, which is how a written
repro is debugged (and how CI validates that a nightly failure is still
live): ``repro fuzz --replay qa_failures/seed123.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import OracleViolation, counter, emit
from .generator import Case, GenConfig, generate_case
from .oracles import ORACLES, OracleConfig, Violation, run_oracles
from .shrink import shrink_case

Progress = Callable[[int, int, int], None]   # (iteration, total, failures)


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    iterations: int
    cases_run: int = 0
    oracle_names: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    failure_files: list[str] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "cases_run": self.cases_run,
            "oracles": list(self.oracle_names),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "failure_files": list(self.failure_files),
            "stopped_early": self.stopped_early,
        }


def run_fuzz(
    seed: int,
    iters: int,
    oracles: Optional[list[str]] = None,
    shrink: bool = False,
    out_dir: str = "qa_failures",
    gen_config: Optional[GenConfig] = None,
    oracle_config: Optional[OracleConfig] = None,
    max_failures: int = 5,
    progress: Optional[Progress] = None,
) -> FuzzReport:
    """Fuzz ``iters`` cases seeded ``seed``, ``seed+1``, ...

    Stops early once ``max_failures`` distinct cases have violated an
    oracle -- a systematically broken invariant fails every case, and a
    handful of shrunken repros beats three hundred identical ones.
    """
    names = oracles or list(ORACLES)
    for name in names:
        if name not in ORACLES:
            raise ValueError(
                f"unknown oracle {name!r}; choose from {sorted(ORACLES)}"
            )
    config = oracle_config or OracleConfig()
    report = FuzzReport(seed=seed, iterations=iters, oracle_names=names)
    failing_cases = 0
    for i in range(iters):
        case_seed = seed + i
        case = generate_case(case_seed, gen_config)
        counter("qa.fuzz.cases", "fuzz cases generated and checked").inc()
        for name in names:
            counter("qa.fuzz.oracle_checks", "oracle runs by oracle").labels(
                oracle=name
            ).inc()
        violations = run_oracles(case, names, config)
        report.cases_run += 1
        if violations:
            failing_cases += 1
            failed_oracles = sorted({v.oracle for v in violations})
            path = _handle_failure(
                case, violations, failed_oracles, shrink, out_dir, config
            )
            if path is not None:
                report.failure_files.append(path)
            for violation in violations:
                counter(
                    "qa.fuzz.violations", "oracle violations by oracle"
                ).labels(oracle=violation.oracle).inc()
                emit(OracleViolation(
                    oracle=violation.oracle,
                    seed=violation.seed,
                    statement=violation.statement,
                    detail=violation.detail,
                    shrunk=shrink,
                    case_file=path or "",
                ))
            report.violations.extend(violations)
        if progress is not None:
            progress(i + 1, iters, failing_cases)
        if failing_cases >= max_failures:
            report.stopped_early = True
            break
    return report


def _handle_failure(
    case: Case,
    violations: list[Violation],
    failed_oracles: list[str],
    shrink: bool,
    out_dir: str,
    config: OracleConfig,
) -> Optional[str]:
    shrunk = case
    if shrink:
        def still_failing(candidate: Case) -> bool:
            return bool(run_oracles(candidate, failed_oracles, config))

        shrunk = shrink_case(case, still_failing)
        violations = run_oracles(shrunk, failed_oracles, config) or violations
    return write_failure(shrunk, violations, out_dir, shrunk=shrink)


def write_failure(
    case: Case,
    violations: list[Violation],
    out_dir: str,
    shrunk: bool = False,
) -> Optional[str]:
    """Serialize a failing case (plus violations) for later replay."""
    try:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"seed{case.seed}.json")
        payload = {
            "case": case.to_dict(),
            "violations": [v.to_dict() for v in violations],
            "shrunk": shrunk,
            "replay": f"python -m repro.cli fuzz --replay {path}",
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
            fh.write("\n")
        return path
    except OSError:
        return None


def replay_case(
    path: str,
    oracles: Optional[list[str]] = None,
    oracle_config: Optional[OracleConfig] = None,
) -> FuzzReport:
    """Re-run the oracles against a persisted ``qa_failures/`` file."""
    with open(path) as fh:
        payload = json.load(fh)
    case = Case.from_dict(payload["case"])
    names = oracles or list(ORACLES)
    report = FuzzReport(
        seed=case.seed, iterations=1, cases_run=1, oracle_names=names
    )
    report.violations = run_oracles(case, names, oracle_config or OracleConfig())
    return report
