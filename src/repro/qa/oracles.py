"""Differential and metamorphic oracles over generated cases.

Each oracle takes a :class:`~repro.qa.generator.Case` and returns a list
of :class:`Violation` -- empty when every invariant holds:

``differential``
    The executing engine agrees row-for-row with the naive reference
    interpreter (:mod:`repro.qa.reference`), DML included, with and
    without a materialized secondary index; EXPLAIN ANALYZE root actuals
    equal the returned row count.
``selectivity``
    Estimates stay in [0, 1]; a conjunction's estimate never exceeds its
    cheapest conjunct; a disjunction's estimate lies between its largest
    term and the union bound (all modulo the ``MIN_SELECTIVITY`` floor).
``cost``
    Adding a usable index never increases a plan's estimated cost;
    adding an index on an unrelated table never changes it.
``whatif``
    A dataless (hypothetical) index costs exactly what its materialized
    twin costs, and the executed plan's root Q-error stays within a
    generous bound (estimates track actuals to within a constant
    factor on these tiny relations).
``advisor``
    Recommendations fit the storage budget, pass the Eq. 3 improvement
    gate, never raise any SELECT's estimated cost, and the *executed*
    SELECT workload under the recommended configuration is not
    materially worse than the no-index execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..catalog import Index
from ..core import AimAdvisor, AimConfig
from ..executor import Executor
from ..executor.analyze import q_error
from ..optimizer import CostEvaluator
from ..optimizer.selectivity import MIN_SELECTIVITY, expr_selectivity
from ..sqlparser import ast, parse
from ..workload import Workload, WorkloadQuery
from .generator import Case
from .reference import ReferenceDatabase, RefResult

#: Relative/absolute slack for exact-in-theory float comparisons.
_EPS = 1e-9


@dataclass
class Violation:
    """One oracle failure, carrying enough context to reproduce it."""

    oracle: str
    seed: int
    statement: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "seed": self.seed,
            "statement": self.statement,
            "detail": self.detail,
        }


@dataclass
class OracleConfig:
    """Tolerances for the metamorphic checks."""

    root_qerror_max: float = 512.0      # whatif: root est-vs-actual rows
    exec_factor: float = 1.5            # advisor: executed-cost regression cap
    exec_slack: float = 0.01            # ... plus absolute CPU-seconds slack
    exec_qerror_gate: float = 8.0       # ... only enforced when estimates hold
    advisor: AimConfig = field(default_factory=AimConfig)


Oracle = Callable[[Case, OracleConfig], list[Violation]]


# -- helpers ------------------------------------------------------------------


def _selects(case: Case) -> list[tuple[str, ast.Select]]:
    out = []
    for sql in case.statements:
        stmt = parse(sql)
        if isinstance(stmt, ast.Select):
            out.append((sql, stmt))
    return out


def _storage_rows(db, table: str) -> list[tuple]:
    storage = db._storage_for(table)
    table_obj = storage.table
    return [
        tuple(row.get(c) for c in table_obj.column_names)
        for row in storage.rows.values()
    ]


def _first_sargable(ev: CostEvaluator, case: Case) -> Optional[Index]:
    """A single-column index serving the first sargable filter found."""
    for sql, _stmt in _selects(case):
        info = ev.analyze(sql)
        for binding in info.bindings:
            for pred in info.sargable_filters(binding):
                table = info.bindings[binding]
                column = pred.column.column
                schema_table = ev.optimizer.db.schema.table(table)
                if (column,) == schema_table.primary_key[:1]:
                    continue
                return Index(table, (column,), dataless=True)
    return None


def _rows_digest(rows: list[tuple], limit: int = 6) -> str:
    sample = sorted(rows, key=repr)[:limit]
    suffix = "" if len(rows) <= limit else f" ... ({len(rows)} total)"
    return f"{sample}{suffix}"


# -- differential -------------------------------------------------------------


def differential_oracle(case: Case, config: OracleConfig) -> list[Violation]:
    violations: list[Violation] = []
    violations += _run_differential(case, with_index=False)
    violations += _run_differential(case, with_index=True)
    return violations


def _run_differential(case: Case, with_index: bool) -> list[Violation]:
    violations: list[Violation] = []
    db = case.database()
    label = "differential"
    if with_index:
        index = _first_sargable(CostEvaluator(db), case)
        if index is None:
            return []
        db.create_index(index.materialized())
        label = "differential+index"
    executor = Executor(db)
    reference = ReferenceDatabase(case.tables, case.rows)
    for sql in case.statements:
        stmt = parse(sql)
        try:
            expected = reference.execute(stmt)
        except Exception as exc:  # pragma: no cover - a reference bug
            violations.append(Violation(
                "differential", case.seed, sql,
                f"reference raised {type(exc).__name__}: {exc}",
            ))
            continue
        try:
            got = executor.execute(
                stmt, analyze=isinstance(stmt, ast.Select)
            )
        except Exception as exc:
            violations.append(Violation(
                "differential", case.seed, sql,
                f"[{label}] engine raised {type(exc).__name__}: {exc}",
            ))
            continue
        if isinstance(stmt, ast.Select):
            violations += _compare_select(
                case, sql, label, stmt, got, expected
            )
        else:
            violations += _compare_dml(
                case, sql, label, stmt, db, got.rowcount, expected, reference
            )
    return violations


def _compare_select(case, sql, label, stmt, got, expected: RefResult):
    violations = []
    if got.rowcount != len(got.rows):
        violations.append(Violation(
            "differential", case.seed, sql,
            f"[{label}] rowcount {got.rowcount} != len(rows) {len(got.rows)}",
        ))
    if got.actual is not None and got.actual.rows != got.rowcount:
        violations.append(Violation(
            "differential", case.seed, sql,
            f"[{label}] EXPLAIN ANALYZE root actual rows {got.actual.rows} "
            f"!= returned row count {got.rowcount}",
        ))
    if expected.ordered and expected.keys_unique:
        if got.rows != expected.rows:
            violations.append(Violation(
                "differential", case.seed, sql,
                f"[{label}] ordered rows differ: engine "
                f"{_rows_digest(got.rows)} vs reference "
                f"{_rows_digest(expected.rows)}",
            ))
    elif stmt.limit is not None and not expected.keys_unique:
        # Ties at the LIMIT boundary: only the count is well-defined.
        if got.rowcount != expected.rowcount:
            violations.append(Violation(
                "differential", case.seed, sql,
                f"[{label}] row count {got.rowcount} != reference "
                f"{expected.rowcount} (tied LIMIT)",
            ))
    elif Counter(got.rows) != Counter(expected.rows):
        violations.append(Violation(
            "differential", case.seed, sql,
            f"[{label}] row multisets differ: engine "
            f"{_rows_digest(got.rows)} vs reference "
            f"{_rows_digest(expected.rows)}",
        ))
    return violations


def _compare_dml(case, sql, label, stmt, db, rowcount,
                 expected: RefResult, reference: ReferenceDatabase):
    violations = []
    if rowcount != expected.rowcount:
        violations.append(Violation(
            "differential", case.seed, sql,
            f"[{label}] DML rowcount {rowcount} != reference "
            f"{expected.rowcount}",
        ))
    table = stmt.table.name
    engine_rows = _storage_rows(db, table)
    table_obj = reference.tables[table]
    ref_rows = [
        tuple(row.get(c) for c in table_obj.column_names)
        for row in reference.table_rows(table)
    ]
    if Counter(engine_rows) != Counter(ref_rows):
        violations.append(Violation(
            "differential", case.seed, sql,
            f"[{label}] table {table} diverged after DML: engine "
            f"{_rows_digest(engine_rows)} vs reference "
            f"{_rows_digest(ref_rows)}",
        ))
    return violations


# -- selectivity --------------------------------------------------------------


def selectivity_oracle(case: Case, config: OracleConfig) -> list[Violation]:
    violations: list[Violation] = []
    db = case.database()
    reference = ReferenceDatabase(case.tables, case.rows)
    for sql, stmt in _selects(case):
        if stmt.where is None:
            continue
        bindings = {ref.binding: ref.name for ref in stmt.tables}
        for join in stmt.joins:
            bindings[join.table.binding] = join.table.name

        def lookup(ref: ast.ColumnRef):
            binding = reference._resolve(ref, bindings)
            return db.stats.table(bindings[binding]).column(ref.column)

        try:
            sel = expr_selectivity(stmt.where, lookup)
        except Exception as exc:
            violations.append(Violation(
                "selectivity", case.seed, sql,
                f"expr_selectivity raised {type(exc).__name__}: {exc}",
            ))
            continue
        if not (0.0 <= sel <= 1.0):
            violations.append(Violation(
                "selectivity", case.seed, sql,
                f"selectivity {sel} outside [0, 1]",
            ))
        if isinstance(stmt.where, ast.And):
            parts = [expr_selectivity(i, lookup) for i in stmt.where.items]
            bound = max(min(parts), MIN_SELECTIVITY)
            if sel > bound + _EPS:
                violations.append(Violation(
                    "selectivity", case.seed, sql,
                    f"AND selectivity {sel} exceeds cheapest conjunct "
                    f"{bound} (parts {parts})",
                ))
            for part in parts:
                if not (0.0 <= part <= 1.0):
                    violations.append(Violation(
                        "selectivity", case.seed, sql,
                        f"conjunct selectivity {part} outside [0, 1]",
                    ))
        if isinstance(stmt.where, ast.Or):
            parts = [expr_selectivity(i, lookup) for i in stmt.where.items]
            low = max(parts)
            high = max(min(1.0, sum(parts)), MIN_SELECTIVITY)
            if not (low - _EPS <= sel <= high + _EPS):
                violations.append(Violation(
                    "selectivity", case.seed, sql,
                    f"OR selectivity {sel} outside [{low}, {high}] "
                    f"(parts {parts})",
                ))
    return violations


# -- plan cost ----------------------------------------------------------------


def cost_oracle(case: Case, config: OracleConfig) -> list[Violation]:
    violations: list[Violation] = []
    db = case.database()
    ev = CostEvaluator(db)
    for sql, _stmt in _selects(case):
        try:
            base = ev.cost(sql)
            info = ev.analyze(sql)
        except Exception as exc:
            violations.append(Violation(
                "cost", case.seed, sql,
                f"planner raised {type(exc).__name__}: {exc}",
            ))
            continue
        query_tables = list(info.bindings.values())
        usable = _first_sargable_for(ev, info)
        if usable is not None:
            improved = ev.cost(sql, [usable])
            if improved > base * (1 + _EPS) + _EPS:
                violations.append(Violation(
                    "cost", case.seed, sql,
                    f"cost rose from {base} to {improved} after adding "
                    f"usable index {usable.name}",
                ))
        irrelevant = _irrelevant_index(case, query_tables)
        if irrelevant is not None:
            unchanged = ev.cost(sql, [irrelevant])
            if unchanged != base:
                violations.append(Violation(
                    "cost", case.seed, sql,
                    f"cost changed from {base} to {unchanged} after adding "
                    f"irrelevant-table index {irrelevant.name}",
                ))
    return violations


def _first_sargable_for(ev: CostEvaluator, info) -> Optional[Index]:
    for binding in info.bindings:
        for pred in info.sargable_filters(binding):
            table = info.bindings[binding]
            column = pred.column.column
            if (column,) == ev.optimizer.db.schema.table(table).primary_key[:1]:
                continue
            return Index(table, (column,), dataless=True)
    return None


def _irrelevant_index(case: Case, query_tables: list[str]) -> Optional[Index]:
    for table in case.tables:
        if table.name in query_tables:
            continue
        for column in table.columns:
            if (column.name,) != table.primary_key[:1]:
                return Index(table.name, (column.name,), dataless=True)
    return None


# -- what-if vs materialized --------------------------------------------------


def whatif_oracle(case: Case, config: OracleConfig) -> list[Violation]:
    violations: list[Violation] = []
    db = case.database()
    ev = CostEvaluator(db)
    index = _first_sargable(ev, case)
    if index is None:
        return []
    materialized_db = case.database()
    materialized_db.create_index(index.materialized())
    executor = Executor(materialized_db)
    for sql, _stmt in _selects(case):
        hypo_cost = ev.cost(sql, [index])
        try:
            result = executor.execute(sql, analyze=True)
        except Exception as exc:
            violations.append(Violation(
                "whatif", case.seed, sql,
                f"execution with materialized {index.name} raised "
                f"{type(exc).__name__}: {exc}",
            ))
            continue
        actual_cost = result.plan.total_cost
        tolerance = _EPS * max(1.0, abs(hypo_cost))
        if abs(hypo_cost - actual_cost) > tolerance:
            violations.append(Violation(
                "whatif", case.seed, sql,
                f"dataless cost {hypo_cost} != materialized plan cost "
                f"{actual_cost} for {index.name}",
            ))
        root = result.actual
        if root is not None:
            err = q_error(root.est_rows, root.rows)
            if err > config.root_qerror_max:
                violations.append(Violation(
                    "whatif", case.seed, sql,
                    f"root Q-error {err:.1f} exceeds "
                    f"{config.root_qerror_max} (est {root.est_rows}, "
                    f"actual {root.rows})",
                ))
    return violations


# -- advisor ------------------------------------------------------------------


def advisor_oracle(case: Case, config: OracleConfig) -> list[Violation]:
    violations: list[Violation] = []
    selects = _selects(case)
    if not selects:
        return []
    db = case.database()
    workload = Workload(
        [
            WorkloadQuery(sql, 1.0, name=f"q{i}")
            for i, sql in enumerate(case.statements, start=1)
        ],
        name=f"qa-{case.seed}",
    )
    # Alternate between a tight and a generous budget across seeds.
    budget = (1 << 14) if case.seed % 3 == 0 else (1 << 20)
    try:
        rec = AimAdvisor(db, config.advisor).recommend(workload, budget)
    except Exception as exc:
        violations.append(Violation(
            "advisor", case.seed, "<workload>",
            f"advisor raised {type(exc).__name__}: {exc}",
        ))
        return violations
    created_bytes = sum(r.size_bytes for r in rec.created)
    if created_bytes > budget:
        violations.append(Violation(
            "advisor", case.seed, "<workload>",
            f"recommendation size {created_bytes} exceeds budget {budget}",
        ))
    if not rec.created:
        return violations
    indexes = rec.indexes
    ev = CostEvaluator(db)
    lambda2 = config.advisor.lambda2
    gate_holds = False
    for sql, _stmt in selects:
        base = ev.cost(sql)
        improved = ev.cost(sql, indexes)
        if improved > base * (1 + _EPS) + _EPS:
            violations.append(Violation(
                "advisor", case.seed, sql,
                f"estimated cost rose from {base} to {improved} under the "
                f"recommended configuration",
            ))
        if improved <= (1.0 - lambda2) * base + _EPS:
            gate_holds = True
    if not gate_holds:
        violations.append(Violation(
            "advisor", case.seed, "<workload>",
            f"Eq. 3 gate violated: no SELECT improves by lambda2="
            f"{lambda2} under {[i.name for i in indexes]}",
        ))
    without = _executed_select_cost(case, ())
    with_rec, worst_qerror = _executed_select_cost(case, indexes)
    cap = without[0] * config.exec_factor + config.exec_slack
    if with_rec > cap and worst_qerror <= config.exec_qerror_gate:
        # An executed regression with *accurate* row estimates means the
        # advisor's estimated-cost validation and reality disagree -- a
        # genuine defect.  With badly wrong estimates (high Q-error) the
        # regression is the paper's documented limitation of
        # estimated-cost validation, handled downstream by the fleet
        # regression detector and rollback, so it is not flagged here.
        violations.append(Violation(
            "advisor", case.seed, "<workload>",
            f"executed SELECT cost {with_rec:.6f}s under recommendation "
            f"exceeds {config.exec_factor}x no-index cost "
            f"{without[0]:.6f}s (+{config.exec_slack}s slack) although "
            f"row estimates held (worst Q-error {worst_qerror:.2f})",
        ))
    return violations


def _executed_select_cost(case: Case, indexes) -> tuple[float, float]:
    """(total executed CPU-seconds, worst plan-node Q-error) over SELECTs."""
    db = case.database()
    for index in indexes:
        db.create_index(index.materialized())
    executor = Executor(db)
    total = 0.0
    worst = 1.0
    for sql, _stmt in _selects(case):
        result = executor.execute(sql, analyze=True)
        total += result.cpu_seconds(db.params)
        if result.actual is not None:
            stack = [result.actual]
            while stack:
                node = stack.pop()
                worst = max(worst, q_error(node.est_rows, node.rows))
                stack.extend(node.children)
    return total, worst


ORACLES: dict[str, Oracle] = {
    "differential": differential_oracle,
    "selectivity": selectivity_oracle,
    "cost": cost_oracle,
    "whatif": whatif_oracle,
    "advisor": advisor_oracle,
}


def run_oracles(
    case: Case,
    names: Optional[list[str]] = None,
    config: Optional[OracleConfig] = None,
) -> list[Violation]:
    """Run the named oracles (default: all, in registry order)."""
    config = config or OracleConfig()
    selected = names or list(ORACLES)
    violations: list[Violation] = []
    for name in selected:
        try:
            oracle = ORACLES[name]
        except KeyError:
            raise ValueError(
                f"unknown oracle {name!r}; choose from {sorted(ORACLES)}"
            ) from None
        violations.extend(oracle(case, config))
    return violations
