"""Naive reference interpreter: the differential oracle's ground truth.

Executes parsed statements by brute force -- full scans, cartesian
products, no indexes, no optimizer -- over its own copy of the rows.
It shares **no code** with ``repro.executor`` beyond the AST, so a bug
in the engine's planner, scan operators, or expression evaluation shows
up as a row-level disagreement rather than being faithfully mirrored.

The semantics intentionally match the engine's documented SQL subset:

* comparisons involving NULL are not satisfied (``<=>`` is NULL-safe);
* ``=`` compares mixed types through their string forms;
* ``LIKE`` translates ``%``/``_`` into a regex over ``str()`` values;
* ORDER BY sorts NULLs first ascending, numbers before strings;
* ``SELECT *`` expands each binding's columns in table order;
* a global aggregate over zero rows yields one row (COUNT = 0, others
  NULL); DISTINCT keeps first occurrences in input order;
* LIMIT/OFFSET apply after sorting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from ..catalog import Table
from ..sqlparser import ast, parse


class ReferenceError(Exception):
    """The reference interpreter cannot evaluate a statement."""


@dataclass
class RefResult:
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    ordered: bool = False        # the statement had an ORDER BY
    keys_unique: bool = False    # ... whose keys formed a total order


def _sql_eq(left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return str(left) == str(right)
    return left == right


def _like(value: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.match(f"^{regex}$", value, re.DOTALL) is not None


def _sort_key(value: Any, desc: bool):
    none_rank = 0 if value is None else 1
    if value is None:
        payload: Any = 0
    elif isinstance(value, bool):
        payload = int(value)
    elif isinstance(value, (int, float)):
        payload = value
    else:
        payload = str(value)
    type_rank = 0 if isinstance(payload, (int, float)) else 1
    if desc:
        none_rank = -none_rank
        type_rank = -type_rank
        payload = _Inverted(payload)
    return (none_rank, type_rank, payload)


class _Inverted:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Inverted") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and other.value == self.value


class ReferenceDatabase:
    """A dict-of-rows store evaluated by exhaustive interpretation."""

    def __init__(self, tables: list[Table], rows: dict[str, list[dict]]):
        self.tables = {t.name: t for t in tables}
        self.store: dict[str, list[dict]] = {
            t.name: [dict(r) for r in rows.get(t.name, [])] for t in tables
        }

    # -- entry point -----------------------------------------------------------

    def execute(self, stmt: "str | ast.Statement") -> RefResult:
        if isinstance(stmt, str):
            stmt = parse(stmt)
        if isinstance(stmt, ast.Select):
            return self._select(stmt)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt)
        if isinstance(stmt, ast.Update):
            return self._update(stmt)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt)
        raise ReferenceError(f"cannot execute {type(stmt).__name__}")

    def table_rows(self, table: str) -> list[dict]:
        return self.store[table]

    # -- SELECT ----------------------------------------------------------------

    def _select(self, stmt: ast.Select) -> RefResult:
        bindings = self._bindings(stmt)
        condition = self._combined_condition(stmt)
        scopes = self._product(bindings, condition)
        keys_unique = False
        if stmt.group_by or _has_aggregates(stmt):
            rows, keys_unique = self._aggregate(stmt, bindings, scopes)
        else:
            rows = [self._emit(stmt, bindings, scope) for scope in scopes]
            if stmt.distinct:
                seen: set = set()
                unique = []
                unique_scopes = []
                for row, scope in zip(rows, scopes):
                    if row not in seen:
                        seen.add(row)
                        unique.append(row)
                        unique_scopes.append(scope)
                rows, scopes = unique, unique_scopes
            if stmt.order_by:
                keyed = [
                    (self.order_key(stmt, bindings, scope), row)
                    for scope, row in zip(scopes, rows)
                ]
                keyed.sort(key=lambda pair: pair[0])
                rows = [row for _key, row in keyed]
                keys_unique = _all_keys_distinct([key for key, _row in keyed])
        offset = stmt.offset or 0
        if stmt.limit is not None and stmt.limit >= 0:
            rows = rows[offset: offset + stmt.limit]
        elif offset:
            rows = rows[offset:]
        return RefResult(
            rows=rows, rowcount=len(rows),
            ordered=bool(stmt.order_by), keys_unique=keys_unique,
        )

    def _bindings(self, stmt: ast.Select) -> dict[str, str]:
        out: dict[str, str] = {}
        for ref in stmt.tables:
            out[ref.binding] = ref.name
        for join in stmt.joins:
            out[join.table.binding] = join.table.name
        for name in out.values():
            if name not in self.tables:
                raise ReferenceError(f"unknown table {name!r}")
        return out

    def _combined_condition(self, stmt: ast.Select) -> Optional[ast.Expr]:
        conjuncts: list[ast.Expr] = []
        if stmt.where is not None:
            conjuncts.append(stmt.where)
        for join in stmt.joins:
            if join.kind not in ("INNER", "CROSS", "STRAIGHT"):
                raise ReferenceError(f"unsupported join kind {join.kind}")
            if join.condition is not None:
                conjuncts.append(join.condition)
        if not conjuncts:
            return None
        if len(conjuncts) == 1:
            return conjuncts[0]
        return ast.And(tuple(conjuncts))

    def _product(
        self, bindings: dict[str, str], condition: Optional[ast.Expr]
    ) -> list[dict]:
        names = list(bindings)
        scopes: list[dict] = [{}]
        for binding in names:
            rows = self.store[bindings[binding]]
            scopes = [
                {**scope, binding: row} for scope in scopes for row in rows
            ]
        return [
            scope for scope in scopes
            if self._truth(condition, scope, bindings)
        ]

    def order_key(self, stmt: ast.Select, bindings: dict[str, str],
                  scope: dict) -> tuple:
        return tuple(
            _sort_key(self._value(o.expr, scope, bindings), o.desc)
            for o in stmt.order_by
        )

    def _emit(self, stmt: ast.Select, bindings: dict[str, str],
              scope: dict) -> tuple:
        out: list[Any] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                expand = [item.expr.table] if item.expr.table else list(bindings)
                for binding in expand:
                    table = self.tables[bindings[binding]]
                    row = scope[binding]
                    out.extend(row.get(c) for c in table.column_names)
            else:
                out.append(self._value(item.expr, scope, bindings))
        return tuple(out)

    # -- aggregation -----------------------------------------------------------

    def _aggregate(self, stmt: ast.Select, bindings: dict[str, str],
                   scopes: list[dict]) -> tuple[list[tuple], bool]:
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for scope in scopes:
            key = tuple(
                self._value(expr, scope, bindings) for expr in stmt.group_by
            ) if stmt.group_by else ()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(scope)
        if not groups and not stmt.group_by:
            groups[()] = []
            order.append(())
        emitted: list[list[dict]] = []
        for key in order:
            group = groups[key]
            if stmt.having is not None and not self._having(
                stmt.having, group, bindings
            ):
                continue
            emitted.append(group)
        rows = [
            tuple(
                self._agg_value(item.expr, group, bindings)
                for item in stmt.items
                if not isinstance(item.expr, ast.Star)
            )
            for group in emitted
        ]
        keys_unique = False
        if stmt.order_by:
            keyed = [
                (
                    tuple(
                        _sort_key(
                            self._agg_value(o.expr, group, bindings), o.desc
                        )
                        for o in stmt.order_by
                    ),
                    row,
                )
                for group, row in zip(emitted, rows)
            ]
            keyed.sort(key=lambda pair: pair[0])
            rows = [row for _key, row in keyed]
            keys_unique = _all_keys_distinct([key for key, _row in keyed])
        return rows, keys_unique

    def _agg_value(self, expr: ast.Expr, group: list[dict],
                   bindings: dict[str, str]) -> Any:
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            return self._aggregate_func(expr, group, bindings)
        if isinstance(expr, ast.Arithmetic):
            left = self._agg_value(expr.left, group, bindings)
            right = self._agg_value(expr.right, group, bindings)
            if left is None or right is None:
                return None
            return self._arith(expr.op, left, right)
        scope = group[0] if group else {}
        return self._value(expr, scope, bindings)

    def _aggregate_func(self, func: ast.FuncCall, group: list[dict],
                        bindings: dict[str, str]) -> Any:
        if func.star:
            return len(group)
        values = []
        seen: set = set()
        for scope in group:
            value = self._value(func.args[0], scope, bindings)
            if value is None:
                continue
            if func.distinct:
                if value in seen:
                    continue
                seen.add(value)
            values.append(value)
        name = func.name
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total
        if name == "AVG":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise ReferenceError(f"unknown aggregate {name}")

    def _having(self, having: ast.Expr, group: list[dict],
                bindings: dict[str, str]) -> bool:
        if isinstance(having, ast.And):
            return all(self._having(i, group, bindings) for i in having.items)
        if isinstance(having, ast.Or):
            return any(self._having(i, group, bindings) for i in having.items)
        if isinstance(having, ast.Not):
            return not self._having(having.item, group, bindings)
        if isinstance(having, ast.Comparison):
            left = self._agg_value(having.left, group, bindings)
            right = self._agg_value(having.right, group, bindings)
            if left is None or right is None:
                return False
            return self._compare_values(having.op, left, right)
        scope = group[0] if group else {}
        return self._truth(having, scope, bindings)

    # -- DML -------------------------------------------------------------------

    def _insert(self, stmt: ast.Insert) -> RefResult:
        table = self.tables[stmt.table.name]
        rows = self.store[stmt.table.name]
        for value_row in stmt.rows:
            given = {
                col: self._value(expr, {}, {})
                for col, expr in zip(stmt.columns, value_row)
            }
            rows.append({c: given.get(c) for c in table.column_names})
        return RefResult(rowcount=len(stmt.rows))

    def _update(self, stmt: ast.Update) -> RefResult:
        binding = stmt.table.binding
        bindings = {binding: stmt.table.name}
        rows = self.store[stmt.table.name]
        matched = [
            row for row in rows
            if self._truth(stmt.where, {binding: row}, bindings)
        ]
        for row in matched:
            changes = {
                col: self._value(expr, {binding: row}, bindings)
                for col, expr in stmt.assignments
            }
            row.update(changes)
        return RefResult(rowcount=len(matched))

    def _delete(self, stmt: ast.Delete) -> RefResult:
        binding = stmt.table.binding
        bindings = {binding: stmt.table.name}
        rows = self.store[stmt.table.name]
        keep = []
        removed = 0
        for row in rows:
            if self._truth(stmt.where, {binding: row}, bindings):
                removed += 1
            else:
                keep.append(row)
        self.store[stmt.table.name] = keep
        return RefResult(rowcount=removed)

    # -- expression evaluation -------------------------------------------------

    def _resolve(self, ref: ast.ColumnRef, bindings: dict[str, str]) -> str:
        if ref.table is not None:
            return ref.table
        matches = [
            binding for binding, table in bindings.items()
            if self.tables[table].has_column(ref.column)
        ]
        if len(matches) != 1:
            raise ReferenceError(f"cannot resolve column {ref.column!r}")
        return matches[0]

    def _value(self, expr: ast.Expr, scope: dict,
               bindings: dict[str, str]) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            binding = self._resolve(expr, bindings)
            row = scope.get(binding)
            return None if row is None else row.get(expr.column)
        if isinstance(expr, ast.Arithmetic):
            left = self._value(expr.left, scope, bindings)
            right = self._value(expr.right, scope, bindings)
            if left is None or right is None:
                return None
            return self._arith(expr.op, left, right)
        if isinstance(expr, ast.FuncCall):
            raise ReferenceError(
                f"aggregate {expr.name} outside aggregation context"
            )
        if isinstance(expr, ast.Param):
            raise ReferenceError("cannot execute a parameterized query")
        return self._truth(expr, scope, bindings)

    @staticmethod
    def _arith(op: str, left: Any, right: Any) -> Any:
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right if right else None
            if op == "%":
                return left % right if right else None
        except TypeError:
            return None
        raise ReferenceError(f"unknown arithmetic op {op!r}")

    def _truth(self, expr: Optional[ast.Expr], scope: dict,
               bindings: dict[str, str]) -> bool:
        if expr is None:
            return True
        if isinstance(expr, ast.And):
            return all(self._truth(i, scope, bindings) for i in expr.items)
        if isinstance(expr, ast.Or):
            return any(self._truth(i, scope, bindings) for i in expr.items)
        if isinstance(expr, ast.Not):
            return not self._truth(expr.item, scope, bindings)
        if isinstance(expr, ast.Comparison):
            left = self._value(expr.left, scope, bindings)
            right = self._value(expr.right, scope, bindings)
            if expr.op == "<=>":
                return _sql_eq(left, right) or (left is None and right is None)
            if left is None or right is None:
                return False
            if expr.op == "LIKE":
                return _like(str(left), str(right))
            return self._compare_values(expr.op, left, right)
        if isinstance(expr, ast.InList):
            value = self._value(expr.expr, scope, bindings)
            if value is None:
                return False
            items = [self._value(i, scope, bindings) for i in expr.items]
            result = any(_sql_eq(value, item) for item in items)
            return (not result) if expr.negated else result
        if isinstance(expr, ast.Between):
            value = self._value(expr.expr, scope, bindings)
            low = self._value(expr.low, scope, bindings)
            high = self._value(expr.high, scope, bindings)
            if value is None or low is None or high is None:
                return False
            try:
                result = low <= value <= high
            except TypeError:
                return False
            return (not result) if expr.negated else result
        if isinstance(expr, ast.IsNull):
            value = self._value(expr.expr, scope, bindings)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.Literal):
            return bool(expr.value)
        raise ReferenceError(f"cannot evaluate predicate {expr.to_sql()}")

    @staticmethod
    def _compare_values(op: str, left: Any, right: Any) -> bool:
        try:
            if op == "=":
                return _sql_eq(left, right)
            if op == "!=":
                return not _sql_eq(left, right)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
        raise ReferenceError(f"unknown comparison operator {op!r}")


def _all_keys_distinct(keys: list[tuple]) -> bool:
    """True when no two (already sorted) adjacent sort keys compare equal."""
    return all(keys[i] != keys[i + 1] for i in range(len(keys) - 1))


def _has_aggregates(stmt: ast.Select) -> bool:
    return any(
        isinstance(node, ast.FuncCall) and node.is_aggregate
        for item in stmt.items
        if not isinstance(item.expr, ast.Star)
        for node in ast.iter_exprs(item.expr)
    )
