"""Greedy minimization of failing fuzz cases.

``shrink_case`` takes a failing :class:`Case` and a predicate that
re-runs the violated oracles, and repeatedly tries smaller candidates --
fewer statements, fewer tables, fewer rows, fewer columns, simpler
predicates -- keeping each reduction only when the failure persists.
The result is typically a one-table/one-query repro small enough to
read at a glance; the runner serializes it into ``qa_failures/``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..catalog import Table
from ..sqlparser import ast, parse
from .generator import Case

StillFailing = Callable[[Case], bool]


class _Budget:
    """Caps the number of oracle re-evaluations a shrink may spend."""

    def __init__(self, attempts: int):
        self.remaining = attempts

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def shrink_case(
    case: Case, still_failing: StillFailing, max_attempts: int = 300
) -> Case:
    """Minimize *case* while ``still_failing`` stays true."""
    budget = _Budget(max_attempts)

    def check(candidate: Case) -> bool:
        if not budget.spend():
            return False
        try:
            return still_failing(candidate)
        except Exception:
            # A candidate that crashes the oracle harness itself is not a
            # faithful reduction of the original failure.
            return False

    changed = True
    while changed and budget.remaining > 0:
        changed = False
        for reducer in (
            _reduce_statements,
            _drop_unreferenced_tables,
            _reduce_rows,
            _drop_unused_columns,
            _simplify_statements,
        ):
            smaller = reducer(case, check)
            if smaller is not None:
                case = smaller
                changed = True
    return case


# -- statement reduction ------------------------------------------------------


def _reduce_statements(case: Case, check: StillFailing) -> Optional[Case]:
    statements = case.statements
    if len(statements) <= 1:
        return None
    best: Optional[Case] = None
    # Try each single statement first: most failures are one bad query.
    for i in range(len(statements)):
        candidate = replace(case, statements=[statements[i]])
        if check(candidate):
            return candidate
    # Otherwise drop one statement at a time.
    i = 0
    current = case
    while i < len(current.statements) and len(current.statements) > 1:
        remaining = (
            current.statements[:i] + current.statements[i + 1:]
        )
        candidate = replace(current, statements=remaining)
        if check(candidate):
            current = candidate
            best = candidate
        else:
            i += 1
    return best


# -- schema reduction ---------------------------------------------------------


def _referenced_tables(case: Case) -> set[str]:
    tables: set[str] = set()
    for sql in case.statements:
        stmt = parse(sql)
        if isinstance(stmt, ast.Select):
            for ref in stmt.tables:
                tables.add(ref.name)
            for join in stmt.joins:
                tables.add(join.table.name)
        else:
            tables.add(stmt.table.name)
    return tables


def _drop_unreferenced_tables(case: Case, check: StillFailing) -> Optional[Case]:
    referenced = _referenced_tables(case)
    keep = [t for t in case.tables if t.name in referenced]
    if len(keep) == len(case.tables) or not keep:
        return None
    candidate = replace(
        case,
        tables=keep,
        rows={t.name: case.rows[t.name] for t in keep},
    )
    return candidate if check(candidate) else None


def _reduce_rows(case: Case, check: StillFailing) -> Optional[Case]:
    best: Optional[Case] = None
    current = case
    for table in case.tables:
        rows = current.rows[table.name]
        while len(rows) > 0:
            half = len(rows) // 2
            shrunk = None
            for candidate_rows in (rows[:half], rows[half:]):
                if len(candidate_rows) == len(rows):
                    continue
                candidate = replace(
                    current,
                    rows={**current.rows, table.name: candidate_rows},
                )
                if check(candidate):
                    shrunk = candidate
                    rows = candidate_rows
                    break
            if shrunk is None:
                break
            current = shrunk
            best = shrunk
    return best


def _drop_unused_columns(case: Case, check: StillFailing) -> Optional[Case]:
    used = _referenced_columns(case)
    if used is None:
        return None
    best: Optional[Case] = None
    current = case
    for table in list(current.tables):
        removable = [
            c.name for c in table.columns
            if c.name not in table.primary_key and c.name not in used
        ]
        for column in removable:
            candidate = _without_column(current, table.name, column)
            if check(candidate):
                current = candidate
                best = candidate
                table = next(
                    t for t in current.tables if t.name == table.name
                )
    return best


def _referenced_columns(case: Case) -> Optional[set[str]]:
    """Column names referenced anywhere, or None when a ``*`` blocks this."""
    used: set[str] = set()
    for sql in case.statements:
        stmt = parse(sql)
        for expr in _statement_exprs(stmt):
            for node in ast.iter_exprs(expr):
                if isinstance(node, ast.Star):
                    return None
                if isinstance(node, ast.ColumnRef):
                    used.add(node.column)
        if isinstance(stmt, ast.Insert):
            used.update(stmt.columns)
        elif isinstance(stmt, ast.Update):
            used.update(col for col, _expr in stmt.assignments)
    return used


def _statement_exprs(stmt: ast.Statement) -> list[ast.Expr]:
    exprs: list[ast.Expr] = []
    if isinstance(stmt, ast.Select):
        exprs.extend(item.expr for item in stmt.items)
        if stmt.where is not None:
            exprs.append(stmt.where)
        exprs.extend(stmt.group_by)
        if stmt.having is not None:
            exprs.append(stmt.having)
        exprs.extend(o.expr for o in stmt.order_by)
        for join in stmt.joins:
            if join.condition is not None:
                exprs.append(join.condition)
    elif isinstance(stmt, ast.Insert):
        for row in stmt.rows:
            exprs.extend(row)
    elif isinstance(stmt, ast.Update):
        exprs.extend(expr for _col, expr in stmt.assignments)
        if stmt.where is not None:
            exprs.append(stmt.where)
    elif isinstance(stmt, ast.Delete):
        if stmt.where is not None:
            exprs.append(stmt.where)
    return exprs


def _without_column(case: Case, table_name: str, column: str) -> Case:
    tables = []
    for table in case.tables:
        if table.name != table_name:
            tables.append(table)
            continue
        tables.append(Table(
            table.name,
            [c for c in table.columns if c.name != column],
            table.primary_key,
        ))
    rows = dict(case.rows)
    rows[table_name] = [
        {k: v for k, v in row.items() if k != column}
        for row in case.rows[table_name]
    ]
    return replace(case, tables=tables, rows=rows)


# -- statement simplification -------------------------------------------------


def _simplify_statements(case: Case, check: StillFailing) -> Optional[Case]:
    best: Optional[Case] = None
    current = case
    for i in range(len(current.statements)):
        progressed = True
        while progressed:
            progressed = False
            stmt = parse(current.statements[i])
            for variant in _variants(stmt):
                statements = list(current.statements)
                statements[i] = variant.to_sql()
                candidate = replace(current, statements=statements)
                if check(candidate):
                    current = candidate
                    best = candidate
                    progressed = True
                    break
    return best


def _variants(stmt: ast.Statement) -> list[ast.Statement]:
    """One-change simplifications of a statement, simplest first."""
    out: list[ast.Statement] = []
    if isinstance(stmt, ast.Select):
        if stmt.where is not None:
            for simpler in _where_variants(stmt.where):
                out.append(replace(stmt, where=simpler))
        if stmt.order_by:
            out.append(replace(stmt, order_by=(), limit=None, offset=None))
        if stmt.limit is not None or stmt.offset is not None:
            out.append(replace(stmt, limit=None, offset=None))
        if stmt.having is not None:
            out.append(replace(stmt, having=None))
        if stmt.distinct:
            out.append(replace(stmt, distinct=False))
        if len(stmt.items) > 1:
            for i in range(len(stmt.items)):
                items = stmt.items[:i] + stmt.items[i + 1:]
                out.append(replace(stmt, items=items))
    elif isinstance(stmt, (ast.Update, ast.Delete)):
        if stmt.where is not None:
            for simpler in _where_variants(stmt.where):
                out.append(replace(stmt, where=simpler))
    return out


def _where_variants(where: ast.Expr) -> list[Optional[ast.Expr]]:
    out: list[Optional[ast.Expr]] = []
    if isinstance(where, ast.And) and len(where.items) > 1:
        for i in range(len(where.items)):
            items = where.items[:i] + where.items[i + 1:]
            out.append(items[0] if len(items) == 1 else ast.And(items))
    out.append(None)
    return out
