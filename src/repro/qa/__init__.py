"""``repro.qa``: deterministic workload fuzzing and differential oracles.

The safety net behind ``repro fuzz`` (see ``docs/TESTING.md``):

* :mod:`repro.qa.generator` -- seed-deterministic schemas, adversarial
  data distributions, and dialect-conformant SQL workloads;
* :mod:`repro.qa.reference` -- a naive full-scan interpreter used as the
  differential ground truth for ``repro.executor``;
* :mod:`repro.qa.oracles` -- differential plus metamorphic invariants
  over the optimizer (selectivity, cost monotonicity, what-if parity)
  and the advisor (budget, Eq. 3 gate, no executed regressions);
* :mod:`repro.qa.shrink` -- greedy minimization of failing cases;
* :mod:`repro.qa.runner` -- the fuzz loop, failure persistence into
  ``qa_failures/``, and replay.
"""

from .generator import Case, GenConfig, generate_case
from .oracles import ORACLES, OracleConfig, Violation, run_oracles
from .reference import ReferenceDatabase, RefResult
from .runner import FuzzReport, replay_case, run_fuzz, write_failure
from .shrink import shrink_case

__all__ = [
    "Case",
    "FuzzReport",
    "GenConfig",
    "ORACLES",
    "OracleConfig",
    "ReferenceDatabase",
    "RefResult",
    "Violation",
    "generate_case",
    "replay_case",
    "run_fuzz",
    "run_oracles",
    "shrink_case",
    "write_failure",
]
