"""Seed-deterministic generation of schemas, data, and SQL workloads.

The fuzzer's front end: given an integer seed, :func:`generate_case`
produces a :class:`Case` -- tables, rows with adversarial value
distributions (skewed, correlated, NULL-heavy, low-cardinality), and a
workload of SELECT/DML statements that stays inside the dialect
``repro.sqlparser`` supports.  Queries are built as AST nodes and
emitted through ``to_sql()``, so every generated statement parses back
by construction.

Determinism contract: all randomness flows through one
``random.Random(seed)`` instance and no code path iterates a set or a
hash-keyed dict, so the same seed yields a byte-identical
``Case.to_json()`` on any Python process regardless of
``PYTHONHASHSEED`` (``tests/test_qa_determinism.py`` enforces this).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..catalog import Column, ColumnType, Table, TypeKind, varchar
from ..engine import Database, INNODB
from ..sqlparser import ast

INT = ColumnType(TypeKind.INTEGER, 4)

#: Aggregate functions the generator emits (AVG and ``/`` are excluded:
#: float results would make row comparison tolerance-dependent).
_AGG_FUNCS = ("COUNT", "SUM", "MIN", "MAX")


@dataclass
class GenConfig:
    """Knobs for :func:`generate_case`; all ranges are inclusive."""

    tables: tuple[int, int] = (1, 3)
    extra_columns: tuple[int, int] = (2, 4)   # beyond the PK (and FKs)
    rows: tuple[int, int] = (0, 120)
    statements: tuple[int, int] = (4, 10)
    dml_fraction: float = 0.25
    nullable_fraction: float = 0.35    # chance a generated column is nullable
    join_fraction: float = 0.35        # chance a SELECT joins two tables
    max_limit: int = 25


@dataclass
class Case:
    """One generated scenario: schema + rows + workload statements."""

    seed: int
    tables: list[Table]
    rows: dict[str, list[dict]]
    statements: list[str]

    # -- construction ----------------------------------------------------------

    def database(self, params=INNODB, with_storage: bool = True) -> Database:
        """A fresh stored (or stats-only) database loaded with this case."""
        from ..catalog.schema import Schema

        db = Database(
            Schema.from_tables(self.tables), params=params,
            with_storage=with_storage, name=f"qa-{self.seed}",
        )
        if with_storage:
            for table in self.tables:
                db.load_rows(table.name, [dict(r) for r in self.rows[table.name]])
        else:
            from ..stats import analyze_table

            for table in self.tables:
                rows = self.rows[table.name]
                by_column = {
                    col: [row.get(col) for row in rows]
                    for col in table.column_names
                }
                db.set_stats(table.name, analyze_table(by_column))
            return db
        db.analyze()
        return db

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "tables": [_table_to_dict(t) for t in self.tables],
            "rows": {
                t.name: [
                    [row.get(c) for c in t.column_names]
                    for row in self.rows[t.name]
                ]
                for t in self.tables
            },
            "statements": list(self.statements),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_dict(cls, payload: dict) -> "Case":
        tables = [_table_from_dict(t) for t in payload["tables"]]
        rows: dict[str, list[dict]] = {}
        for table in tables:
            cells = payload["rows"].get(table.name, [])
            rows[table.name] = [
                dict(zip(table.column_names, values)) for values in cells
            ]
        return cls(
            seed=int(payload.get("seed", 0)),
            tables=tables,
            rows=rows,
            statements=list(payload["statements"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "Case":
        return cls.from_dict(json.loads(text))


def _table_to_dict(table: Table) -> dict:
    return {
        "name": table.name,
        "primary_key": list(table.primary_key),
        "columns": [
            {
                "name": c.name,
                "kind": c.ctype.kind.value,
                "width": c.ctype.width,
                "nullable": c.nullable,
            }
            for c in table.columns
        ],
    }


def _table_from_dict(payload: dict) -> Table:
    columns = [
        Column(
            c["name"],
            ColumnType(TypeKind(c["kind"]), int(c["width"])),
            nullable=bool(c["nullable"]),
        )
        for c in payload["columns"]
    ]
    return Table(payload["name"], columns, tuple(payload["primary_key"]))


# -- column value models ------------------------------------------------------


@dataclass
class _ColumnSpec:
    """How a generated column's values are produced."""

    column: Column
    kind: str                      # uniform | skew | enum | string | fk | corr
    lo: int = 0
    hi: int = 100
    values: tuple[str, ...] = ()   # enum domain
    pool: int = 10                 # string pool size
    parent: str = ""               # fk: parent table name
    base: str = ""                 # corr: source column name
    null_rate: float = 0.0


@dataclass
class _TableSpec:
    table: Table
    specs: list[_ColumnSpec] = field(default_factory=list)


def _gen_value(rng: random.Random, spec: _ColumnSpec, row: dict,
               parent_rows: int) -> Any:
    if spec.null_rate > 0.0 and rng.random() < spec.null_rate:
        return None
    if spec.kind == "uniform":
        return rng.randint(spec.lo, spec.hi)
    if spec.kind == "skew":
        # Power-law-ish: most mass near lo, a long tail toward hi.
        span = spec.hi - spec.lo
        return spec.lo + int(span * rng.random() ** 3)
    if spec.kind == "enum":
        return spec.values[rng.randrange(len(spec.values))]
    if spec.kind == "string":
        return f"s{rng.randrange(spec.pool)}"
    if spec.kind == "fk":
        # May dangle past the parent's rows: inner joins must drop those.
        return rng.randint(1, max(2, parent_rows + parent_rows // 4))
    if spec.kind == "corr":
        base = row.get(spec.base)
        if base is None:
            return None
        return base * 2 + rng.randint(0, 3)
    raise ValueError(f"unknown column kind {spec.kind!r}")


def _gen_schema(rng: random.Random, config: GenConfig) -> list[_TableSpec]:
    n_tables = rng.randint(*config.tables)
    specs: list[_TableSpec] = []
    for t in range(n_tables):
        name = f"t{t}"
        columns = [Column("id", INT)]
        col_specs: list[_ColumnSpec] = []
        if t > 0 and rng.random() < 0.8:
            parent = f"t{rng.randrange(t)}"
            fk = Column(f"{parent}_id", INT, nullable=rng.random() < 0.2)
            columns.append(fk)
            col_specs.append(_ColumnSpec(
                fk, "fk", parent=parent,
                null_rate=0.1 if fk.nullable else 0.0,
            ))
        int_cols: list[str] = []
        for j in range(rng.randint(*config.extra_columns)):
            cname = f"c{j}"
            nullable = rng.random() < config.nullable_fraction
            null_rate = rng.choice((0.05, 0.2, 0.5)) if nullable else 0.0
            kind = rng.choice(
                ("uniform", "uniform", "skew", "enum", "string", "corr")
            )
            if kind == "corr" and not int_cols:
                kind = "uniform"
            if kind in ("uniform", "skew"):
                hi = rng.choice((8, 50, 1000))
                column = Column(cname, INT, nullable=nullable)
                col_specs.append(_ColumnSpec(
                    column, kind, lo=0, hi=hi, null_rate=null_rate
                ))
                int_cols.append(cname)
            elif kind == "corr":
                column = Column(cname, INT, nullable=nullable)
                col_specs.append(_ColumnSpec(
                    column, "corr", base=rng.choice(int_cols),
                    null_rate=null_rate,
                ))
                int_cols.append(cname)
            elif kind == "enum":
                domain = tuple(f"v{k}" for k in range(rng.randint(2, 6)))
                column = Column(cname, varchar(8), nullable=nullable)
                col_specs.append(_ColumnSpec(
                    column, "enum", values=domain, null_rate=null_rate
                ))
            else:
                column = Column(cname, varchar(12), nullable=nullable)
                col_specs.append(_ColumnSpec(
                    column, "string", pool=rng.choice((5, 30, 200)),
                    null_rate=null_rate,
                ))
            columns.append(column)
        specs.append(_TableSpec(Table(name, columns, ("id",)), col_specs))
    return specs


def _gen_rows(
    rng: random.Random, spec: _TableSpec, config: GenConfig,
    row_counts: dict[str, int],
) -> list[dict]:
    n = rng.randint(*config.rows)
    row_counts[spec.table.name] = n
    rows: list[dict] = []
    for i in range(n):
        row: dict[str, Any] = {"id": i + 1}
        for cspec in spec.specs:
            parent_rows = row_counts.get(cspec.parent, 0)
            row[cspec.column.name] = _gen_value(rng, cspec, row, parent_rows)
        rows.append(row)
    return rows


# -- workload generation ------------------------------------------------------


class _WorkloadGen:
    def __init__(self, rng: random.Random, specs: list[_TableSpec],
                 rows: dict[str, list[dict]], config: GenConfig):
        self.rng = rng
        self.specs = specs
        self.rows = rows
        self.config = config
        self.next_pk = {
            spec.table.name: len(rows[spec.table.name]) + 1 for spec in specs
        }

    # -- constants -------------------------------------------------------------

    def _sample_value(self, table: str, spec: _ColumnSpec) -> Any:
        """A predicate constant: usually a live value, sometimes a miss."""
        rng = self.rng
        observed = [
            row[spec.column.name]
            for row in self.rows[table]
            if row[spec.column.name] is not None
        ]
        if observed and rng.random() < 0.8:
            return rng.choice(observed)
        return _gen_value(rng, replace(spec, null_rate=0.0), {},
                          len(self.rows.get(spec.parent, ())))

    # -- predicates ------------------------------------------------------------

    def _predicate(self, binding: Optional[str], table: str,
                   spec: _ColumnSpec) -> ast.Expr:
        rng = self.rng
        ref = ast.ColumnRef(binding, spec.column.name)
        is_int = spec.column.ctype.kind == TypeKind.INTEGER
        if spec.column.nullable and rng.random() < 0.12:
            return ast.IsNull(ref, negated=rng.random() < 0.4)
        value = self._sample_value(table, spec)
        if value is None:
            return ast.IsNull(ref)
        if is_int:
            roll = rng.random()
            if roll < 0.35:
                return ast.Comparison("=", ref, ast.Literal(value))
            if roll < 0.55:
                op = rng.choice((">", ">=", "<", "<="))
                return ast.Comparison(op, ref, ast.Literal(value))
            if roll < 0.75:
                other = self._sample_value(table, spec)
                if other is None:
                    other = value
                lo, hi = sorted((value, other))
                return ast.Between(
                    ref, ast.Literal(lo), ast.Literal(hi),
                    negated=rng.random() < 0.15,
                )
            items = sorted(
                {value}
                | {
                    v for v in (
                        self._sample_value(table, spec)
                        for _ in range(rng.randint(1, 3))
                    )
                    if v is not None
                },
                key=str,
            )
            return ast.InList(
                ref, tuple(ast.Literal(v) for v in items),
                negated=rng.random() < 0.1,
            )
        roll = rng.random()
        if roll < 0.45:
            return ast.Comparison("=", ref, ast.Literal(value))
        if roll < 0.7:
            prefix = str(value)[: rng.randint(1, 2)]
            return ast.Comparison("LIKE", ref, ast.Literal(prefix + "%"))
        items = sorted(
            {str(value)}
            | {
                str(v) for v in (
                    self._sample_value(table, spec)
                    for _ in range(rng.randint(1, 3))
                )
                if v is not None
            }
        )
        return ast.InList(
            ref, tuple(ast.Literal(v) for v in items),
            negated=rng.random() < 0.1,
        )

    def _where(self, bindings: list[tuple[Optional[str], _TableSpec]],
               extra: list[ast.Expr], max_preds: int = 3) -> Optional[ast.Expr]:
        rng = self.rng
        conjuncts: list[ast.Expr] = list(extra)
        n_preds = rng.randint(0 if conjuncts else 1, max_preds)
        candidates = [
            (binding, spec.table.name, cspec)
            for binding, spec in bindings
            for cspec in spec.specs
        ]
        for _ in range(n_preds):
            if not candidates:
                break
            binding, table, cspec = rng.choice(candidates)
            pred = self._predicate(binding, table, cspec)
            if rng.random() < 0.2:
                other_b, other_t, other_c = rng.choice(candidates)
                pred = ast.Or((pred, self._predicate(other_b, other_t, other_c)))
            if rng.random() < 0.07:
                pred = ast.Not(pred)
            conjuncts.append(pred)
        if not conjuncts:
            return None
        if len(conjuncts) == 1:
            return conjuncts[0]
        return ast.And(tuple(conjuncts))

    # -- statements ------------------------------------------------------------

    def select(self) -> ast.Select:
        rng = self.rng
        spec = rng.choice(self.specs)
        bindings: list[tuple[Optional[str], _TableSpec]] = []
        tables = [ast.TableRef(spec.table.name)]
        extra: list[ast.Expr] = []
        join_partner = self._join_partner(spec)
        if join_partner is not None and rng.random() < self.config.join_fraction:
            fk_spec, parent = join_partner
            bindings = [(spec.table.name, spec), (parent.table.name, parent)]
            tables.append(ast.TableRef(parent.table.name))
            extra.append(ast.Comparison(
                "=",
                ast.ColumnRef(spec.table.name, fk_spec.column.name),
                ast.ColumnRef(parent.table.name, "id"),
            ))
        else:
            qualify = rng.random() < 0.5
            bindings = [(spec.table.name if qualify else None, spec)]
        where = self._where(bindings, extra)
        if rng.random() < 0.3:
            return self._aggregate_select(bindings, tables, where)
        return self._plain_select(bindings, tables, where)

    def _join_partner(
        self, spec: _TableSpec
    ) -> Optional[tuple[_ColumnSpec, _TableSpec]]:
        for cspec in spec.specs:
            if cspec.kind == "fk":
                for other in self.specs:
                    if other.table.name == cspec.parent:
                        return cspec, other
        return None

    def _projectable(
        self, bindings: list[tuple[Optional[str], _TableSpec]]
    ) -> list[tuple[Optional[str], _ColumnSpec]]:
        out: list[tuple[Optional[str], _ColumnSpec]] = []
        for binding, spec in bindings:
            pk_spec = _ColumnSpec(Column("id", INT), "uniform")
            out.append((binding, pk_spec))
            out.extend((binding, cspec) for cspec in spec.specs)
        return out

    def _plain_select(self, bindings, tables, where) -> ast.Select:
        rng = self.rng
        projectable = self._projectable(bindings)
        if rng.random() < 0.15:
            items: tuple[ast.SelectItem, ...] = (ast.SelectItem(ast.Star()),)
            projected = projectable
        else:
            k = rng.randint(1, min(3, len(projectable)))
            chosen = [
                projectable[i]
                for i in sorted(rng.sample(range(len(projectable)), k))
            ]
            items = tuple(
                ast.SelectItem(ast.ColumnRef(b, c.column.name))
                for b, c in chosen
            )
            projected = chosen
        distinct = rng.random() < 0.15
        order_by: tuple[ast.OrderItem, ...] = ()
        limit = offset = None
        if rng.random() < 0.5:
            pool = projected if distinct else projectable
            n_keys = rng.randint(1, min(2, len(pool)))
            keys = [pool[i] for i in sorted(rng.sample(range(len(pool)), n_keys))]
            order_by = tuple(
                ast.OrderItem(ast.ColumnRef(b, c.column.name),
                              desc=rng.random() < 0.5)
                for b, c in keys
            )
            if not distinct and rng.random() < 0.5:
                # Extend the sort with every binding's PK: the resulting
                # total order makes a LIMIT cut deterministic.
                order_by = order_by + tuple(
                    ast.OrderItem(ast.ColumnRef(b, "id"))
                    for b, _spec in bindings
                )
                limit = rng.randint(1, self.config.max_limit)
                if rng.random() < 0.3:
                    offset = rng.randint(1, 5)
        return ast.Select(
            items=items,
            tables=tuple(tables),
            where=where,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _aggregate_select(self, bindings, tables, where) -> ast.Select:
        rng = self.rng
        agg_cols = [
            (b, c) for b, c in self._projectable(bindings)
            if c.column.ctype.kind == TypeKind.INTEGER
        ]
        group_cols = [
            (b, c) for b, spec in bindings for c in spec.specs
            if c.kind in ("enum", "string") or (c.kind in ("uniform", "skew") and c.hi <= 8)
        ]
        items: list[ast.SelectItem] = []
        group_by: tuple[ast.Expr, ...] = ()
        if group_cols and rng.random() < 0.6:
            b, c = rng.choice(group_cols)
            key = ast.ColumnRef(b, c.column.name)
            group_by = (key,)
            items.append(ast.SelectItem(key))
        items.append(ast.SelectItem(ast.FuncCall("COUNT", star=True)))
        if agg_cols and rng.random() < 0.7:
            b, c = rng.choice(agg_cols)
            func = rng.choice(("SUM", "MIN", "MAX"))
            items.append(ast.SelectItem(ast.FuncCall(
                func, (ast.ColumnRef(b, c.column.name),),
                distinct=(func == "SUM" and rng.random() < 0.2),
            )))
        having = None
        if group_by and rng.random() < 0.3:
            having = ast.Comparison(
                ">", ast.FuncCall("COUNT", star=True),
                ast.Literal(rng.randint(1, 3)),
            )
        order_by: tuple[ast.OrderItem, ...] = ()
        if group_by and rng.random() < 0.4:
            order_by = (ast.OrderItem(group_by[0], desc=rng.random() < 0.5),)
        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
        )

    def dml(self) -> ast.Statement:
        rng = self.rng
        spec = rng.choice(self.specs)
        table = spec.table
        roll = rng.random()
        if roll < 0.45 or not spec.specs:
            pk = self.next_pk[table.name]
            self.next_pk[table.name] = pk + 1
            row: dict[str, Any] = {"id": pk}
            for cspec in spec.specs:
                row[cspec.column.name] = _gen_value(
                    rng, cspec, row, len(self.rows.get(cspec.parent, ()))
                )
            return ast.Insert(
                ast.TableRef(table.name),
                tuple(table.column_names),
                ((tuple(ast.Literal(row.get(c)) for c in table.column_names)),),
            )
        if roll < 0.8:
            cspec = rng.choice(spec.specs)
            value = self._sample_value(table.name, cspec)
            if value is None:
                value = _gen_value(rng, replace(cspec, null_rate=0.0), {},
                                   len(self.rows.get(cspec.parent, ())))
            assign: ast.Expr = ast.Literal(value)
            if (cspec.column.ctype.kind == TypeKind.INTEGER
                    and cspec.kind != "fk" and rng.random() < 0.3):
                assign = ast.Arithmetic(
                    "+", ast.ColumnRef(None, cspec.column.name),
                    ast.Literal(rng.randint(1, 5)),
                )
            where = self._dml_where(spec)
            return ast.Update(
                ast.TableRef(table.name),
                ((cspec.column.name, assign),),
                where=where,
            )
        return ast.Delete(ast.TableRef(table.name), where=self._dml_where(spec))

    def _dml_where(self, spec: _TableSpec) -> ast.Expr:
        rng = self.rng
        live = [row["id"] for row in self.rows[spec.table.name]]
        pk_ref = ast.ColumnRef(None, "id")
        if not live or rng.random() < 0.55:
            pk = rng.choice(live) if live else rng.randint(1, 10)
            return ast.Comparison("=", pk_ref, ast.Literal(pk))
        if rng.random() < 0.5 and spec.specs:
            cspec = rng.choice(spec.specs)
            return self._predicate(None, spec.table.name, cspec)
        pk = rng.choice(live)
        return ast.Between(pk_ref, ast.Literal(pk), ast.Literal(pk + 2))

    def statement(self) -> str:
        if self.rng.random() < self.config.dml_fraction:
            return self.dml().to_sql()
        return self.select().to_sql()


def generate_case(seed: int, config: Optional[GenConfig] = None) -> Case:
    """Generate one deterministic scenario for *seed*."""
    config = config or GenConfig()
    rng = random.Random(seed)
    specs = _gen_schema(rng, config)
    row_counts: dict[str, int] = {}
    rows = {
        spec.table.name: _gen_rows(rng, spec, config, row_counts)
        for spec in specs
    }
    gen = _WorkloadGen(rng, specs, rows, config)
    statements = [gen.statement() for _ in range(rng.randint(*config.statements))]
    return Case(
        seed=seed,
        tables=[spec.table for spec in specs],
        rows=rows,
        statements=statements,
    )
