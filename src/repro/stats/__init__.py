"""Data distribution statistics: histograms, column/table stats, builders."""

from .builder import (
    SyntheticColumn,
    analyze_column,
    analyze_table,
    catalog_from_tables,
    synthesize_table,
)
from .column_stats import ColumnStats
from .histogram import Histogram
from .table_stats import StatsCatalog, TableStats

__all__ = [
    "Histogram",
    "ColumnStats",
    "TableStats",
    "StatsCatalog",
    "analyze_column",
    "analyze_table",
    "synthesize_table",
    "SyntheticColumn",
    "catalog_from_tables",
]
