"""Per-column data distribution statistics."""

from __future__ import annotations

from dataclasses import dataclass

from .histogram import Histogram

#: Default equality selectivity when nothing is known (matches PostgreSQL).
DEFAULT_EQ_SELECTIVITY = 0.005
#: Default range selectivity when nothing is known.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class ColumnStats:
    """Distribution statistics for one column.

    Attributes:
        ndv: number of distinct non-null values (>= 1).
        null_frac: fraction of NULLs in [0, 1].
        histogram: value sample for range estimation (may be empty).
    """

    ndv: int = 1
    null_frac: float = 0.0
    histogram: Histogram = Histogram()

    def __post_init__(self) -> None:
        if self.ndv < 1:
            object.__setattr__(self, "ndv", 1)

    # -- selectivity primitives ---------------------------------------------
    #
    # All estimates are for *one* atomic predicate on this column, expressed
    # as a fraction of the table's rows.  A value of None means the concrete
    # constant is unknown (normalized query with `?` parameters): we then
    # fall back to uniform-distribution estimates, exactly what a DBMS does
    # when optimizing a prepared statement without parameter peeking.

    def eq_selectivity(self, value=None) -> float:
        """Selectivity of ``col = value``."""
        non_null = 1.0 - self.null_frac
        if value is not None and not self.histogram.empty:
            frac = self.histogram.fraction_equal(value)
            if frac > 0.0:
                return min(1.0, frac * non_null)
        return min(1.0, non_null / self.ndv)

    def range_selectivity(self, op: str, value=None) -> float:
        """Selectivity of a one-sided range ``col <op> value``."""
        non_null = 1.0 - self.null_frac
        if value is None or self.histogram.empty:
            return DEFAULT_RANGE_SELECTIVITY * non_null
        if op == "<":
            frac = self.histogram.fraction_below(value, inclusive=False)
        elif op == "<=":
            frac = self.histogram.fraction_below(value, inclusive=True)
        elif op == ">":
            frac = 1.0 - self.histogram.fraction_below(value, inclusive=True)
        elif op == ">=":
            frac = 1.0 - self.histogram.fraction_below(value, inclusive=False)
        else:
            return DEFAULT_RANGE_SELECTIVITY * non_null
        return _clamp(frac * non_null)

    def between_selectivity(self, low=None, high=None) -> float:
        """Selectivity of ``col BETWEEN low AND high``."""
        non_null = 1.0 - self.null_frac
        if (low is None and high is None) or self.histogram.empty:
            return DEFAULT_RANGE_SELECTIVITY * 0.5 * non_null
        frac = self.histogram.fraction_between(low, high)
        return _clamp(frac * non_null)

    def in_selectivity(self, n_items: int, values=None) -> float:
        """Selectivity of ``col IN (v1 .. vn)``."""
        if values:
            total = sum(self.eq_selectivity(v) for v in values)
            return _clamp(total)
        return _clamp(n_items * self.eq_selectivity())

    def is_null_selectivity(self, negated: bool = False) -> float:
        """Selectivity of ``col IS [NOT] NULL``."""
        return _clamp(1.0 - self.null_frac if negated else self.null_frac)

    def like_selectivity(self, pattern=None) -> float:
        """Selectivity of ``col LIKE pattern`` (prefix patterns only bound)."""
        if isinstance(pattern, str) and pattern and pattern[0] not in "%_":
            prefix_len = len(pattern.split("%")[0].split("_")[0])
            # Longer constant prefixes select fewer rows.
            return _clamp(0.25 ** min(prefix_len, 4))
        return 0.25


def _clamp(x: float) -> float:
    return min(1.0, max(0.0, x))
