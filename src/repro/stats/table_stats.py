"""Per-table statistics and the statistics catalog."""

from __future__ import annotations

from dataclasses import dataclass, field

from .column_stats import ColumnStats


@dataclass
class TableStats:
    """Statistics for one table.

    Attributes:
        row_count: estimated number of rows.
        columns: per-column distribution stats.
    """

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        """Stats for a column; an uninformative default if never analyzed."""
        return self.columns.get(name, ColumnStats())

    def distinct_values(self, column_names: tuple[str, ...]) -> int:
        """Estimated NDV of a column combination.

        Uses the independence product of per-column NDVs, damped and capped
        at the row count.  The damping exponent acknowledges real-world
        correlation between co-indexed columns (full independence wildly
        overestimates combined NDV).
        """
        if not column_names:
            return 1
        if self.row_count <= 0:
            return 1
        product = 1.0
        for name in column_names:
            product *= max(1, self.column(name).ndv)
            if product >= self.row_count:
                return self.row_count
        # Damp: combined NDV grows sub-multiplicatively with extra columns.
        damped = product ** (0.5 + 0.5 / len(column_names))
        return max(1, min(self.row_count, int(damped)))


@dataclass
class StatsCatalog:
    """Statistics for every table in a schema.

    Dataless indexes (paper Sec. III-A4) are backed entirely by this
    catalog: the optimizer estimates index scan costs from column NDVs and
    histograms without any materialized index data.
    """

    tables: dict[str, TableStats] = field(default_factory=dict)

    def table(self, name: str) -> TableStats:
        """Stats for a table; empty stats if never analyzed."""
        if name not in self.tables:
            self.tables[name] = TableStats()
        return self.tables[name]

    def set_table(self, name: str, stats: TableStats) -> None:
        self.tables[name] = stats

    def row_count(self, table: str) -> int:
        return self.table(table).row_count
