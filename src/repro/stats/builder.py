"""Statistics builders: from stored data (ANALYZE) or synthetic specs.

Synthetic specs let benchmarks describe multi-gigabyte tables (TPC-H SF 10,
JOB) by their statistical shape alone -- the paper's estimated-cost
experiments never touch row data, only optimizer statistics, so this is a
faithful substitute for loading the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .column_stats import ColumnStats
from .histogram import Histogram
from .table_stats import StatsCatalog, TableStats


def analyze_column(values: Sequence) -> ColumnStats:
    """Compute column stats from raw values (the ANALYZE path)."""
    total = len(values)
    if total == 0:
        return ColumnStats()
    non_null = [v for v in values if v is not None]
    null_frac = (total - len(non_null)) / total
    ndv = max(1, len(set(non_null)))
    return ColumnStats(
        ndv=ndv,
        null_frac=null_frac,
        histogram=Histogram.from_values(non_null),
    )


def analyze_table(rows_by_column: Mapping[str, Sequence]) -> TableStats:
    """Compute table stats from a column-name -> values mapping."""
    columns = {name: analyze_column(values) for name, values in rows_by_column.items()}
    row_count = max((len(v) for v in rows_by_column.values()), default=0)
    return TableStats(row_count=row_count, columns=columns)


@dataclass(frozen=True)
class SyntheticColumn:
    """Statistical description of a column for stats-only benchmarks.

    Attributes:
        ndv: distinct values; ``-1`` means "unique per row".
        null_frac: NULL fraction.
        lo, hi: numeric domain bounds used to synthesize a uniform
            histogram so range predicates estimate sensibly.
    """

    ndv: int = -1
    null_frac: float = 0.0
    lo: float = 0.0
    hi: float = 1_000_000.0


def synthesize_table(
    row_count: int, columns: Mapping[str, SyntheticColumn]
) -> TableStats:
    """Build TableStats from synthetic per-column descriptions."""
    stats: dict[str, ColumnStats] = {}
    for name, spec in columns.items():
        ndv = row_count if spec.ndv == -1 else min(spec.ndv, max(1, row_count))
        histogram = _uniform_histogram(spec.lo, spec.hi)
        stats[name] = ColumnStats(
            ndv=max(1, ndv), null_frac=spec.null_frac, histogram=histogram
        )
    return TableStats(row_count=row_count, columns=stats)


def _uniform_histogram(lo: float, hi: float, buckets: int = 64) -> Histogram:
    if hi <= lo:
        return Histogram((lo,))
    step = (hi - lo) / buckets
    return Histogram(tuple(lo + i * step for i in range(buckets + 1)))


def catalog_from_tables(stats: Mapping[str, TableStats]) -> StatsCatalog:
    """Assemble a StatsCatalog from per-table stats."""
    return StatsCatalog(dict(stats))
