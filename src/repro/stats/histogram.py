"""Sample-based histogram for selectivity estimation.

A :class:`Histogram` stores a bounded sorted sample of non-null column
values.  Rank queries against the sample approximate an equi-depth
histogram: ``fraction_below(v)`` is the sample rank of ``v`` divided by the
sample size.  This is the same estimation quality class as MySQL's
equi-height histograms and is all the advisor substrate needs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

#: Maximum retained sample size; larger inputs are decimated evenly.
DEFAULT_SAMPLE_SIZE = 512


@dataclass(frozen=True)
class Histogram:
    """An immutable sorted sample of column values."""

    values: tuple = ()

    @classmethod
    def from_values(
        cls, values: Sequence, sample_size: int = DEFAULT_SAMPLE_SIZE
    ) -> "Histogram":
        """Build a histogram from raw (possibly unsorted, non-null) values."""
        cleaned = sorted(v for v in values if v is not None)
        if len(cleaned) > sample_size:
            step = len(cleaned) / sample_size
            cleaned = [cleaned[int(i * step)] for i in range(sample_size)]
        return cls(tuple(cleaned))

    @property
    def empty(self) -> bool:
        return not self.values

    def fraction_below(self, value, inclusive: bool = False) -> float:
        """Fraction of sampled values `< value` (or `<= value`).

        A type mismatch between the probe value and the sample (e.g. a
        string constant against a synthesized numeric histogram) falls
        back to the uninformed estimate instead of raising.
        """
        if self.empty:
            return 0.5
        try:
            if inclusive:
                rank = bisect.bisect_right(self.values, value)
            else:
                rank = bisect.bisect_left(self.values, value)
        except TypeError:
            return 0.5
        return rank / len(self.values)

    def fraction_between(
        self, low, high, low_inclusive: bool = True, high_inclusive: bool = True
    ) -> float:
        """Fraction of sampled values inside [low, high] (bounds optional).

        Pass ``None`` for an open bound.
        """
        lo_frac = 0.0
        if low is not None:
            lo_frac = self.fraction_below(low, inclusive=not low_inclusive)
        hi_frac = 1.0
        if high is not None:
            hi_frac = self.fraction_below(high, inclusive=high_inclusive)
        return max(0.0, hi_frac - lo_frac)

    def fraction_equal(self, value) -> float:
        """Fraction of sampled values equal to *value*."""
        if self.empty:
            return 0.0
        try:
            left = bisect.bisect_left(self.values, value)
            right = bisect.bisect_right(self.values, value)
        except TypeError:
            return 0.0
        return (right - left) / len(self.values)

    @property
    def min_value(self):
        return self.values[0] if self.values else None

    @property
    def max_value(self):
        return self.values[-1] if self.values else None
