"""Plan interpreter executing statements against stored rows."""

from .analyze import ActualPlanStats, q_error, render_explain_analyze
from .executor import ExecutionResult, Executor
from .operators import Aggregator, ExprEvaluator

__all__ = [
    "Executor",
    "ExecutionResult",
    "ExprEvaluator",
    "Aggregator",
    "ActualPlanStats",
    "q_error",
    "render_explain_analyze",
]
