"""Plan interpreter executing statements against stored rows."""

from .executor import ExecutionResult, Executor
from .operators import Aggregator, ExprEvaluator

__all__ = ["Executor", "ExecutionResult", "ExprEvaluator", "Aggregator"]
