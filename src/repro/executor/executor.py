"""Plan interpreter: executes statements against stored rows.

The executor asks the optimizer for a plan (materialized indexes only)
and interprets it: index/seq scans feed a left-deep pipeline of
nested-loop probes or hash joins, followed by grouping, ordering and
projection.  Every operator accounts its work in an
:class:`~repro.engine.ExecutionMetrics`, which the workload monitor then
converts into ``cpu_avg`` and the discarded data ratio.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..engine import Database, ExecutionMetrics
from ..engine.storage import TableStorage
from ..obs import PlanEstimate, emit, profile, record_execution_metrics
from ..optimizer import Optimizer
from ..optimizer.plan import AccessPath, JoinStep, Plan
from ..optimizer.query_info import QueryInfo
from ..optimizer.selectivity import constant_value
from ..sqlparser import ast, normalize_statement, parse
from .analyze import ActualPlanStats
from .operators import Aggregator, ExprEvaluator

#: Cap on IN-list cartesian expansion for multi-subrange index scans.
MAX_SUBRANGES = 200


@dataclass
class ExecutionResult:
    """Outcome of executing one statement."""

    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0                    # affected rows for DML
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    plan: Optional[Plan] = None
    actual: Optional[ActualPlanStats] = None   # EXPLAIN ANALYZE tree

    def cpu_seconds(self, params) -> float:
        return self.metrics.cpu_seconds(params)


class Executor:
    """Executes parsed statements against a stored database."""

    def __init__(self, db: Database):
        if db.storage is None:
            raise RuntimeError("executor requires a stored database")
        self.db = db
        self.optimizer = Optimizer(db)

    def execute(
        self, stmt: str | ast.Statement, analyze: bool = False
    ) -> ExecutionResult:
        """Execute a statement and return rows/rowcount plus metrics.

        With ``analyze=True`` (SELECT only) the result additionally
        carries an :class:`ActualPlanStats` tree of per-operator actuals
        -- EXPLAIN ANALYZE -- and per-node estimate-vs-actual comparisons
        are emitted into the decision journal as ``plan_estimate`` events.
        """
        if isinstance(stmt, str):
            stmt = parse(stmt)
        with profile("executor.execute"):
            if isinstance(stmt, ast.Select):
                result = self._execute_select(stmt, analyze=analyze)
            elif isinstance(stmt, ast.Insert):
                result = self._execute_insert(stmt)
            elif isinstance(stmt, ast.Update):
                result = self._execute_update(stmt)
            elif isinstance(stmt, ast.Delete):
                result = self._execute_delete(stmt)
            else:
                raise TypeError(f"cannot execute {type(stmt).__name__}")
        record_execution_metrics(result.metrics, type(stmt).__name__.lower())
        if result.actual is not None:
            sql = normalize_statement(stmt).to_sql()
            for _depth, node in result.actual.walk():
                emit(PlanEstimate(
                    sql=sql,
                    node=node.label,
                    est_rows=node.est_rows,
                    actual_rows=node.rows,
                    q_error=node.q_error,
                ))
        return result

    # -- SELECT ----------------------------------------------------------------

    def _execute_select(
        self, stmt: ast.Select, analyze: bool = False
    ) -> ExecutionResult:
        started = time.perf_counter() if analyze else 0.0
        plan = self.optimizer.explain(stmt, materialized_only=True)
        info = plan.info
        metrics = ExecutionMetrics()
        evaluator = ExprEvaluator(info, self.db.schema)
        pipeline = _Pipeline(
            self, info, plan, evaluator, metrics, collect_actuals=analyze
        )
        stream = pipeline.run()
        # Early termination: when the pipeline already delivers rows in
        # ORDER BY order (no sort planned) and there is no aggregation,
        # only LIMIT+OFFSET rows need to be produced.
        if (
            stmt.limit is not None
            and stmt.limit >= 0
            and not stmt.group_by
            and not stmt.distinct
            and not _has_aggregates(stmt)
            and (not stmt.order_by or plan.sort_rows == 0)
        ):
            stream = itertools.islice(stream, (stmt.offset or 0) + stmt.limit)
        scopes = list(stream)
        rows = self._project(stmt, info, evaluator, scopes, metrics)
        metrics.rows_sent = len(rows)
        result = ExecutionResult(
            rows=rows, rowcount=len(rows), metrics=metrics, plan=plan
        )
        if analyze:
            result.actual = _actual_tree(
                plan, pipeline, metrics, len(rows),
                time.perf_counter() - started,
            )
        return result

    def _project(
        self,
        stmt: ast.Select,
        info: QueryInfo,
        evaluator: ExprEvaluator,
        scopes: list[dict],
        metrics: ExecutionMetrics,
    ) -> list[tuple]:
        if stmt.group_by or _has_aggregates(stmt):
            rows = self._aggregate(stmt, info, evaluator, scopes, metrics)
        else:
            rows = [self._emit(stmt, info, evaluator, scope) for scope in scopes]
            if stmt.distinct:
                # Keep each surviving row's *own* scope: ORDER BY keys are
                # computed from scopes, so rows and scopes must stay paired.
                seen: set = set()
                unique = []
                unique_scopes = []
                for row, scope in zip(rows, scopes):
                    if row not in seen:
                        seen.add(row)
                        unique.append(row)
                        unique_scopes.append(scope)
                rows, scopes = unique, unique_scopes
            if stmt.order_by:
                rows = self._order(stmt, info, evaluator, scopes, rows, metrics)
        rows = self._apply_limit(stmt, rows)
        return rows

    def _emit(self, stmt, info, evaluator, scope) -> tuple:
        out: list[Any] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                bindings = (
                    [item.expr.table] if item.expr.table else list(info.bindings)
                )
                for binding in bindings:
                    row = scope[binding]
                    table = self.db.schema.table(info.bindings[binding])
                    out.extend(row.get(c) for c in table.column_names)
            else:
                out.append(evaluator.value(item.expr, scope))
        return tuple(out)

    def _aggregate(self, stmt, info, evaluator, scopes, metrics) -> list[tuple]:
        def group_key(scope) -> tuple:
            return tuple(
                evaluator.value(expr, scope) if not isinstance(expr, ast.ColumnRef)
                else evaluator.value(expr, scope)
                for expr in stmt.group_by
            )

        groups: dict[tuple, dict] = {}
        order: list[tuple] = []
        for scope in scopes:
            key = group_key(scope) if stmt.group_by else ()
            state = groups.get(key)
            if state is None:
                aggregators = {}
                for item in stmt.items:
                    if isinstance(item.expr, ast.Star):
                        continue
                    for node in ast.iter_exprs(item.expr):
                        if isinstance(node, ast.FuncCall) and node.is_aggregate:
                            aggregators[id(node)] = (node, Aggregator(node))
                state = {"scope": scope, "aggs": aggregators}
                groups[key] = state
                order.append(key)
            for _node, agg in state["aggs"].values():
                agg.add(evaluator, scope)

        if not groups and not stmt.group_by:
            # A global aggregate over zero rows still returns one row
            # (COUNT(*) = 0, SUM/MIN/MAX/AVG = NULL).
            aggregators = {}
            for item in stmt.items:
                if isinstance(item.expr, ast.Star):
                    continue
                for node in ast.iter_exprs(item.expr):
                    if isinstance(node, ast.FuncCall) and node.is_aggregate:
                        aggregators[id(node)] = (node, Aggregator(node))
            groups[()] = {"scope": {}, "aggs": aggregators}
            order.append(())

        rows = []
        emitted: list[tuple[tuple, dict]] = [(key, groups[key]) for key in order]
        if stmt.having is not None:
            emitted = [
                (key, state)
                for key, state in emitted
                if self._having_ok(stmt.having, evaluator, state)
            ]
        for _key, state in emitted:
            rows.append(self._emit_aggregate(stmt, evaluator, state))
        if stmt.order_by:
            rows = self._order_aggregated(stmt, evaluator, emitted, rows, metrics)
        return rows

    def _agg_value(self, expr: ast.Expr, evaluator, state) -> Any:
        """Evaluate an expression that may contain aggregate results."""
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            entry = state["aggs"].get(id(expr))
            if entry is not None:
                return entry[1].result()
            # Structurally equal aggregate (e.g. in HAVING): match by SQL.
            for node, agg in state["aggs"].values():
                if node.to_sql() == expr.to_sql():
                    return agg.result()
            fresh = Aggregator(expr)
            return fresh.result()
        if isinstance(expr, ast.Arithmetic):
            left = self._agg_value(expr.left, evaluator, state)
            right = self._agg_value(expr.right, evaluator, state)
            if left is None or right is None:
                return None
            return evaluator.value(
                ast.Arithmetic(expr.op, ast.Literal(left), ast.Literal(right)), {}
            )
        return evaluator.value(expr, state["scope"])

    def _emit_aggregate(self, stmt, evaluator, state) -> tuple:
        out = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                continue
            out.append(self._agg_value(item.expr, evaluator, state))
        return tuple(out)

    def _having_ok(self, having: ast.Expr, evaluator, state) -> bool:
        if isinstance(having, ast.And):
            return all(self._having_ok(item, evaluator, state) for item in having.items)
        if isinstance(having, ast.Or):
            return any(self._having_ok(item, evaluator, state) for item in having.items)
        if isinstance(having, ast.Not):
            return not self._having_ok(having.item, evaluator, state)
        if isinstance(having, ast.Comparison):
            left = self._agg_value(having.left, evaluator, state)
            right = self._agg_value(having.right, evaluator, state)
            if left is None or right is None:
                return False
            probe = ast.Comparison(having.op, ast.Literal(left), ast.Literal(right))
            return evaluator.matches(probe, {})
        return evaluator.matches(having, state["scope"])

    def _order(self, stmt, info, evaluator, scopes, rows, metrics) -> list[tuple]:
        keyed = []
        for scope, row in zip(scopes, rows):
            key = tuple(
                _sort_key(evaluator.value(o.expr, scope), o.desc)
                for o in stmt.order_by
            )
            keyed.append((key, row))
        metrics.sort_rows += len(keyed)
        keyed.sort(key=lambda pair: pair[0])
        return [row for _key, row in keyed]

    def _order_aggregated(self, stmt, evaluator, emitted, rows, metrics) -> list[tuple]:
        keyed = []
        for (_key, state), row in zip(emitted, rows):
            key = tuple(
                _sort_key(self._agg_value(o.expr, evaluator, state), o.desc)
                for o in stmt.order_by
            )
            keyed.append((key, row))
        metrics.sort_rows += len(keyed)
        keyed.sort(key=lambda pair: pair[0])
        return [row for _key, row in keyed]

    def _apply_limit(self, stmt, rows: list[tuple]) -> list[tuple]:
        offset = stmt.offset or 0
        if stmt.limit is not None and stmt.limit >= 0:
            return rows[offset : offset + stmt.limit]
        if offset:
            return rows[offset:]
        return rows

    # -- DML -----------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.Insert) -> ExecutionResult:
        metrics = ExecutionMetrics()
        storage = self.db._storage_for(stmt.table.name)
        for value_row in stmt.rows:
            row = {
                col: constant_value(expr)
                for col, expr in zip(stmt.columns, value_row)
            }
            storage.insert_row(row, metrics)
            metrics.pages_written += 1
        return ExecutionResult(rowcount=len(stmt.rows), metrics=metrics)

    def _execute_update(self, stmt: ast.Update) -> ExecutionResult:
        metrics = ExecutionMetrics()
        row_ids, plan = self._locate(stmt.table, stmt.where, metrics)
        storage = self.db._storage_for(stmt.table.name)
        info = self.optimizer.analyze(stmt)
        evaluator = ExprEvaluator(info, self.db.schema)
        for row_id in row_ids:
            scope = {stmt.table.binding: storage.get_row(row_id)}
            changes = {
                col: evaluator.value(expr, scope)
                for col, expr in stmt.assignments
            }
            storage.update_row(row_id, changes, metrics)
            metrics.pages_written += 1
        return ExecutionResult(rowcount=len(row_ids), metrics=metrics, plan=plan)

    def _execute_delete(self, stmt: ast.Delete) -> ExecutionResult:
        metrics = ExecutionMetrics()
        row_ids, plan = self._locate(stmt.table, stmt.where, metrics)
        storage = self.db._storage_for(stmt.table.name)
        for row_id in row_ids:
            storage.delete_row(row_id, metrics)
            metrics.pages_written += 1
        return ExecutionResult(rowcount=len(row_ids), metrics=metrics, plan=plan)

    def _locate(
        self, table_ref: ast.TableRef, where: Optional[ast.Expr], metrics
    ) -> tuple[list[int], Plan]:
        """Row ids matching a DML WHERE clause, via the planned access path."""
        select = ast.Select(
            items=(ast.SelectItem(ast.Star()),),
            tables=(table_ref,),
            where=where,
        )
        plan = self.optimizer.explain(select, materialized_only=True)
        info = plan.info
        evaluator = ExprEvaluator(info, self.db.schema)
        pipeline = _Pipeline(self, info, plan, evaluator, metrics)
        return [scope_ids[table_ref.binding] for _scope, scope_ids in
                pipeline.run_with_ids()], plan


def _actual_tree(
    plan: Plan,
    pipeline: "_Pipeline",
    metrics: ExecutionMetrics,
    rows_sent: int,
    wall_seconds: float,
) -> ActualPlanStats:
    """Assemble the EXPLAIN ANALYZE tree from a pipeline's accumulators.

    The left-deep join chain nests drive-side-innermost (the driving scan
    is the deepest child, like a bottom-up EXPLAIN rendering); an explicit
    Sort node appears only when the execution actually performed one (a
    predicted sort may be elided, e.g. by hash aggregation), and the
    Result root accounts the projected output.
    """
    inner: Optional[ActualPlanStats] = None
    for node in pipeline.nodes:
        if inner is not None:
            node.children.append(inner)
        inner = node
    if metrics.sort_rows > 0:
        sort = ActualPlanStats(
            label="Sort",
            est_rows=plan.sort_rows if plan.sort_rows > 0 else metrics.sort_rows,
            est_loops=1.0,
            rows=metrics.sort_rows,
            loops=1,
        )
        if inner is not None:
            sort.children.append(inner)
        inner = sort
    root = ActualPlanStats(
        label="Result",
        est_rows=plan.rows_out,
        est_loops=1.0,
        rows=rows_sent,
        loops=1,
        wall_seconds=wall_seconds,
    )
    if inner is not None:
        root.children.append(inner)
    return root


def _has_aggregates(stmt: ast.Select) -> bool:
    return any(
        isinstance(node, ast.FuncCall) and node.is_aggregate
        for item in stmt.items
        if not isinstance(item.expr, ast.Star)
        for node in ast.iter_exprs(item.expr)
    )


def _sort_key(value: Any, desc: bool):
    """Total-order sort key with None first and DESC inversion."""
    none_rank = 0 if value is None else 1
    if value is None:
        payload: Any = 0
    elif isinstance(value, bool):
        payload = int(value)
    elif isinstance(value, (int, float)):
        payload = value
    else:
        payload = str(value)
    type_rank = 0 if isinstance(payload, (int, float)) else 1
    if desc:
        none_rank = -none_rank
        type_rank = -type_rank
        payload = _Reversed(payload)
    return (none_rank, type_rank, payload)


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


class _Pipeline:
    """Interprets a plan's join pipeline, yielding scopes (binding -> row)."""

    def __init__(self, executor: Executor, info: QueryInfo, plan: Plan,
                 evaluator: ExprEvaluator, metrics: ExecutionMetrics,
                 collect_actuals: bool = False):
        self.executor = executor
        self.db = executor.db
        self.info = info
        self.plan = plan
        self.evaluator = evaluator
        self.metrics = metrics
        # EXPLAIN ANALYZE accumulators, one per join step (None when off).
        self.nodes: list[ActualPlanStats] = (
            [
                ActualPlanStats(
                    label=step.path.describe(),
                    est_rows=step.rows_after,
                    est_loops=step.executions,
                )
                for step in plan.steps
            ]
            if collect_actuals
            else []
        )

    def run(self) -> Iterator[dict]:
        for scope, _ids in self.run_with_ids():
            yield scope

    def run_with_ids(self) -> Iterator[tuple[dict, dict]]:
        steps = self.plan.steps
        if not steps:
            return
        stream = self._drive(steps[0])
        if self.nodes:
            self.nodes[0].loops = 1
            stream = self._observe(stream, self.nodes[0])
        bound = [steps[0].path.binding]
        for i, step in enumerate(steps[1:], start=1):
            stream = self._join(stream, step, tuple(bound), i)
            if self.nodes:
                stream = self._observe(stream, self.nodes[i])
            bound.append(step.path.binding)
        yield from stream

    def _observe(
        self, stream: Iterator, node: ActualPlanStats
    ) -> Iterator[tuple[dict, dict]]:
        """Count rows and inclusive wall time a stage produces/spends."""
        stream = iter(stream)
        while True:
            started = time.perf_counter()
            try:
                item = next(stream)
            except StopIteration:
                node.wall_seconds += time.perf_counter() - started
                return
            node.wall_seconds += time.perf_counter() - started
            node.rows += 1
            yield item

    # -- scans ---------------------------------------------------------------

    def _drive(self, step: JoinStep) -> Iterator[tuple[dict, dict]]:
        path = step.path
        node = self.nodes[0] if self.nodes else None
        for row, row_id in self._scan(path, {}, node):
            scope = {path.binding: row}
            ids = {path.binding: row_id}
            if self._accept(path.binding, scope, first=True):
                yield scope, ids

    def _join(
        self, stream: Iterator, step: JoinStep, bound: tuple[str, ...],
        step_index: int,
    ) -> Iterator[tuple[dict, dict]]:
        node = self.nodes[step_index] if self.nodes else None
        if step.join_method == "hash":
            yield from self._hash_join(stream, step, bound, node)
            return
        path = step.path
        for scope, ids in stream:
            if node is not None:
                node.loops += 1
            for row, row_id in self._scan(path, scope, node):
                new_scope = dict(scope)
                new_scope[path.binding] = row
                new_ids = dict(ids)
                new_ids[path.binding] = row_id
                if self._accept(path.binding, new_scope, bound=bound):
                    yield new_scope, new_ids

    def _hash_join(
        self, stream: Iterator, step: JoinStep, bound: tuple[str, ...],
        node: Optional[ActualPlanStats] = None,
    ) -> Iterator[tuple[dict, dict]]:
        binding = step.path.binding
        edges = [
            e for e in self.info.join_edges
            if e.touches(binding) and e.other(binding)[0] in bound
        ]
        if node is not None:
            node.loops += 1      # one build-side scan
        table: dict[tuple, list[tuple[dict, int]]] = {}
        for row, row_id in self._scan(step.path, {}, node):
            scope = {binding: row}
            if not self._filters_ok(binding, scope):
                continue
            key = tuple(row.get(e.column_of(binding)) for e in edges)
            table.setdefault(key, []).append((row, row_id))
        for scope, ids in stream:
            key = tuple(
                scope[e.other(binding)[0]].get(e.other(binding)[1]) for e in edges
            )
            for row, row_id in table.get(key, ()):
                new_scope = dict(scope)
                new_scope[binding] = row
                new_ids = dict(ids)
                new_ids[binding] = row_id
                if self._accept(binding, new_scope, bound=bound, skip_filters=True):
                    yield new_scope, new_ids

    def _scan(
        self, path: AccessPath, outer_scope: dict,
        node: Optional[ActualPlanStats] = None,
    ) -> Iterator[tuple[dict, int]]:
        storage = self.db._storage_for(path.table)
        if path.method == "seq":
            yield from self._seq_scan(storage, node)
            return
        yield from self._index_scan(path, storage, outer_scope, node)

    def _seq_scan(
        self, storage: TableStorage, node: Optional[ActualPlanStats] = None
    ) -> Iterator[tuple[dict, int]]:
        params = self.db.params
        pages = params.pages_for(storage.row_count, storage.table.row_width)
        self.metrics.seq_pages += pages
        if node is not None:
            node.pages_read += pages
        for row_id in list(storage.all_row_ids()):
            row = storage.rows.get(row_id)
            if row is None:
                continue
            self.metrics.rows_read += 1
            if node is not None:
                node.rows_scanned += 1
            yield row, row_id

    def _index_scan(
        self, path: AccessPath, storage: TableStorage, outer_scope: dict,
        node: Optional[ActualPlanStats] = None,
    ) -> Iterator[tuple[dict, int]]:
        structure = (
            storage.pk_index
            if path.method == "pk"
            else storage.get_index(path.index.name)
        )
        if structure is None:
            # Index vanished between planning and execution; degrade safely.
            yield from self._seq_scan(storage, node)
            return
        reverse = self._reverse_scan(path)
        if path.skip_scan:
            # Skip scan: the leading column has no predicate.  Execute as
            # a full index scan (bounds would bind the wrong column);
            # residual predicate evaluation keeps results correct.
            prefixes: list[tuple] = [()]
            low = high = None
            low_inc = high_inc = True
        else:
            prefixes = self._prefix_values(path, outer_scope)
            low, high, low_inc, high_inc = self._range_bounds(path)
        # One random page per scan invocation reaches the leaf level: the
        # first probe's descent warms the internal B-tree nodes, so the
        # remaining prefixes (IN-list combinations) descend through cached
        # pages.  Leaf I/O is charged separately below from the entries
        # actually read, mirroring the optimizer's cost model.
        self.metrics.random_pages += 1
        if node is not None:
            node.pages_read += 1
        for prefix in prefixes:
            entries = 0
            # Range bounds bind the key column right after the eq prefix;
            # they only apply when the whole prefix is concrete.
            full_prefix = len(prefix) == len(path.eq_columns)
            use_low = low if full_prefix else None
            use_high = high if full_prefix else None
            if not prefix and use_low is None and use_high is None:
                scan = structure.scan_all(reverse=reverse)
            else:
                scan = structure.scan_prefix(
                    prefix, use_low, use_high, low_inc, high_inc
                )
            for _key, row_id in scan:
                row = storage.rows.get(row_id)
                if row is None:
                    continue
                entries += 1
                self.metrics.index_entries_read += 1
                if not path.covering:
                    self.metrics.random_pages += 1
                    if node is not None:
                        node.pages_read += 1
                self.metrics.rows_read += 1
                if node is not None:
                    node.rows_scanned += 1
                yield row, row_id
            if path.method == "index":
                entry_width = path.index.entry_width(storage.table)
                leaf_pages = self.db.params.pages_for(entries, entry_width)
                self.metrics.seq_pages += leaf_pages
                if node is not None:
                    node.pages_read += leaf_pages

    def _reverse_scan(self, path: AccessPath) -> bool:
        return bool(
            path.order_satisfied
            and self.info.order_by
            and all(o.desc for o in self.info.order_by)
        )

    def _prefix_values(self, path: AccessPath, outer_scope: dict) -> list[tuple]:
        """Concrete key prefixes for the scan (IN-lists expand)."""
        binding = path.binding
        per_column: list[list] = []
        for col in path.eq_columns:
            values = self._eq_values(binding, col, outer_scope)
            if values is None:
                break
            per_column.append(values)
        combos: list[tuple] = [()]
        for values in per_column:
            combos = [c + (v,) for c in combos for v in values]
            if len(combos) > MAX_SUBRANGES:
                return [()]   # too many subranges: full index scan
        return combos

    def _eq_values(self, binding: str, col: str, outer_scope: dict):
        for pred in self.info.filters.get(binding, []):
            if pred.column.column != col:
                continue
            if pred.op in ("=", "<=>"):
                value = constant_value(pred.expr.right)
                if value is None:
                    value = constant_value(pred.expr.left)
                if value is not None:
                    return [value]
            elif pred.op == "IN":
                values = [constant_value(item) for item in pred.expr.items]
                if all(v is not None for v in values):
                    return values
            elif pred.op == "IS NULL":
                return [None]
        for edge in self.info.join_edges:
            if not edge.touches(binding) or edge.column_of(binding) != col:
                continue
            other_binding, other_col = edge.other(binding)
            if other_binding in outer_scope:
                return [outer_scope[other_binding].get(other_col)]
        return None

    def _range_bounds(self, path: AccessPath):
        low = high = None
        low_inc = high_inc = True
        if path.range_column is None:
            return low, high, low_inc, high_inc
        for pred in self.info.filters.get(path.binding, []):
            if pred.column.column != path.range_column or not pred.is_range:
                continue
            expr = pred.expr
            if pred.op in (">", ">="):
                value = constant_value(expr.right)
                if value is not None and (low is None or value > low):
                    low, low_inc = value, pred.op == ">="
            elif pred.op in ("<", "<="):
                value = constant_value(expr.right)
                if value is not None and (high is None or value < high):
                    high, high_inc = value, pred.op == "<="
            elif pred.op == "BETWEEN":
                lo = constant_value(expr.low)
                hi = constant_value(expr.high)
                if lo is not None and (low is None or lo > low):
                    low, low_inc = lo, True
                if hi is not None and (high is None or hi < high):
                    high, high_inc = hi, True
        return low, high, low_inc, high_inc

    # -- predicate application -----------------------------------------------------

    def _filters_ok(self, binding: str, scope: dict) -> bool:
        self.metrics.predicate_evals += len(self.info.filters.get(binding, []))
        for pred in self.info.filters.get(binding, []):
            if not self.evaluator.matches(pred.expr, scope):
                return False
        return True

    def _accept(
        self,
        binding: str,
        scope: dict,
        first: bool = False,
        bound: tuple[str, ...] = (),
        skip_filters: bool = False,
    ) -> bool:
        if not skip_filters and not self._filters_ok(binding, scope):
            return False
        available = set(scope)
        for edge in self.info.join_edges:
            if not edge.touches(binding):
                continue
            other_binding, other_col = edge.other(binding)
            if other_binding not in available:
                continue
            self.metrics.predicate_evals += 1
            left = scope[binding].get(edge.column_of(binding))
            right = scope[other_binding].get(other_col)
            if left is None or right is None or left != right:
                return False
        for touched, expr in self.info.complex_conjuncts:
            if binding not in touched or not touched <= available:
                continue
            self.metrics.predicate_evals += 1
            if not self.evaluator.matches(expr, scope):
                return False
        return True
