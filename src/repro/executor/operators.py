"""Expression evaluation over row scopes.

The executor interprets AST expressions against a *scope*: the current
row of every bound table.  SQL three-valued logic is approximated with
Python ``None`` propagation -- a comparison involving NULL is not
satisfied, matching WHERE-clause semantics.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Mapping, Optional

from ..optimizer.query_info import QueryInfo, ResolutionError
from ..sqlparser import ast

Row = Mapping[str, Any]
Scope = Mapping[str, Row]          # binding name -> row


class ExprEvaluator:
    """Evaluates expressions for one analyzed query.

    Unqualified column names are resolved once (against the query's
    bindings) and cached.
    """

    def __init__(self, info: QueryInfo, schema):
        self._info = info
        self._schema = schema
        self._resolution: dict[str, str] = {}   # bare column -> binding

    def resolve_binding(self, ref: ast.ColumnRef) -> str:
        if ref.table is not None:
            return ref.table
        if ref.column in self._resolution:
            return self._resolution[ref.column]
        matches = [
            binding
            for binding, table_name in self._info.bindings.items()
            if self._schema.table(table_name).has_column(ref.column)
        ]
        if len(matches) != 1:
            raise ResolutionError(f"cannot resolve column {ref.column!r}")
        self._resolution[ref.column] = matches[0]
        return matches[0]

    def value(self, expr: ast.Expr, scope: Scope) -> Any:
        """Evaluate a scalar (non-boolean) expression."""
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            binding = self.resolve_binding(expr)
            row = scope.get(binding)
            return None if row is None else row.get(expr.column)
        if isinstance(expr, ast.Arithmetic):
            left = self.value(expr.left, scope)
            right = self.value(expr.right, scope)
            if left is None or right is None:
                return None
            try:
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if expr.op == "/":
                    return left / right if right else None
                if expr.op == "%":
                    return left % right if right else None
            except TypeError:
                return None
        if isinstance(expr, ast.Param):
            raise ValueError("cannot execute a parameterized query (`?`)")
        if isinstance(expr, ast.FuncCall):
            raise ValueError(
                f"aggregate {expr.name} outside aggregation context"
            )
        # Boolean sub-expression used as a value.
        return self.matches(expr, scope)

    def matches(self, expr: Optional[ast.Expr], scope: Scope) -> bool:
        """Evaluate a predicate; NULL comparisons yield False."""
        if expr is None:
            return True
        if isinstance(expr, ast.And):
            return all(self.matches(item, scope) for item in expr.items)
        if isinstance(expr, ast.Or):
            return any(self.matches(item, scope) for item in expr.items)
        if isinstance(expr, ast.Not):
            return not self.matches(expr.item, scope)
        if isinstance(expr, ast.Comparison):
            return self._compare(expr, scope)
        if isinstance(expr, ast.InList):
            value = self.value(expr.expr, scope)
            if value is None:
                return False
            items = [self.value(item, scope) for item in expr.items]
            result = any(_sql_eq(value, item) for item in items)
            return (not result) if expr.negated else result
        if isinstance(expr, ast.Between):
            value = self.value(expr.expr, scope)
            low = self.value(expr.low, scope)
            high = self.value(expr.high, scope)
            if value is None or low is None or high is None:
                return False
            try:
                result = low <= value <= high
            except TypeError:
                return False
            return (not result) if expr.negated else result
        if isinstance(expr, ast.IsNull):
            value = self.value(expr.expr, scope)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.Literal):
            return bool(expr.value)
        raise ValueError(f"cannot evaluate predicate {expr.to_sql()}")

    def _compare(self, expr: ast.Comparison, scope: Scope) -> bool:
        left = self.value(expr.left, scope)
        right = self.value(expr.right, scope)
        op = expr.op
        if op == "<=>":
            return _sql_eq(left, right) or (left is None and right is None)
        if left is None or right is None:
            return False
        if op == "LIKE":
            return _like(str(left), str(right))
        try:
            if op == "=":
                return _sql_eq(left, right)
            if op == "!=":
                return not _sql_eq(left, right)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
        raise ValueError(f"unknown comparison operator {op!r}")


def _sql_eq(left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    return str(left) == str(right) if type(left) is not type(right) else left == right


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.compile(f"^{regex}$", re.DOTALL)


def _like(value: str, pattern: str) -> bool:
    return _like_regex(pattern).match(value) is not None


class Aggregator:
    """Accumulates one aggregate function over a group."""

    def __init__(self, func: ast.FuncCall):
        self.func = func
        self.count = 0
        self.total: Any = None
        self.min_value: Any = None
        self.max_value: Any = None
        self.distinct_values: set = set()

    def add(self, evaluator: ExprEvaluator, scope: Scope) -> None:
        if self.func.star:
            self.count += 1
            return
        value = evaluator.value(self.func.args[0], scope)
        if value is None:
            return
        if self.func.distinct:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.count += 1
        if self.func.name in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        if self.func.name == "MIN":
            self.min_value = value if self.min_value is None else min(self.min_value, value)
        if self.func.name == "MAX":
            self.max_value = value if self.max_value is None else max(self.max_value, value)

    def result(self) -> Any:
        name = self.func.name
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total
        if name == "AVG":
            return None if self.count == 0 else self.total / self.count
        if name == "MIN":
            return self.min_value
        if name == "MAX":
            return self.max_value
        raise ValueError(f"unknown aggregate {name}")
