"""EXPLAIN ANALYZE: per-operator actuals and estimated-vs-actual diffing.

When the executor runs with ``analyze=True`` it accounts, per plan
operator, the rows it produced, how many times it ran (loops), the pages
it read and its inclusive wall time, into an :class:`ActualPlanStats`
tree attached to the :class:`~repro.executor.ExecutionResult`.  The
renderer prints the optimizer's estimates side by side with those actuals
plus the per-node **Q-error** -- ``max(est/actual, actual/est)`` -- the
standard cardinality-estimation quality measure, so a what-if plan can be
diffed against post-materialization reality node by node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..optimizer.plan import Plan

__all__ = ["ActualPlanStats", "q_error", "render_explain_analyze"]


def q_error(estimated: float, actual: float) -> float:
    """Multiplicative estimation error, >= 1.0 (1.0 = perfect).

    Zero-row sides are clamped to one row -- the conventional treatment,
    so an estimate of 0 against an actual of 0 is perfect rather than
    undefined, and 0-vs-N degrades gracefully to N.
    """
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


@dataclass
class ActualPlanStats:
    """Measured execution statistics for one plan operator.

    Attributes:
        label: the operator's EXPLAIN label (``AccessPath.describe()``,
            ``Sort``, ``Result``).
        est_rows: optimizer's cumulative row estimate at this node.
        est_loops: optimizer's predicted executions of this node.
        rows: actual rows this node produced (after its filters), summed
            over all loops.
        loops: times the node actually ran (1 for a driving scan or hash
            build, one per outer row for a nested-loop inner).
        rows_scanned: rows fetched from storage/index before filtering.
        pages_read: pages this node touched (sequential + random).
        wall_seconds: inclusive wall time (node + its children), like
            PostgreSQL's EXPLAIN ANALYZE timings.
        children: input operators (left-deep pipelines nest drive-side).
    """

    label: str
    est_rows: float = 0.0
    est_loops: float = 1.0
    rows: int = 0
    loops: int = 0
    rows_scanned: int = 0
    pages_read: int = 0
    wall_seconds: float = 0.0
    children: list["ActualPlanStats"] = field(default_factory=list)

    @property
    def q_error(self) -> float:
        """Cardinality Q-error of this node's row estimate."""
        return q_error(self.est_rows, self.rows)

    def walk(self) -> Iterator[tuple[int, "ActualPlanStats"]]:
        """Depth-first (node, depth) traversal from this node."""
        stack: list[tuple[int, ActualPlanStats]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def find(self, label_prefix: str) -> list["ActualPlanStats"]:
        """All nodes whose label starts with *label_prefix*."""
        return [
            node for _depth, node in self.walk()
            if node.label.startswith(label_prefix)
        ]

    def max_q_error(self) -> float:
        return max(node.q_error for _depth, node in self.walk())

    def to_dict(self) -> dict:
        """JSON-ready nested representation (CLI ``--format json``)."""
        return {
            "label": self.label,
            "est_rows": self.est_rows,
            "est_loops": self.est_loops,
            "rows": self.rows,
            "loops": self.loops,
            "rows_scanned": self.rows_scanned,
            "pages_read": self.pages_read,
            "wall_seconds": self.wall_seconds,
            "q_error": self.q_error,
            "children": [child.to_dict() for child in self.children],
        }


def render_explain_analyze(
    plan: Plan, actual: Optional[ActualPlanStats] = None
) -> str:
    """EXPLAIN [ANALYZE] text: estimates, and actuals when available.

    Without *actual* this renders the estimated plan only (plain
    EXPLAIN); with it, each node shows estimated vs. actual rows, the
    Q-error, loop counts, pages read and inclusive wall time.
    """
    if actual is None:
        return plan.describe()
    header = (
        f"{'node':<44} {'est rows':>9} {'act rows':>9} {'Q-err':>7} "
        f"{'loops':>6} {'pages':>7} {'ms':>8}"
    )
    lines = ["EXPLAIN ANALYZE", header, "-" * len(header)]
    for depth, node in actual.walk():
        label = ("  " * depth + node.label)[:44]
        lines.append(
            f"{label:<44} {node.est_rows:>9.0f} {node.rows:>9} "
            f"{node.q_error:>7.2f} {node.loops:>6} {node.pages_read:>7} "
            f"{node.wall_seconds * 1e3:>8.2f}"
        )
    lines.append(
        f"estimated total cost {plan.total_cost:.2f}; "
        f"worst node Q-error {actual.max_q_error():.2f}"
    )
    return "\n".join(lines)
