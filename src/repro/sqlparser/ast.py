"""Abstract syntax tree for the SQL subset.

Every node renders itself back to canonical SQL through :meth:`Node.to_sql`,
which is what query normalization uses to produce stable fingerprints.
Nodes are plain (hashable where useful) dataclasses; tree rewriting is done
functionally via :func:`map_expr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence, Union


class Node:
    """Base class for all AST nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_sql()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    """Base class for expression nodes."""


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column, optionally qualified by a table name or alias."""

    table: Optional[str]
    column: str

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL."""

    value: Union[int, float, str, bool, None]

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """The ``?`` placeholder of a normalized (parameterized) query."""

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison such as ``a = b`` or ``a <= 5``.

    ``op`` is one of ``=``, ``<=>``, ``!=``, ``<``, ``<=``, ``>``, ``>=``,
    ``LIKE``.
    """

    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)`` with a literal item list."""

    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(item.to_sql() for item in self.items)
        neg = "NOT " if self.negated else ""
        return f"{self.expr.to_sql()} {neg}IN ({inner})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        neg = "NOT " if self.negated else ""
        return (
            f"{self.expr.to_sql()} {neg}BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()}"
        )


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False

    def to_sql(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr.to_sql()} IS {neg}NULL"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of two or more expressions."""

    items: tuple[Expr, ...]

    def to_sql(self) -> str:
        return " AND ".join(_paren_if_or(item) for item in self.items)


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of two or more expressions."""

    items: tuple[Expr, ...]

    def to_sql(self) -> str:
        return " OR ".join(item.to_sql() for item in self.items)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    item: Expr

    def to_sql(self) -> str:
        return f"NOT ({self.item.to_sql()})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function or aggregate call, e.g. ``COUNT(*)`` or ``SUM(price)``."""

    name: str
    args: tuple[Expr, ...] = ()
    star: bool = False
    distinct: bool = False

    def to_sql(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(arg.to_sql() for arg in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"

    @property
    def is_aggregate(self) -> bool:
        return self.name in {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class Arithmetic(Expr):
    """A binary arithmetic expression (``+ - * / %``)."""

    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


def _paren_if_or(expr: Expr) -> str:
    """Parenthesize OR children inside an AND for correct precedence."""
    if isinstance(expr, Or):
        return f"({expr.to_sql()})"
    return expr.to_sql()


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem(Node):
    """One projection item in the select list (``expr [AS alias]``)."""

    expr: Expr
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()


@dataclass(frozen=True)
class Star(Expr):
    """A bare ``*`` (optionally ``t.*``) projection."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class TableRef(Node):
    """A table in the FROM clause, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """Name under which columns of this table instance are referenced."""
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass(frozen=True)
class Join(Node):
    """An explicit join clause: ``kind JOIN table ON condition``.

    ``kind`` is one of ``INNER``, ``LEFT``, ``RIGHT``, ``CROSS``,
    ``STRAIGHT``.  ``STRAIGHT`` corresponds to MySQL STRAIGHT_JOIN whose
    join order is predetermined (paper Sec. IV-C footnote).
    """

    kind: str
    table: TableRef
    condition: Optional[Expr]

    def to_sql(self) -> str:
        kw = "STRAIGHT_JOIN" if self.kind == "STRAIGHT" else f"{self.kind} JOIN"
        base = f"{kw} {self.table.to_sql()}"
        if self.condition is not None:
            base += f" ON {self.condition.to_sql()}"
        return base


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY item."""

    expr: Expr
    desc: bool = False

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} DESC" if self.desc else self.expr.to_sql()


class Statement(Node):
    """Base class for statements."""


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement over the supported subset."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    joins: tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        parts.append("FROM")
        parts.append(", ".join(t.to_sql() for t in self.tables))
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(e.to_sql() for e in self.group_by)
            )
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
            )
        if self.limit is not None:
            # -1 denotes a parameterized bound (``LIMIT ?``).
            parts.append("LIMIT ?" if self.limit == -1 else f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append("OFFSET ?" if self.offset == -1 else f"OFFSET {self.offset}")
        return " ".join(parts)

    def all_table_refs(self) -> tuple[TableRef, ...]:
        """All table instances referenced by the FROM clause and joins."""
        return self.tables + tuple(join.table for join in self.joins)


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO t (cols) VALUES (...), (...)``."""

    table: TableRef
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]

    def to_sql(self) -> str:
        cols = ", ".join(self.columns)
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table.to_sql()} ({cols}) VALUES {rows}"


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE t SET col = expr, ... [WHERE ...]``."""

    table: TableRef
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        base = f"UPDATE {self.table.to_sql()} SET {sets}"
        if self.where is not None:
            base += f" WHERE {self.where.to_sql()}"
        return base


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM t [WHERE ...]``."""

    table: TableRef
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        base = f"DELETE FROM {self.table.to_sql()}"
        if self.where is not None:
            base += f" WHERE {self.where.to_sql()}"
        return base


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def iter_exprs(expr: Optional[Expr]) -> Iterator[Expr]:
    """Depth-first pre-order iteration over an expression tree."""
    if expr is None:
        return
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(_children(node))))


def _children(expr: Expr) -> Sequence[Expr]:
    if isinstance(expr, Comparison):
        return (expr.left, expr.right)
    if isinstance(expr, InList):
        return (expr.expr, *expr.items)
    if isinstance(expr, Between):
        return (expr.expr, expr.low, expr.high)
    if isinstance(expr, IsNull):
        return (expr.expr,)
    if isinstance(expr, (And, Or)):
        return expr.items
    if isinstance(expr, Not):
        return (expr.item,)
    if isinstance(expr, FuncCall):
        return expr.args
    if isinstance(expr, Arithmetic):
        return (expr.left, expr.right)
    return ()


def map_expr(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild an expression bottom-up, applying *fn* to every node.

    *fn* receives each node after its children were rewritten and returns
    the (possibly replaced) node.
    """
    if isinstance(expr, Comparison):
        expr = Comparison(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, InList):
        expr = InList(
            map_expr(expr.expr, fn),
            tuple(map_expr(item, fn) for item in expr.items),
            expr.negated,
        )
    elif isinstance(expr, Between):
        expr = Between(
            map_expr(expr.expr, fn),
            map_expr(expr.low, fn),
            map_expr(expr.high, fn),
            expr.negated,
        )
    elif isinstance(expr, IsNull):
        expr = IsNull(map_expr(expr.expr, fn), expr.negated)
    elif isinstance(expr, And):
        expr = And(tuple(map_expr(item, fn) for item in expr.items))
    elif isinstance(expr, Or):
        expr = Or(tuple(map_expr(item, fn) for item in expr.items))
    elif isinstance(expr, Not):
        expr = Not(map_expr(expr.item, fn))
    elif isinstance(expr, FuncCall):
        expr = FuncCall(
            expr.name,
            tuple(map_expr(arg, fn) for arg in expr.args),
            expr.star,
            expr.distinct,
        )
    elif isinstance(expr, Arithmetic):
        expr = Arithmetic(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    return fn(expr)


def column_refs(expr: Optional[Expr]) -> list[ColumnRef]:
    """All :class:`ColumnRef` nodes in an expression, in traversal order."""
    return [node for node in iter_exprs(expr) if isinstance(node, ColumnRef)]
