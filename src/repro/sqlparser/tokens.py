"""Token definitions for the SQL lexer.

The reproduction implements its own SQL front end (the environment offers no
sqlglot); the token set covers the SQL subset emitted by every workload in
:mod:`repro.workloads` -- SELECT / INSERT / UPDATE / DELETE with joins,
AND/OR predicate trees, IN / BETWEEN / LIKE / IS NULL, GROUP BY, ORDER BY
and LIMIT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAM = "param"          # the `?` placeholder of a normalized query
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


#: Reserved words recognized by the lexer (case-insensitive in input,
#: canonicalized to upper case).  Anything not in this set lexes as IDENT.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING",
        "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "BETWEEN",
        "LIKE", "IS", "NULL", "ASC", "DESC", "DISTINCT", "JOIN", "INNER",
        "LEFT", "RIGHT", "OUTER", "CROSS", "STRAIGHT_JOIN", "ON",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "TRUE",
        "FALSE", "COUNT", "SUM", "AVG", "MIN", "MAX", "EXISTS", "CASE",
        "WHEN", "THEN", "ELSE", "END", "UNION", "ALL",
        "CREATE", "TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_SYMBOLS = ("<=>", "<>", "<=", ">=", "!=", "||")

#: Single-character operators and punctuation.
SINGLE_CHAR_SYMBOLS = frozenset("(),.;*+-/<>=%")


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    Attributes:
        kind: lexical category.
        text: canonical text (keywords upper-cased, strings without quotes).
        pos: character offset in the source string, for error messages.
    """

    kind: TokenKind
    text: str
    pos: int

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in words

    def is_symbol(self, *symbols: str) -> bool:
        """Return True if this token is one of the given symbols."""
        return self.kind is TokenKind.SYMBOL and self.text in symbols
