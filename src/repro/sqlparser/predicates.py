"""Predicate analysis primitives.

These utilities decompose WHERE clauses into the pieces AIM's candidate
generation consumes:

* conjunct / disjunct flattening,
* disjunctive normal form (DNF) factorization -- the paper's
  ``FactorizeIndexPredicates`` uses DNF, "the algorithm employed by MySQL"
  (Sec. IV-B1),
* atomic predicate classification, in particular the *index prefix
  predicate* (IPP) test of Sec. IV-B2,
* join predicate detection (``t1.a = t2.b`` across table instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import ast

#: Operators whose matching rows share a constant index prefix (Sec. IV-B2).
IPP_OPS = frozenset({"=", "<=>", "IN", "IS NULL"})

#: Range operators: sargable but without additive prefix benefit.
RANGE_OPS = frozenset({"<", "<=", ">", ">=", "BETWEEN", "LIKE"})

#: Operators an index cannot use to bound a scan.
RESIDUAL_OPS = frozenset({"!=", "NOT IN", "IS NOT NULL", "NOT BETWEEN", "NOT LIKE"})


@dataclass(frozen=True)
class AtomicPredicate:
    """A single-column predicate comparing a column with constants.

    Attributes:
        column: the referenced column (as written, i.e. possibly alias
            qualified).
        op: canonical operator (one of IPP_OPS | RANGE_OPS | RESIDUAL_OPS).
        expr: the original AST node, kept for selectivity estimation.
    """

    column: ast.ColumnRef
    op: str
    expr: ast.Expr

    @property
    def is_ipp(self) -> bool:
        """True if this predicate is an index prefix predicate."""
        return self.op in IPP_OPS

    @property
    def is_range(self) -> bool:
        """True if this predicate bounds an index range scan."""
        return self.op in RANGE_OPS

    @property
    def is_sargable(self) -> bool:
        """True if an index on :attr:`column` can serve this predicate."""
        return self.op in IPP_OPS or self.op in RANGE_OPS


def split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten nested ANDs into a list of conjuncts (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, ast.And):
        out: list[ast.Expr] = []
        for item in expr.items:
            out.extend(split_conjuncts(item))
        return out
    return [expr]


def split_disjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten nested ORs into a list of disjuncts (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, ast.Or):
        out: list[ast.Expr] = []
        for item in expr.items:
            out.extend(split_disjuncts(item))
        return out
    return [expr]


def to_dnf(expr: Optional[ast.Expr], max_terms: int = 64) -> list[list[ast.Expr]]:
    """Convert a predicate tree to disjunctive normal form.

    Returns a list of factors; each factor is a list of leaf expressions
    whose conjunction forms one disjunct.  ``NOT`` applied to a non-leaf is
    treated as an opaque leaf (negation is not distributed -- negated
    predicates never produce index candidates anyway).

    If distribution would exceed *max_terms* disjuncts, the expression is
    truncated to its first *max_terms* factors; real optimizers apply the
    same kind of cap to avoid DNF blowup.
    """
    if expr is None:
        return []
    factors = _dnf(expr)
    return factors[:max_terms]


def _dnf(expr: ast.Expr) -> list[list[ast.Expr]]:
    if isinstance(expr, ast.Or):
        out: list[list[ast.Expr]] = []
        for item in expr.items:
            out.extend(_dnf(item))
        return out
    if isinstance(expr, ast.And):
        product: list[list[ast.Expr]] = [[]]
        for item in expr.items:
            branches = _dnf(item)
            product = [existing + branch for existing in product for branch in branches]
        return product
    return [[expr]]


def classify_atomic(expr: ast.Expr) -> Optional[AtomicPredicate]:
    """Classify *expr* as a single-column atomic predicate, if it is one.

    A predicate qualifies when exactly one side references exactly one
    column and the other side is constant (literal, parameter or arithmetic
    over constants).  Returns None for join predicates, multi-column
    expressions and unsupported forms.
    """
    if isinstance(expr, ast.Comparison):
        left_col = _single_column(expr.left)
        right_col = _single_column(expr.right)
        if left_col is not None and right_col is None and _is_constant(expr.right):
            return AtomicPredicate(left_col, expr.op, expr)
        if right_col is not None and left_col is None and _is_constant(expr.left):
            return AtomicPredicate(right_col, _flip(expr.op), expr)
        return None
    if isinstance(expr, ast.InList):
        col = _single_column(expr.expr)
        if col is None or not all(_is_constant(i) for i in expr.items):
            return None
        op = "NOT IN" if expr.negated else "IN"
        return AtomicPredicate(col, op, expr)
    if isinstance(expr, ast.Between):
        col = _single_column(expr.expr)
        if col is None or not (_is_constant(expr.low) and _is_constant(expr.high)):
            return None
        op = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return AtomicPredicate(col, op, expr)
    if isinstance(expr, ast.IsNull):
        col = _single_column(expr.expr)
        if col is None:
            return None
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return AtomicPredicate(col, op, expr)
    if isinstance(expr, ast.Not):
        inner = classify_atomic(expr.item)
        if inner is not None and inner.op == "LIKE":
            return AtomicPredicate(inner.column, "NOT LIKE", expr)
        return None
    return None


def join_predicate(expr: ast.Expr) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef]]:
    """Detect an equi-join predicate ``a.x = b.y`` between table instances.

    Returns the two column references when *expr* is an equality between
    two bare columns with different table bindings, else None.
    """
    if not isinstance(expr, ast.Comparison) or expr.op not in ("=", "<=>"):
        return None
    if not isinstance(expr.left, ast.ColumnRef) or not isinstance(expr.right, ast.ColumnRef):
        return None
    left, right = expr.left, expr.right
    if left.table is not None and left.table == right.table:
        return None
    return left, right


def _single_column(expr: ast.Expr) -> Optional[ast.ColumnRef]:
    """Return the column if *expr* is exactly one bare column reference."""
    if isinstance(expr, ast.ColumnRef):
        return expr
    return None


def _is_constant(expr: ast.Expr) -> bool:
    """True if *expr* evaluates to a constant (no column references)."""
    return not any(isinstance(node, ast.ColumnRef) for node in ast.iter_exprs(expr))


def _flip(op: str) -> str:
    """Mirror a comparison operator for swapped operands."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def like_has_constant_prefix(pattern: object) -> bool:
    """True if a LIKE pattern starts with a non-wildcard prefix.

    Only prefix patterns can bound an index range scan; ``'%x'`` cannot.
    """
    if not isinstance(pattern, str) or not pattern:
        return False
    return pattern[0] not in ("%", "_")
