"""SQL front end: lexer, parser, AST, normalization and predicate analysis."""

from . import ast
from .lexer import LexError, tokenize
from .normalizer import fingerprint, normalize_sql, normalize_statement
from .parser import ParseError, parse, parse_select
from .predicates import (
    AtomicPredicate,
    IPP_OPS,
    RANGE_OPS,
    classify_atomic,
    join_predicate,
    split_conjuncts,
    split_disjuncts,
    to_dnf,
)

__all__ = [
    "ast",
    "tokenize",
    "LexError",
    "parse",
    "parse_select",
    "ParseError",
    "normalize_sql",
    "normalize_statement",
    "fingerprint",
    "AtomicPredicate",
    "IPP_OPS",
    "RANGE_OPS",
    "classify_atomic",
    "join_predicate",
    "split_conjuncts",
    "split_disjuncts",
    "to_dnf",
]
