"""DDL parsing: CREATE TABLE / CREATE INDEX.

Lets schemas be loaded from ordinary ``schema.sql`` files (the CLI's
input format).  The supported grammar covers the common core::

    CREATE TABLE name (
        col TYPE [(len[, scale])] [NOT NULL | NULL],
        ...,
        PRIMARY KEY (col [, col ...])
    );
    CREATE [UNIQUE] INDEX [name] ON table (col [, col ...]);

Types map onto :mod:`repro.catalog.types`; unrecognized type names
default to a 16-byte string (width matters more than exactness for the
advisor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog import (
    BIGINT,
    BOOLEAN,
    Column,
    ColumnType,
    DATE,
    DATETIME,
    DECIMAL,
    FLOAT,
    INT,
    Index,
    Schema,
    Table,
    char,
    varchar,
)
from .lexer import tokenize
from .tokens import Token, TokenKind

_TYPE_MAP: dict[str, ColumnType] = {
    "INT": INT, "INTEGER": INT, "SMALLINT": INT, "TINYINT": INT,
    "MEDIUMINT": INT, "SERIAL": BIGINT,
    "BIGINT": BIGINT,
    "FLOAT": FLOAT, "DOUBLE": FLOAT, "REAL": FLOAT,
    "DECIMAL": DECIMAL, "NUMERIC": DECIMAL,
    "DATE": DATE,
    "DATETIME": DATETIME, "TIMESTAMP": DATETIME, "TIME": DATETIME,
    "BOOLEAN": BOOLEAN, "BOOL": BOOLEAN,
    "TEXT": varchar(120), "BLOB": varchar(200), "JSON": varchar(200),
}


class DdlError(ValueError):
    """Raised on unsupported or malformed DDL."""


@dataclass
class ParsedDdl:
    """Result of parsing a DDL script."""

    tables: list[Table] = field(default_factory=list)
    indexes: list[Index] = field(default_factory=list)

    def to_schema(self) -> Schema:
        schema = Schema.from_tables(self.tables)
        for index in self.indexes:
            schema.add_index(index)
        return schema


def parse_ddl(sql: str) -> ParsedDdl:
    """Parse a script of semicolon-separated DDL statements."""
    parser = _DdlParser(tokenize(sql))
    return parser.parse_script()


class _DdlParser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._cur.is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise DdlError(f"expected {word} at offset {self._cur.pos}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._cur.is_symbol(symbol):
            raise DdlError(
                f"expected {symbol!r} at offset {self._cur.pos}, got {self._cur.text!r}"
            )
        return self._advance()

    def _accept_symbol(self, symbol: str) -> Optional[Token]:
        if self._cur.is_symbol(symbol):
            return self._advance()
        return None

    def _expect_ident(self) -> str:
        if self._cur.kind is TokenKind.IDENT:
            return self._advance().text
        raise DdlError(f"expected identifier at offset {self._cur.pos}")

    def parse_script(self) -> ParsedDdl:
        result = ParsedDdl()
        while self._cur.kind is not TokenKind.EOF:
            if self._accept_symbol(";"):
                continue
            self._expect_keyword("CREATE")
            if self._cur.is_keyword("TABLE"):
                result.tables.append(self._parse_create_table())
            elif self._cur.is_keyword("UNIQUE", "INDEX"):
                result.indexes.append(self._parse_create_index())
            else:
                raise DdlError(
                    f"unsupported CREATE {self._cur.text!r} at offset {self._cur.pos}"
                )
        return result

    def _parse_create_table(self) -> Table:
        self._expect_keyword("TABLE")
        name = self._expect_ident()
        self._expect_symbol("(")
        columns: list[Column] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = self._parse_column_list()
            else:
                column, inline_pk = self._parse_column_def()
                columns.append(column)
                if inline_pk:
                    primary_key = (column.name,)
            if self._accept_symbol(","):
                continue
            self._expect_symbol(")")
            break
        if not primary_key:
            # Convention: a leading 'id' column acts as the clustered PK.
            if columns and columns[0].name.lower() in ("id", f"{name}_id"):
                primary_key = (columns[0].name,)
            else:
                raise DdlError(f"table {name} needs a PRIMARY KEY clause")
        return Table(name, columns, primary_key)

    def _parse_column_def(self) -> tuple[Column, bool]:
        name = self._expect_ident()
        ctype = self._parse_type()
        nullable = True
        inline_pk = False
        # Trailing column attributes: [NOT NULL | NULL], DEFAULT ... etc.
        while not self._cur.is_symbol(",", ")"):
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
            elif self._accept_keyword("NULL"):
                nullable = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                inline_pk = True
                nullable = False
            elif self._accept_keyword("UNIQUE", "KEY"):
                pass
            elif self._cur.kind in (TokenKind.IDENT, TokenKind.KEYWORD,
                                    TokenKind.NUMBER, TokenKind.STRING):
                self._advance()   # DEFAULT <value>, AUTO_INCREMENT, ...
            else:
                raise DdlError(
                    f"unexpected token {self._cur.text!r} in column definition"
                )
        return Column(name, ctype, nullable=nullable), inline_pk

    def _parse_type(self) -> ColumnType:
        type_name = self._expect_ident().upper()
        length = None
        if self._accept_symbol("("):
            if self._cur.kind is not TokenKind.NUMBER:
                raise DdlError("expected a length in type parentheses")
            length = int(float(self._advance().text))
            if self._accept_symbol(","):
                self._advance()    # scale, ignored
            self._expect_symbol(")")
        if type_name in ("VARCHAR", "VARBINARY", "NVARCHAR"):
            return varchar(max(1, (length or 32) // 2))   # avg ~ half max
        if type_name in ("CHAR", "BINARY", "NCHAR"):
            return char(length or 1)
        if type_name in _TYPE_MAP:
            return _TYPE_MAP[type_name]
        return varchar(16)

    def _parse_create_index(self) -> Index:
        unique = self._accept_keyword("UNIQUE") is not None
        self._expect_keyword("INDEX")
        if self._cur.kind is TokenKind.IDENT:
            self._advance()   # index name: ours are derived from columns
        self._expect_keyword("ON")
        table = self._expect_ident()
        columns = self._parse_column_list()
        return Index(table, columns, unique=unique)

    def _parse_column_list(self) -> tuple[str, ...]:
        self._expect_symbol("(")
        columns = [self._expect_ident()]
        while self._accept_symbol(","):
            columns.append(self._expect_ident())
        self._expect_symbol(")")
        return tuple(columns)
