"""Query normalization (parameterization).

A normalized query replaces literal parameters with ``?`` placeholders so
that queries sharing a structure group together (paper Sec. III-A1).  The
workload monitor keys all execution statistics by the normalized SQL text.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from . import ast
from .parser import parse


def normalize_expr(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
    """Replace every literal in *expr* with a :class:`~repro.sqlparser.ast.Param`.

    IN-lists collapse to a single placeholder item so that
    ``x IN (1, 2)`` and ``x IN (1, 2, 3)`` normalize identically, mirroring
    production statement digesting.
    """
    if expr is None:
        return None

    def replace(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Literal):
            return ast.Param()
        if isinstance(node, ast.InList):
            return ast.InList(node.expr, (ast.Param(),), node.negated)
        return node

    return ast.map_expr(expr, replace)


def normalize_statement(stmt: ast.Statement) -> ast.Statement:
    """Return the normalized (parameterized) form of a statement."""
    if isinstance(stmt, ast.Select):
        return ast.Select(
            items=stmt.items,
            tables=stmt.tables,
            joins=tuple(
                ast.Join(j.kind, j.table, normalize_expr(j.condition))
                for j in stmt.joins
            ),
            where=normalize_expr(stmt.where),
            group_by=stmt.group_by,
            having=normalize_expr(stmt.having),
            order_by=stmt.order_by,
            limit=-1 if stmt.limit is not None else None,
            offset=-1 if stmt.offset is not None else None,
            distinct=stmt.distinct,
        )
    if isinstance(stmt, ast.Insert):
        # All VALUES rows collapse to one parameterized row.
        width = len(stmt.columns)
        row = tuple(ast.Param() for _ in range(width))
        return ast.Insert(stmt.table, stmt.columns, (row,))
    if isinstance(stmt, ast.Update):
        assignments = tuple(
            (col, ast.Param() if isinstance(e, ast.Literal) else e)
            for col, e in stmt.assignments
        )
        return ast.Update(stmt.table, assignments, normalize_expr(stmt.where))
    if isinstance(stmt, ast.Delete):
        return ast.Delete(stmt.table, normalize_expr(stmt.where))
    raise TypeError(f"cannot normalize {type(stmt).__name__}")


def normalize_sql(sql: str) -> str:
    """Parse *sql* and render its normalized form back to canonical text."""
    return normalize_statement(parse(sql)).to_sql()


def fingerprint(sql: str) -> str:
    """Stable 16-hex-digit digest of the normalized form of *sql*."""
    normalized = normalize_sql(sql)
    return hashlib.sha256(normalized.encode()).hexdigest()[:16]
