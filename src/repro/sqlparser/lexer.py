"""Hand-written lexer for the SQL subset used across the reproduction."""

from __future__ import annotations

from .tokens import (
    KEYWORDS,
    MULTI_CHAR_SYMBOLS,
    SINGLE_CHAR_SYMBOLS,
    Token,
    TokenKind,
)


class LexError(ValueError):
    """Raised when the input contains a character the lexer cannot handle."""


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql* into a list of tokens terminated by an EOF token.

    String literals accept single or double quotes with ``''`` escaping,
    identifiers may be backquoted (MySQL style), and ``--`` / ``/* */``
    comments are skipped.

    Raises:
        LexError: on an unterminated string/comment or unexpected character.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated comment at offset {i}")
            i = end + 2
            continue
        if ch == "?":
            tokens.append(Token(TokenKind.PARAM, "?", i))
            i += 1
            continue
        if ch in "'\"":
            text, i = _lex_string(sql, i)
            tokens.append(Token(TokenKind.STRING, text, i))
            continue
        if ch == "`":
            end = sql.find("`", i + 1)
            if end == -1:
                raise LexError(f"unterminated quoted identifier at offset {i}")
            tokens.append(Token(TokenKind.IDENT, sql[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            text, i = _lex_number(sql, i)
            tokens.append(Token(TokenKind.NUMBER, text, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENT, word, start))
            continue
        matched = False
        for sym in MULTI_CHAR_SYMBOLS:
            if sql.startswith(sym, i):
                tokens.append(Token(TokenKind.SYMBOL, sym, i))
                i += len(sym)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_CHAR_SYMBOLS:
            tokens.append(Token(TokenKind.SYMBOL, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens


def _lex_string(sql: str, i: int) -> tuple[str, int]:
    """Lex a quoted string starting at *i*; return (content, next offset)."""
    quote = sql[i]
    i += 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == quote:
            if i + 1 < n and sql[i + 1] == quote:   # '' escape
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexError(f"unterminated string literal starting at offset {i}")


def _lex_number(sql: str, i: int) -> tuple[str, int]:
    """Lex an (optionally fractional / exponent) numeric literal."""
    start = i
    n = len(sql)
    while i < n and sql[i].isdigit():
        i += 1
    if i < n and sql[i] == ".":
        i += 1
        while i < n and sql[i].isdigit():
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            i = j
            while i < n and sql[i].isdigit():
                i += 1
    return sql[start:i], i
