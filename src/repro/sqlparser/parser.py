"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := select | insert | update | delete
    select      := SELECT [DISTINCT] items FROM table_refs join* [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                   [LIMIT n [OFFSET n]]
    join        := [INNER|LEFT [OUTER]|RIGHT [OUTER]|CROSS|STRAIGHT_JOIN]
                   JOIN table_ref [ON expr]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := operand [comparison | IN | BETWEEN | LIKE | IS NULL]
    operand     := term ((+|-) term)*
    term        := factor ((*|/|%) factor)*
    factor      := literal | param | func_call | column | '(' expr ')'

Expression support is deliberately scoped to what index advisors inspect;
subqueries are not supported (the bundled workloads flatten them -- see
DESIGN.md substitution table).
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar."""


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement and return its AST."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_select(sql: str) -> ast.Select:
    """Parse *sql* and assert the result is a SELECT statement."""
    stmt = parse(sql)
    if not isinstance(stmt, ast.Select):
        raise ParseError(f"expected SELECT statement, got {type(stmt).__name__}")
    return stmt


class _Parser:
    """Stateful cursor over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- cursor primitives -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._cur.is_keyword(*words):
            return self._advance()
        return None

    def _accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self._cur.is_symbol(*symbols):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise ParseError(f"expected {word} at offset {self._cur.pos}, got {self._cur.text!r}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._cur.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r} at offset {self._cur.pos}, got {self._cur.text!r}"
            )
        return self._advance()

    def _expect_ident(self) -> str:
        if self._cur.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier at offset {self._cur.pos}, got {self._cur.text!r}"
            )
        return self._advance().text

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._cur.is_keyword("SELECT"):
            stmt: ast.Statement = self._parse_select()
        elif self._cur.is_keyword("INSERT"):
            stmt = self._parse_insert()
        elif self._cur.is_keyword("UPDATE"):
            stmt = self._parse_update()
        elif self._cur.is_keyword("DELETE"):
            stmt = self._parse_delete()
        else:
            raise ParseError(f"unsupported statement starting with {self._cur.text!r}")
        self._accept_symbol(";")
        if self._cur.kind is not TokenKind.EOF:
            raise ParseError(f"trailing input at offset {self._cur.pos}: {self._cur.text!r}")
        return stmt

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        items = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        joins: list[ast.Join] = []
        while True:
            if self._accept_symbol(","):
                tables.append(self._parse_table_ref())
                continue
            join = self._try_parse_join()
            if join is None:
                break
            joins.append(join)
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self._parse_expr()]
            while self._accept_symbol(","):
                exprs.append(self._parse_expr())
            group_by = tuple(exprs)
        having = self._parse_expr() if self._accept_keyword("HAVING") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_items = [self._parse_order_item()]
            while self._accept_symbol(","):
                order_items.append(self._parse_order_item())
            order_by = tuple(order_items)
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_int()
            if self._accept_keyword("OFFSET"):
                offset = self._parse_int()
            elif self._accept_symbol(","):   # MySQL LIMIT offset, count
                offset = limit
                limit = self._parse_int()
        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self._cur.is_symbol("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # t.* projection
        if (
            self._cur.kind is TokenKind.IDENT
            and self._tokens[self._pos + 1].is_symbol(".")
            and self._tokens[self._pos + 2].is_symbol("*")
        ):
            table = self._advance().text
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(table))
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._cur.kind is TokenKind.IDENT:
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._cur.kind is TokenKind.IDENT:
            alias = self._advance().text
        return ast.TableRef(name, alias)

    def _try_parse_join(self) -> Optional[ast.Join]:
        kind = None
        if self._accept_keyword("STRAIGHT_JOIN"):
            kind = "STRAIGHT"
        elif self._cur.is_keyword("JOIN"):
            self._advance()
            kind = "INNER"
        elif self._cur.is_keyword("INNER", "LEFT", "RIGHT", "CROSS"):
            kw = self._advance().text
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            kind = "INNER" if kw == "INNER" else kw
        if kind is None:
            return None
        table = self._parse_table_ref()
        condition = self._parse_expr() if self._accept_keyword("ON") else None
        return ast.Join(kind, table, condition)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        desc = False
        if self._accept_keyword("DESC"):
            desc = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, desc)

    def _parse_int(self) -> int:
        if self._cur.kind is TokenKind.NUMBER:
            return int(float(self._advance().text))
        if self._cur.kind is TokenKind.PARAM:
            # Normalized queries carry `LIMIT ?`; treat as a nominal bound.
            self._advance()
            return -1
        raise ParseError(f"expected integer at offset {self._cur.pos}")

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_table_ref()
        self._expect_symbol("(")
        columns = [self._expect_ident()]
        while self._accept_symbol(","):
            columns.append(self._expect_ident())
        self._expect_symbol(")")
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_symbol(","):
            rows.append(self._parse_value_row())
        return ast.Insert(table, tuple(columns), tuple(rows))

    def _parse_value_row(self) -> tuple[ast.Expr, ...]:
        self._expect_symbol("(")
        values = [self._parse_expr()]
        while self._accept_symbol(","):
            values.append(self._parse_expr())
        self._expect_symbol(")")
        return tuple(values)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._parse_table_ref()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_symbol(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_ident()
        self._expect_symbol("=")
        return column, self._parse_expr()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_table_ref()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        items = [self._parse_and()]
        while self._accept_keyword("OR"):
            items.append(self._parse_and())
        if len(items) == 1:
            return items[0]
        return ast.Or(tuple(items))

    def _parse_and(self) -> ast.Expr:
        items = [self._parse_not()]
        while self._accept_keyword("AND"):
            items.append(self._parse_not())
        if len(items) == 1:
            return items[0]
        return ast.And(tuple(items))

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_operand()
        if self._cur.is_symbol("=", "<=>", "!=", "<>", "<", "<=", ">", ">="):
            op = self._advance().text
            if op == "<>":
                op = "!="
            right = self._parse_operand()
            return ast.Comparison(op, left, right)
        negated = False
        if self._cur.is_keyword("NOT"):
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            items = [self._parse_operand()]
            while self._accept_symbol(","):
                items.append(self._parse_operand())
            self._expect_symbol(")")
            return ast.InList(left, tuple(items), negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_operand()
            self._expect_keyword("AND")
            high = self._parse_operand()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_operand()
            cmp = ast.Comparison("LIKE", left, pattern)
            return ast.Not(cmp) if negated else cmp
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        return left

    def _parse_operand(self) -> ast.Expr:
        return self._parse_additive()

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._cur.is_symbol("+", "-"):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = ast.Arithmetic(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_factor()
        while self._cur.is_symbol("*", "/", "%"):
            op = self._advance().text
            right = self._parse_factor()
            left = ast.Arithmetic(op, left, right)
        return left

    def _parse_factor(self) -> ast.Expr:
        token = self._cur
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.text
            value: float | int
            if any(c in text for c in ".eE"):
                value = float(text)
            else:
                value = int(text)
            return ast.Literal(value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.kind is TokenKind.PARAM:
            self._advance()
            return ast.Param()
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_symbol("-"):
            self._advance()
            inner = self._parse_factor()
            if isinstance(inner, ast.Literal) and isinstance(inner.value, (int, float)):
                return ast.Literal(-inner.value)
            return ast.Arithmetic("-", ast.Literal(0), inner)
        if token.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return self._parse_func_call(self._advance().text)
        if token.kind is TokenKind.IDENT:
            nxt = self._tokens[self._pos + 1]
            if nxt.is_symbol("("):
                return self._parse_func_call(self._advance().text.upper())
            return self._parse_column_ref()
        if token.is_symbol("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_symbol(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} at offset {token.pos}")

    def _parse_func_call(self, name: str) -> ast.FuncCall:
        self._expect_symbol("(")
        if self._accept_symbol("*"):
            self._expect_symbol(")")
            return ast.FuncCall(name, star=True)
        distinct = self._accept_keyword("DISTINCT") is not None
        args = [self._parse_expr()]
        while self._accept_symbol(","):
            args.append(self._parse_expr())
        self._expect_symbol(")")
        return ast.FuncCall(name, tuple(args), distinct=distinct)

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = self._expect_ident()
        if self._accept_symbol("."):
            second = self._expect_ident()
            return ast.ColumnRef(first, second)
        return ast.ColumnRef(None, first)
