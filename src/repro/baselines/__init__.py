"""Index selection algorithms: AIM plus the eight framework baselines."""

from .aim_adapter import AimAlgorithm
from .autoadmin import AutoAdminAlgorithm
from .base import AlgorithmResult, SelectionAlgorithm
from .cophy import CophyAlgorithm
from .cost_eval import (
    candidate_pool,
    indexable_columns,
    per_query_candidates,
    single_column_candidates,
)
from .db2advis import Db2AdvisAlgorithm
from .dexter import DexterAlgorithm
from .drop_heuristic import DropAlgorithm
from .dta import DtaAlgorithm
from .extend import ExtendAlgorithm
from .noindex import NoIndexAlgorithm
from .relaxation import RelaxationAlgorithm

ALL_ALGORITHMS = {
    "aim": AimAlgorithm,
    "extend": ExtendAlgorithm,
    "dta": DtaAlgorithm,
    "autoadmin": AutoAdminAlgorithm,
    "db2advis": Db2AdvisAlgorithm,
    "drop": DropAlgorithm,
    "relaxation": RelaxationAlgorithm,
    "dexter": DexterAlgorithm,
    "cophy": CophyAlgorithm,
    "noindex": NoIndexAlgorithm,
}

__all__ = [
    "SelectionAlgorithm",
    "AlgorithmResult",
    "AimAlgorithm",
    "ExtendAlgorithm",
    "DtaAlgorithm",
    "AutoAdminAlgorithm",
    "Db2AdvisAlgorithm",
    "DropAlgorithm",
    "RelaxationAlgorithm",
    "DexterAlgorithm",
    "CophyAlgorithm",
    "NoIndexAlgorithm",
    "ALL_ALGORITHMS",
    "indexable_columns",
    "single_column_candidates",
    "per_query_candidates",
    "candidate_pool",
]
