"""DTA-style anytime algorithm (Chaudhuri & Narasayya, Microsoft 2022).

The Database Tuning Advisor's anytime architecture: per-query candidate
selection (best configuration for each query in isolation), candidate
merging, then a greedy configuration-enumeration over the union with a
wall-clock *time limit*.  DTA is the industrial state of the art the
paper benchmarks against; its evaluation strategy "became prohibitively
expensive when considering indexes of width > 3 for complex workloads"
(Sec. VI-B) -- visible here as the candidate pool and optimizer-call
count exploding with ``max_width``.
"""

from __future__ import annotations

import time
from typing import Optional

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import per_query_candidates


class DtaAlgorithm(SelectionAlgorithm):
    """Anytime per-query seeding + greedy enumeration."""

    name = "dta"

    def __init__(
        self,
        db,
        max_width: int = 3,
        time_limit_seconds: float = 60.0,
        per_query_keep: int = 3,
    ):
        super().__init__(db)
        self.max_width = max_width
        self.time_limit_seconds = time_limit_seconds
        self.per_query_keep = per_query_keep

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        deadline = time.perf_counter() + self.time_limit_seconds
        pairs = workload.pairs()

        # Phase 1: per-query candidate selection -- evaluate every
        # syntactic candidate against its query, keep the best few.
        per_query = per_query_candidates(
            evaluator, workload, self.max_width, with_permutations=True
        )
        pool: dict[tuple, Index] = {}
        for query in workload:
            if query.is_dml:
                continue
            candidates = per_query.get(query.normalized_sql, [])
            base = evaluator.cost(query.sql, [])
            scored: list[tuple[float, Index]] = []
            for candidate in candidates:
                if time.perf_counter() > deadline:
                    break
                gain = base - evaluator.cost(query.sql, [candidate])
                if gain > 0:
                    scored.append((gain, candidate))
            scored.sort(key=lambda t: -t[0])
            for _gain, candidate in scored[: self.per_query_keep]:
                pool[candidate.key] = candidate
            # Merged candidate: the query's best pair combined per table.
            best_per_table: dict[str, Index] = {}
            for _gain, candidate in scored:
                best_per_table.setdefault(candidate.table, candidate)
            for candidate in best_per_table.values():
                pool[candidate.key] = candidate

        # Phase 2: anytime greedy enumeration over the pool.
        chosen: list[Index] = []
        used_bytes = 0
        current_cost = evaluator.workload_cost(pairs, chosen)
        candidates = list(pool.values())
        while time.perf_counter() <= deadline:
            best: Optional[tuple[float, Index, float]] = None
            for candidate in candidates:
                if any(c.key == candidate.key for c in chosen):
                    continue
                size = self.db.index_size_bytes(candidate)
                if used_bytes + size > budget_bytes:
                    continue
                cost = evaluator.workload_cost(pairs, chosen + [candidate])
                gain = current_cost - cost
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, candidate, cost)
                if time.perf_counter() > deadline:
                    break
            if best is None:
                break
            _gain, candidate, cost = best
            chosen.append(candidate)
            used_bytes += self.db.index_size_bytes(candidate)
            current_cost = cost
        return chosen
