"""Drop heuristic (Whang, 1987).

Start from the full candidate pool and repeatedly drop the index whose
removal increases workload cost the least, until the configuration fits
the budget and no drop improves cost.  Simple and thorough -- and
O(n^2) optimizer calls, which is why it also serves as this
reproduction's expensive "DBA oracle" for the Table II experiments.
"""

from __future__ import annotations

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import candidate_pool, config_size


class DropAlgorithm(SelectionAlgorithm):
    """Iterative drop from the full syntactic candidate pool."""

    name = "drop"

    def __init__(self, db, max_width: int = 3):
        super().__init__(db)
        self.max_width = max_width

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        pairs = workload.pairs()
        current = candidate_pool(
            evaluator, workload, self.max_width, with_permutations=False
        )
        current_cost = evaluator.workload_cost(pairs, current)
        while current:
            over_budget = config_size(self.db, current) > budget_bytes
            best_drop = None
            best_cost = None
            for candidate in current:
                trial = [c for c in current if c.name != candidate.name]
                cost = evaluator.workload_cost(pairs, trial)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_drop = candidate
            assert best_drop is not None and best_cost is not None
            # Keep dropping while forced by budget or while cost does not
            # get worse (removing a useless index is free).
            if over_budget or best_cost <= current_cost:
                current = [c for c in current if c.name != best_drop.name]
                current_cost = best_cost
            else:
                break
        return current
