"""AutoAdmin (Chaudhuri & Narasayya, VLDB 1997).

The original cost-driven index selection tool: per-query candidate
selection followed by Greedy(m, k) enumeration over the union.  We use
m = 1 seeds (the classic configuration) and greedy growth to k = budget.
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import per_query_candidates


class AutoAdminAlgorithm(SelectionAlgorithm):
    """Per-query best candidates + Greedy(m, k)."""

    name = "autoadmin"

    def __init__(self, db, max_width: int = 2, per_query_keep: int = 2):
        super().__init__(db)
        self.max_width = max_width
        self.per_query_keep = per_query_keep

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        pairs = workload.pairs()
        per_query = per_query_candidates(
            evaluator, workload, self.max_width, with_permutations=False
        )
        pool: dict[tuple, Index] = {}
        for query in workload:
            if query.is_dml:
                continue
            base = evaluator.cost(query.sql, [])
            scored = []
            for candidate in per_query.get(query.normalized_sql, []):
                gain = base - evaluator.cost(query.sql, [candidate])
                if gain > 0:
                    scored.append((gain, candidate))
            scored.sort(key=lambda t: -t[0])
            for _gain, candidate in scored[: self.per_query_keep]:
                pool[candidate.key] = candidate

        chosen: list[Index] = []
        used_bytes = 0
        current_cost = evaluator.workload_cost(pairs, chosen)
        while True:
            best: Optional[tuple[float, Index, float]] = None
            for candidate in pool.values():
                if any(c.key == candidate.key for c in chosen):
                    continue
                size = self.db.index_size_bytes(candidate)
                if used_bytes + size > budget_bytes:
                    continue
                cost = evaluator.workload_cost(pairs, chosen + [candidate])
                gain = current_cost - cost
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, candidate, cost)
            if best is None:
                return chosen
            _gain, candidate, cost = best
            chosen.append(candidate)
            used_bytes += self.db.index_size_bytes(candidate)
            current_cost = cost
