"""CoPhy-style linear-programming advisor (Dash, Polyzotis, Ailamaki).

The declarative formulation: binary variables ``x_i`` (build index i) and
assignment variables ``z_{q,i}`` (query q is served by index i), with::

    maximize   sum w_q * benefit_{q,i} * z_{q,i}
    subject to z_{q,i} <= x_i,   sum_i z_{q,i} <= 1  (per query),
               sum_i size_i * x_i <= budget,   0 <= x, z <= 1.

We solve the LP relaxation with scipy's HiGHS solver and round ``x`` by
fractional value under the budget; per-query benefits are measured per
single index (CoPhy's pre-computed atomic configurations).  Without
scipy the algorithm degrades to greedy rounding of the same coefficients.
"""

from __future__ import annotations

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import per_query_candidates

try:
    from scipy.optimize import linprog

    HAVE_SCIPY = True
except ImportError:   # pragma: no cover - scipy is installed in CI
    HAVE_SCIPY = False


class CophyAlgorithm(SelectionAlgorithm):
    """LP relaxation + rounding over per-(query, index) benefits."""

    name = "cophy"

    def __init__(self, db, max_width: int = 2):
        super().__init__(db)
        self.max_width = max_width

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        queries = [q for q in workload if not q.is_dml]
        per_query = per_query_candidates(
            evaluator, workload, self.max_width, with_permutations=False
        )
        # Keyed by the structural index key (names can collide when
        # table/column names contain underscores).
        pool: dict[tuple, Index] = {}
        benefits: dict[tuple[int, tuple], float] = {}
        for qi, query in enumerate(queries):
            base = evaluator.cost(query.sql, [])
            for candidate in per_query.get(query.normalized_sql, []):
                gain = base - evaluator.cost(query.sql, [candidate])
                if gain > 0:
                    pool[candidate.key] = candidate
                    benefits[(qi, candidate.key)] = gain * query.weight
        if not pool:
            return []
        index_names = sorted(pool)
        sizes = {name: self.db.index_size_bytes(pool[name]) for name in index_names}
        if HAVE_SCIPY:
            fractional = self._solve_lp(
                len(queries), index_names, sizes, benefits, budget_bytes
            )
        else:
            fractional = {name: 1.0 for name in index_names}

        total_gain = {
            name: sum(g for (_qi, n), g in benefits.items() if n == name)
            for name in index_names
        }
        ordered = sorted(
            index_names,
            key=lambda name: (fractional.get(name, 0.0), total_gain[name]),
            reverse=True,
        )
        chosen: list[Index] = []
        used = 0
        for name in ordered:
            if fractional.get(name, 0.0) <= 1e-6:
                continue
            if used + sizes[name] <= budget_bytes:
                chosen.append(pool[name])
                used += sizes[name]
        return chosen

    @staticmethod
    def _solve_lp(n_queries, index_names, sizes, benefits, budget_bytes):
        n_idx = len(index_names)
        idx_pos = {name: i for i, name in enumerate(index_names)}
        z_keys = sorted(benefits)
        z_pos = {key: n_idx + i for i, key in enumerate(z_keys)}
        n_vars = n_idx + len(z_keys)

        c = [0.0] * n_vars
        for key, gain in benefits.items():
            c[z_pos[key]] = -gain   # linprog minimizes

        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        for key in z_keys:   # z_{q,i} <= x_i
            row = [0.0] * n_vars
            row[z_pos[key]] = 1.0
            row[idx_pos[key[1]]] = -1.0
            a_ub.append(row)
            b_ub.append(0.0)
        for qi in range(n_queries):   # one index serves each query
            row = [0.0] * n_vars
            any_z = False
            for key in z_keys:
                if key[0] == qi:
                    row[z_pos[key]] = 1.0
                    any_z = True
            if any_z:
                a_ub.append(row)
                b_ub.append(1.0)
        budget_row = [0.0] * n_vars   # storage budget
        for name in index_names:
            budget_row[idx_pos[name]] = float(sizes[name])
        a_ub.append(budget_row)
        b_ub.append(float(budget_bytes))

        result = linprog(
            c, A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, 1.0)] * n_vars,
            method="highs",
        )
        if not result.success:
            return {name: 1.0 for name in index_names}
        return {name: result.x[idx_pos[name]] for name in index_names}
