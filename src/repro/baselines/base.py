"""Common interface for index selection algorithms.

Every algorithm -- AIM and the baselines from the Kossmann et al.
evaluation framework -- implements ``select(workload, budget)`` on top of
the same what-if :class:`~repro.optimizer.CostEvaluator`, so runtime and
optimizer-call comparisons (Fig 4b/4d) are apples to apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from ..catalog import Index
from ..engine import Database
from ..obs import get_registry, trace
from ..optimizer import CostEvaluator
from ..workload import Workload


@dataclass
class AlgorithmResult:
    """Outcome of one algorithm run."""

    algorithm: str
    indexes: list[Index] = field(default_factory=list)
    runtime_seconds: float = 0.0
    optimizer_calls: int = 0
    cost_before: float = 0.0
    cost_after: float = 0.0
    total_size_bytes: int = 0

    @property
    def relative_cost(self) -> float:
        """Workload cost relative to the unindexed baseline (Fig 4a/4c)."""
        if self.cost_before <= 0:
            return 1.0
        return self.cost_after / self.cost_before


class SelectionAlgorithm(ABC):
    """Base class: times the run and reports costs uniformly."""

    name = "base"

    #: Process fan-out for workload costing (1 = serial).  Settable as an
    #: attribute after construction so subclass ``__init__`` signatures
    #: stay untouched (``repro advise --jobs N`` sets it).
    jobs = 1

    def __init__(self, db: Database, jobs: int = 1):
        self.db = db
        if jobs != 1:
            self.jobs = jobs

    def select(
        self,
        workload: Workload,
        budget_bytes: int,
        evaluator: Optional[CostEvaluator] = None,
    ) -> AlgorithmResult:
        """Run the algorithm; returns the selected configuration and
        bookkeeping (wall-clock runtime, optimizer calls, costs).

        Pass *evaluator* to reuse one across runs (its plan caches then
        survive between invocations -- the repeated-tuning case); it is
        left open for the caller.  ``optimizer_calls`` always counts this
        run only.
        """
        owned = evaluator is None
        if evaluator is None:
            evaluator = CostEvaluator(
                self.db, include_schema_indexes=False, jobs=self.jobs
            )
        calls_start = evaluator.optimizer_calls
        with trace("baseline.select", algorithm=self.name) as span:
            indexes = self._select(evaluator, workload, budget_bytes)
            span.set(
                optimizer_calls=evaluator.optimizer_calls - calls_start,
                indexes=len(indexes),
            )
        runtime = span.duration
        selection_calls = evaluator.optimizer_calls
        with trace("baseline.cost_eval", algorithm=self.name) as cost_span:
            cost_before = evaluator.workload_cost(workload.pairs(), [])
            cost_after = evaluator.workload_cost(workload.pairs(), indexes)
            cost_span.set(
                optimizer_calls=evaluator.optimizer_calls - selection_calls
            )
        run_calls = evaluator.optimizer_calls - calls_start
        registry = get_registry()
        registry.histogram(
            "baseline.select.seconds", "selection wall seconds per algorithm"
        ).observe(runtime, algorithm=self.name)
        registry.histogram(
            "baseline.optimizer_calls",
            "optimizer invocations per run (selection + cost accounting)",
        ).observe(run_calls, algorithm=self.name)
        if owned:
            evaluator.close()
        return AlgorithmResult(
            algorithm=self.name,
            indexes=list(indexes),
            runtime_seconds=runtime,
            optimizer_calls=run_calls,
            cost_before=cost_before,
            cost_after=cost_after,
            total_size_bytes=sum(self.db.index_size_bytes(i) for i in indexes),
        )

    @abstractmethod
    def _select(
        self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int
    ) -> list[Index]:
        """Algorithm-specific selection logic."""
