"""Extend (Schlosser, Kossmann, Boissier, ICDE 2019).

The recursive/greedy *extension* strategy: start from an empty
configuration; at each step either add the best new single-column index or
extend an already chosen index by appending one attribute, picking the
move with the highest benefit-to-storage ratio.  This is the academic
state of the art the paper compares against, and the "greedy incremental
algorithm (GIA)" of Fig 6 -- its one-column-at-a-time exploration is
exactly the behaviour AIM's coordinated multi-table candidates beat on
complex joins (Sec. VI-C).
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import indexable_columns, single_column_candidates


class ExtendAlgorithm(SelectionAlgorithm):
    """Greedy single-attribute extension under a benefit/size ratio."""

    name = "extend"

    def __init__(
        self,
        db,
        max_width: int = 4,
        min_ratio: float = 0.0,
        time_limit_seconds: Optional[float] = None,
    ):
        super().__init__(db)
        self.max_width = max_width
        self.min_ratio = min_ratio
        self.time_limit_seconds = time_limit_seconds

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        deadline = (
            time.perf_counter() + self.time_limit_seconds
            if self.time_limit_seconds is not None
            else math.inf
        )
        pairs = workload.pairs()
        singles = single_column_candidates(evaluator, workload)
        extension_columns = self._extension_columns(evaluator, workload)

        chosen: list[Index] = []
        used_bytes = 0
        current_cost = evaluator.workload_cost(pairs, chosen)
        while time.perf_counter() <= deadline:
            best: Optional[tuple[float, float, Optional[Index], Index]] = None
            # Move type 1: add a new single-column index.
            for candidate in singles:
                if any(c.name == candidate.name for c in chosen):
                    continue
                size = self.db.index_size_bytes(candidate)
                if used_bytes + size > budget_bytes:
                    continue
                cost = evaluator.workload_cost(pairs, chosen + [candidate])
                ratio = (current_cost - cost) / max(1, size)
                if ratio > self.min_ratio and (best is None or ratio > best[0]):
                    best = (ratio, cost, None, candidate)
            # Move type 2: extend a chosen index by one attribute.
            for existing in chosen:
                if existing.width >= self.max_width:
                    continue
                for column in extension_columns.get(existing.table, []):
                    if column in existing.columns:
                        continue
                    extended = Index(
                        existing.table, existing.columns + (column,), dataless=True
                    )
                    size_delta = self.db.index_size_bytes(extended) - self.db.index_size_bytes(existing)
                    if used_bytes + size_delta > budget_bytes:
                        continue
                    trial = [c for c in chosen if c.name != existing.name]
                    cost = evaluator.workload_cost(pairs, trial + [extended])
                    ratio = (current_cost - cost) / max(1, size_delta)
                    if ratio > self.min_ratio and (best is None or ratio > best[0]):
                        best = (ratio, cost, existing, extended)
            if best is None:
                return chosen
            _ratio, cost, replaced, added = best
            if replaced is not None:
                chosen = [c for c in chosen if c.name != replaced.name]
                used_bytes -= self.db.index_size_bytes(replaced)
            chosen.append(added)
            used_bytes += self.db.index_size_bytes(added)
            current_cost = cost
        return chosen   # anytime cutoff hit

    def _extension_columns(
        self, evaluator: CostEvaluator, workload: Workload
    ) -> dict[str, list[str]]:
        """Attributes an index may be extended by: a query's indexable
        columns first, then its remaining referenced columns (appending
        payload attributes is how Extend discovers index-only scans)."""
        out: dict[str, list[str]] = {}
        for query in workload:
            info = evaluator.analyze(query.sql)
            per_table = indexable_columns(info)
            for binding, table in info.bindings.items():
                columns = list(per_table.get(table, []))
                columns += sorted(info.referenced.get(binding, set()))
                existing = out.setdefault(table, [])
                for col in columns:
                    if col not in existing:
                        existing.append(col)
        return out
