"""Dexter-style advisor (github.com/ankane/dexter).

The pragmatic open-source approach: hypothesize single-column (and
two-column) indexes on filtered/joined columns, keep those the optimizer
actually uses with at least ``min_improvement`` relative gain, then fit
the budget by gain density.
"""

from __future__ import annotations

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import indexable_columns


class DexterAlgorithm(SelectionAlgorithm):
    """Hypothesize-and-keep-used with an improvement threshold."""

    name = "dexter"

    def __init__(self, db, min_improvement: float = 0.1, two_column: bool = True):
        super().__init__(db)
        self.min_improvement = min_improvement
        self.two_column = two_column

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        kept: dict[str, Index] = {}
        gain_by_index: dict[str, float] = {}
        for query in workload:
            if query.is_dml:
                continue
            info = evaluator.analyze(query.sql)
            hypothetical: dict[str, Index] = {}
            for table, columns in indexable_columns(info).items():
                for col in columns:
                    idx = Index(table, (col,), dataless=True)
                    hypothetical[idx.name] = idx
                if self.two_column and len(columns) >= 2:
                    idx = Index(table, tuple(columns[:2]), dataless=True)
                    hypothetical[idx.name] = idx
            if not hypothetical:
                continue
            base = evaluator.cost(query.sql, [])
            plan = evaluator.plan(query.sql, list(hypothetical.values()))
            if base <= 0:
                continue
            improvement = 1.0 - plan.total_cost / base
            if improvement < self.min_improvement:
                continue
            gain = (base - plan.total_cost) * query.weight
            used = [
                hypothetical[name]
                for name in plan.used_indexes
                if name in hypothetical
            ]
            for idx in used:
                kept[idx.name] = idx
                gain_by_index[idx.name] = gain_by_index.get(idx.name, 0.0) + gain / len(used)

        ordered = sorted(
            kept.values(),
            key=lambda c: gain_by_index[c.name] / max(1, self.db.index_size_bytes(c)),
            reverse=True,
        )
        chosen: list[Index] = []
        used_bytes = 0
        for candidate in ordered:
            size = self.db.index_size_bytes(candidate)
            if used_bytes + size <= budget_bytes:
                chosen.append(candidate)
                used_bytes += size
        return chosen
