"""Shared candidate machinery for the baseline algorithms.

The baselines use the classic *syntactically relevant* candidate scheme:
columns appearing in sargable filters, join predicates, GROUP BY or ORDER
BY are indexable; multi-column candidates are built per query by ordering
a query's indexable columns (equality columns first, by selectivity) and
taking prefixes, plus a bounded set of permutations.  This mirrors the
candidate generation of the Kossmann et al. framework without borrowing
AIM's partial-order machinery (which is the paper's contribution).
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..optimizer.query_info import QueryInfo
from ..workload import Workload
from ..core.ipp import is_ipp, is_range

#: Cap on permutation-based candidates per (query, table).
MAX_PERMUTATIONS = 6


def indexable_columns(info: QueryInfo) -> dict[str, list[str]]:
    """Per real table: the query's indexable columns, most useful first.

    Order: equality-filter columns, join columns, range columns, GROUP BY
    columns, ORDER BY columns (deduplicated).
    """
    out: dict[str, list[str]] = {}
    for binding, table in info.bindings.items():
        ordered: list[str] = []
        filters = info.filters.get(binding, [])
        for pred in filters:
            if is_ipp(pred):
                ordered.append(pred.column.column)
        for edge in info.edges_of(binding):
            ordered.append(edge.column_of(binding))
        for pred in filters:
            if is_range(pred):
                ordered.append(pred.column.column)
        for g_binding, column in info.group_by:
            if g_binding == binding:
                ordered.append(column)
        for item in info.order_by:
            if item.binding == binding:
                ordered.append(item.column)
        deduped = _dedupe(ordered)
        if deduped:
            existing = out.setdefault(table, [])
            for col in deduped:
                if col not in existing:
                    existing.append(col)
    return out


def single_column_candidates(
    evaluator: CostEvaluator, workload: Workload
) -> list[Index]:
    """All single-column candidates over the workload's indexable columns."""
    seen: set[tuple[str, str]] = set()
    out: list[Index] = []
    for query in workload:
        info = evaluator.analyze(query.sql)
        for table, columns in indexable_columns(info).items():
            for col in columns:
                key = (table, col)
                if key not in seen:
                    seen.add(key)
                    out.append(Index(table, (col,), dataless=True))
    return out


def per_query_candidates(
    evaluator: CostEvaluator,
    workload: Workload,
    max_width: int,
    with_permutations: bool = True,
) -> dict[str, list[Index]]:
    """Per query key: syntactically relevant candidates up to *max_width*."""
    out: dict[str, list[Index]] = {}
    for query in workload:
        if query.is_dml:
            continue
        info = evaluator.analyze(query.sql)
        # Dedupe on the structural key, not the formatted name: names
        # collide when table/column names contain underscores
        # (idx_a_b_c is both a_b(c) and a(b_c)).
        candidates: dict[tuple, Index] = {}
        for table, columns in indexable_columns(info).items():
            for width in range(1, min(max_width, len(columns)) + 1):
                prefix = tuple(columns[:width])
                idx = Index(table, prefix, dataless=True)
                candidates[idx.key] = idx
                if with_permutations and width > 1:
                    for perm in itertools.islice(
                        itertools.permutations(columns[:width]), MAX_PERMUTATIONS
                    ):
                        pidx = Index(table, tuple(perm), dataless=True)
                        candidates[pidx.key] = pidx
        out[query.normalized_sql] = list(candidates.values())
    return out


def candidate_pool(
    evaluator: CostEvaluator,
    workload: Workload,
    max_width: int,
    with_permutations: bool = True,
) -> list[Index]:
    """Deduplicated union of all per-query candidates."""
    pool: dict[tuple, Index] = {}
    per_query = per_query_candidates(
        evaluator, workload, max_width, with_permutations
    )
    for candidates in per_query.values():
        for idx in candidates:
            pool[idx.key] = idx
    return list(pool.values())


def config_size(db, indexes: Iterable[Index]) -> int:
    return sum(db.index_size_bytes(idx) for idx in indexes)


def _dedupe(items: list[str]) -> list[str]:
    seen: set[str] = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
