"""AIM wrapped in the common SelectionAlgorithm interface.

Lets the benchmark harness sweep AIM and the baselines uniformly
(Fig 4/5/6 all compare them on the same axes).
"""

from __future__ import annotations

from typing import Optional

from ..core import AimAdvisor, AimConfig
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm


class AimAlgorithm(SelectionAlgorithm):
    """The paper's algorithm behind the baseline-comparison interface."""

    name = "aim"

    def __init__(self, db, config: Optional[AimConfig] = None):
        super().__init__(db)
        self.config = config or AimConfig()

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        advisor = AimAdvisor(self.db, self.config)
        if self.config.relative_to_current:
            # The shared evaluator sees a bare schema; continuous-tuning
            # mode needs its own.  Merge the optimizer usage back so
            # runtime/call comparisons stay uniform.
            recommendation = advisor.recommend(workload, budget_bytes)
            evaluator.optimizer.calls += recommendation.optimizer_calls
        else:
            # Drive AIM through the shared evaluator: call accounting is
            # uniform, and a caller-held evaluator keeps its caches warm
            # across repeated runs.
            recommendation = advisor.recommend(
                workload, budget_bytes, evaluator=evaluator
            )
        return [idx.as_dataless() for idx in recommendation.indexes]
