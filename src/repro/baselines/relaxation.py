"""Relaxation (Bruno & Chaudhuri, SIGMOD 2005).

Start from the optimal per-query configuration union and repeatedly
*relax* it -- remove an index, truncate an index to a prefix, or merge
two indexes on one table -- choosing the transformation with the lowest
cost-increase per byte reclaimed, until the configuration fits the
budget.  The paper singles Relaxation out as "the only other modern
algorithm which utilizes the query structure to a significant extent"
but with "a prohibitively expensive runtime" (Sec. IX) -- its
start-big-then-shrink search shows exactly that profile here.
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import candidate_pool, config_size


class RelaxationAlgorithm(SelectionAlgorithm):
    """Start with per-query optimal union, relax until within budget."""

    name = "relaxation"

    def __init__(self, db, max_width: int = 3, max_steps: int = 400):
        super().__init__(db)
        self.max_width = max_width
        self.max_steps = max_steps

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        pairs = workload.pairs()
        current = candidate_pool(
            evaluator, workload, self.max_width, with_permutations=False
        )
        current_cost = evaluator.workload_cost(pairs, current)
        for _ in range(self.max_steps):
            size = config_size(self.db, current)
            if size <= budget_bytes:
                # Within budget: only keep relaxing while it does not hurt.
                improved = self._free_relaxation(evaluator, pairs, current, current_cost)
                if improved is None:
                    return current
                current, current_cost = improved
                continue
            step = self._cheapest_relaxation(evaluator, pairs, current)
            if step is None:
                return current
            current, current_cost = step
        return current

    def _transformations(self, current: list[Index]) -> list[list[Index]]:
        """All single-step relaxations of *current*."""
        out: list[list[Index]] = []
        for index in current:
            # Removal.
            out.append([c for c in current if c.name != index.name])
            # Prefixing (truncate the last column).
            if index.width > 1:
                prefixed = Index(index.table, index.columns[:-1], dataless=True)
                trial = [c for c in current if c.name != index.name]
                if all(c.name != prefixed.name for c in trial):
                    trial.append(prefixed)
                out.append(trial)
        # Merging two indexes on one table: union of columns, first's order.
        for i, a in enumerate(current):
            for b in current[i + 1:]:
                if a.table != b.table:
                    continue
                merged_cols = a.columns + tuple(
                    c for c in b.columns if c not in a.columns
                )
                if len(merged_cols) > self.max_width + 1:
                    continue
                merged = Index(a.table, merged_cols, dataless=True)
                trial = [
                    c for c in current if c.name not in (a.name, b.name)
                ]
                if all(c.name != merged.name for c in trial):
                    trial.append(merged)
                out.append(trial)
        return out

    def _cheapest_relaxation(
        self, evaluator: CostEvaluator, pairs, current: list[Index]
    ) -> Optional[tuple[list[Index], float]]:
        base_size = config_size(self.db, current)
        best: Optional[tuple[float, list[Index], float]] = None
        for trial in self._transformations(current):
            reclaimed = base_size - config_size(self.db, trial)
            if reclaimed <= 0:
                continue
            cost = evaluator.workload_cost(pairs, trial)
            penalty = cost / max(1, reclaimed)
            if best is None or penalty < best[0]:
                best = (penalty, trial, cost)
        if best is None:
            return None
        return best[1], best[2]

    def _free_relaxation(
        self, evaluator: CostEvaluator, pairs, current: list[Index], current_cost: float
    ) -> Optional[tuple[list[Index], float]]:
        for trial in self._transformations(current):
            if len(trial) >= len(current) and config_size(self.db, trial) >= config_size(self.db, current):
                continue
            cost = evaluator.workload_cost(pairs, trial)
            if cost <= current_cost:
                return trial, cost
        return None
