"""The no-index baseline: the denominator of every relative-cost plot."""

from __future__ import annotations

from .base import SelectionAlgorithm


class NoIndexAlgorithm(SelectionAlgorithm):
    """Selects nothing; cost_after == cost_before by construction."""

    name = "noindex"

    def _select(self, evaluator, workload, budget_bytes):
        return []
