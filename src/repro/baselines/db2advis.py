"""DB2 Advisor (Valentin et al., ICDE 2000).

Per-query candidate evaluation assigns each candidate the benefit it
yields for the queries whose plans use it; selection is a knapsack by
benefit density followed by a bounded random-variation improvement pass
(the original's "try harder" swap phase), seeded deterministically.
"""

from __future__ import annotations

import random

from ..catalog import Index
from ..optimizer import CostEvaluator
from ..workload import Workload
from .base import SelectionAlgorithm
from .cost_eval import config_size, per_query_candidates


class Db2AdvisAlgorithm(SelectionAlgorithm):
    """Benefit-density knapsack with random swap improvement."""

    name = "db2advis"

    def __init__(self, db, max_width: int = 3, swap_rounds: int = 20, seed: int = 7):
        super().__init__(db)
        self.max_width = max_width
        self.swap_rounds = swap_rounds
        self.seed = seed

    def _select(self, evaluator: CostEvaluator, workload: Workload, budget_bytes: int):
        pairs = workload.pairs()
        per_query = per_query_candidates(
            evaluator, workload, self.max_width, with_permutations=False
        )
        # Structural index keys: formatted names can collide when
        # table/column names contain underscores.
        benefit: dict[tuple, float] = {}
        pool: dict[tuple, Index] = {}
        for query in workload:
            if query.is_dml:
                continue
            candidates = per_query.get(query.normalized_sql, [])
            if not candidates:
                continue
            base = evaluator.cost(query.sql, [])
            plan = evaluator.plan(query.sql, candidates)
            gain = max(0.0, base - plan.total_cost) * query.weight
            used = plan.used_indexes
            used_candidates = [c for c in candidates if c.name in used]
            for candidate in used_candidates:
                pool[candidate.key] = candidate
                benefit[candidate.key] = (
                    benefit.get(candidate.key, 0.0) + gain / len(used_candidates)
                )

        ordered = sorted(
            pool.values(),
            key=lambda c: benefit[c.key] / max(1, self.db.index_size_bytes(c)),
            reverse=True,
        )
        chosen: list[Index] = []
        used_bytes = 0
        for candidate in ordered:
            size = self.db.index_size_bytes(candidate)
            if used_bytes + size <= budget_bytes:
                chosen.append(candidate)
                used_bytes += size

        # Random-variation improvement: swap one in/out, keep if better.
        rng = random.Random(self.seed)
        outside = [c for c in pool.values() if c not in chosen]
        best_cost = evaluator.workload_cost(pairs, chosen)
        for _ in range(self.swap_rounds):
            if not outside or not chosen:
                break
            incoming = rng.choice(outside)
            outgoing = rng.choice(chosen)
            trial = [c for c in chosen if c.key != outgoing.key] + [incoming]
            if config_size(self.db, trial) > budget_bytes:
                continue
            cost = evaluator.workload_cost(pairs, trial)
            if cost < best_cost:
                best_cost = cost
                outside = [c for c in outside if c.key != incoming.key] + [outgoing]
                chosen = trial
        return chosen
