"""DML costing and index maintenance overhead.

Implements the decomposition of paper Sec. III-F:

    cost(q, X) = cost_r(q, X) + sum_i cost_u(q, i)

``cost_r`` (locating the affected rows) reuses the SELECT planner;
``cost_u`` (the write amplification of maintaining index *i*) is what this
module adds.  ``cost_u`` is non-zero only for DML statements.
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Index, Schema, Table
from ..engine.pages import CostParams
from ..sqlparser import ast
from ..stats import StatsCatalog
from .query_info import QueryInfo
from .selectivity import MIN_SELECTIVITY, atomic_selectivity


def affected_rows(info: QueryInfo, schema: Schema, stats: StatsCatalog) -> float:
    """Estimated number of rows a DML statement touches."""
    stmt = info.stmt
    if isinstance(stmt, ast.Insert):
        return float(len(stmt.rows))
    binding = next(iter(info.bindings))
    table_name = info.bindings[binding]
    rows = max(1, stats.row_count(table_name))
    sel = 1.0
    for pred in info.filters.get(binding, []):
        col_stats = stats.table(table_name).column(pred.column.column)
        sel *= atomic_selectivity(pred, col_stats)
    return max(1.0, rows * max(MIN_SELECTIVITY, sel))


def index_is_affected(stmt: ast.Statement, index: Index) -> bool:
    """True if executing *stmt* must maintain *index*.

    INSERT/DELETE maintain every index of their table; UPDATE only
    maintains indexes whose key intersects the assigned columns.
    """
    if isinstance(stmt, ast.Insert):
        return stmt.table.name == index.table
    if isinstance(stmt, ast.Delete):
        return stmt.table.name == index.table
    if isinstance(stmt, ast.Update):
        if stmt.table.name != index.table:
            return False
        assigned = {col for col, _ in stmt.assignments}
        return bool(assigned & set(index.columns))
    return False


def maintenance_cost(
    info: QueryInfo,
    index: Index,
    schema: Schema,
    stats: StatsCatalog,
    params: CostParams,
    rows: Optional[float] = None,
) -> float:
    """``cost_u(q, i)``: marginal cost of maintaining *index* for one
    execution of the DML statement described by *info*.

    Per affected row the engine pays a B-tree descent plus an entry write
    (two for UPDATE: delete old + insert new), scaled by the engine's
    write amplification (LSM engines pay less; Sec. VI-A).
    """
    stmt = info.stmt
    if not index_is_affected(stmt, index):
        return 0.0
    if rows is None:
        rows = affected_rows(info, schema, stats)
    table_rows = max(1, stats.row_count(index.table))
    descent = params.btree_height(table_rows) * params.random_page_cost * 0.25
    entry_writes = 2.0 if isinstance(stmt, ast.Update) else 1.0
    per_row = descent + entry_writes * params.write_page_cost * params.write_amplification
    return rows * per_row


def dml_base_cost(
    info: QueryInfo,
    schema: Schema,
    stats: StatsCatalog,
    params: CostParams,
    locate_cost: float,
    rows: float,
) -> float:
    """Cost of a DML statement excluding secondary index maintenance.

    *locate_cost* is the SELECT-planner cost of finding the affected rows
    (zero for INSERT); the base-table (clustered PK) write is always paid.
    """
    table_rows = max(1, stats.row_count(next(iter(info.bindings.values()))))
    descent = params.btree_height(table_rows) * params.random_page_cost * 0.25
    per_row = descent + params.write_page_cost
    return locate_cost + rows * per_row
