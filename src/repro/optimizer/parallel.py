"""Process-pool fan-out for workload costing.

:class:`ParallelCoster` owns a ``ProcessPoolExecutor`` whose workers each
hold a full :class:`~repro.optimizer.what_if.CostEvaluator` over (a copy
of) the parent's stats-only database.  ``costs`` chunks a workload's
statements contiguously, plans each chunk in a worker and reassembles the
per-query costs **in the original order**, so the parent's weighted sum
is bit-identical to a serial evaluation.

Workers additionally ship back, per chunk:

* evaluator deltas -- real optimizer invocations, cache/canonical hits
  and evictions -- merged into the parent evaluator's accounting;
* every plan-cache entry they created that has not been shipped before
  (``(sql, config keys, used keys | None, plan)``), which the parent
  merges into its own exact + canonical cache tiers so later serial
  lookups still hit;
* their **telemetry**: the spans the worker's tracer finished during the
  chunk (:meth:`~repro.obs.Tracer.export_wire`) and the full delta of its
  metrics registry (:meth:`~repro.obs.MetricsRegistry.dump_state`).  The
  parent splices the spans under whatever span was open when the chunk
  was submitted -- so ``--trace`` output shows real per-worker pid lanes
  -- and merges the metrics additively, so ``--jobs N`` runs lose no
  counters.  Each worker resets its (fork-inherited) tracer and registry
  at init and after every shipment, making shipments true deltas.

Workers are forked (the evaluator and database transfer by COW memory,
not pickling).  On platforms without the ``fork`` start method -- or on
any pool failure -- ``costs`` returns ``(None, {}, [])`` and the caller
falls back to serial costing.
"""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from ..catalog import Index
from ..engine import Database
from ..obs import get_registry, get_tracer
from ..obs.tracer import Span, Tracer, set_tracer
from ..sqlparser import ast

__all__ = ["ParallelCoster"]

# Per-worker-process state, set up by _init_worker after fork.
_WORKER_EV = None
_WORKER_EXPORTED: set = set()


def _init_worker(db: Database, fast_path: bool, trace_enabled: bool) -> None:
    global _WORKER_EV, _WORKER_EXPORTED
    from .what_if import CostEvaluator

    # Fresh telemetry: the fork copied the parent's tracer/registry state,
    # and anything recorded pre-fork must not be re-shipped as worker
    # work.  The tracer is replaced outright (library code resolves
    # get_tracer() at call time); the registry is reset *in place* so
    # metric children bound at import time keep recording.
    set_tracer(Tracer(enabled=trace_enabled))
    # The parent hands over its already-prepared evaluation database
    # (indexes dropped when configurations are meant to be evaluated
    # bare), so the worker must NOT clone/strip again:
    # include_schema_indexes=True uses it as is.
    _WORKER_EV = CostEvaluator(db, include_schema_indexes=True, fast_path=fast_path)
    _WORKER_EXPORTED = set()
    get_registry().reset()


def _run_chunk(
    chunk_index: int,
    sqls: list[str],
    config: list[Index],
    parent_span_id: Optional[int],
) -> tuple[int, list[float], dict, list[tuple], dict, dict]:
    """Cost one contiguous chunk of statements in this worker.

    Returns ``(chunk_index, costs, evaluator-stat deltas, exported cache
    entries, trace wire payload, metrics state delta)``.  Entries already
    shipped by this worker in a previous chunk are not re-sent.
    """
    ev = _WORKER_EV
    tracer = get_tracer()
    calls_before = ev.optimizer.calls
    hits_before = ev.cache_hits
    canonical_before = ev.canonical_hits
    evictions_before = ev.cache_evictions
    costs: list[float] = []
    exported: list[tuple] = []
    with tracer.span(
        "parallel.chunk",
        chunk=chunk_index,
        statements=len(sqls),
        parent_span=-1 if parent_span_id is None else parent_span_id,
    ):
        for sql in sqls:
            info = ev.analyze(sql)
            relevant = ev._relevant(info, config)
            relevant_keys = frozenset(idx.key for idx in relevant)
            cache_sql = info.cache_sql or info.stmt.to_sql()
            key = (cache_sql, relevant_keys)
            fresh = key not in ev._plan_cache
            plan = ev.plan(info, config)
            costs.append(plan.total_cost)
            if fresh and key not in _WORKER_EXPORTED:
                _WORKER_EXPORTED.add(key)
                used_keys = None
                if ev.fast_path and relevant and isinstance(info.stmt, ast.Select):
                    used_keys = frozenset(
                        idx.key for idx in relevant if idx.name in plan.used_indexes
                    )
                exported.append((cache_sql, relevant_keys, used_keys, plan))
    stats = {
        "optimizer_calls": ev.optimizer.calls - calls_before,
        "cache_hits": ev.cache_hits - hits_before,
        "canonical_hits": ev.canonical_hits - canonical_before,
        "cache_evictions": ev.cache_evictions - evictions_before,
    }
    # Ship telemetry deltas and zero the worker-side state, so the next
    # chunk from this worker ships only its own increments.
    trace_wire = tracer.export_wire()
    tracer.reset()
    metrics_wire = get_registry().dump_state()
    get_registry().reset()
    return chunk_index, costs, stats, exported, trace_wire, metrics_wire


class ParallelCoster:
    """A lazy, reusable worker pool for one evaluation database."""

    def __init__(
        self,
        db: Database,
        include_schema_indexes: bool = True,
        fast_path: bool = True,
        jobs: int = 2,
    ):
        # ``db`` is the evaluator's internal database: when the evaluator
        # was built with include_schema_indexes=False it is already the
        # stripped stats clone, so workers always treat it as final.
        del include_schema_indexes
        self._db = db
        self._fast_path = bool(fast_path)
        self._jobs = max(1, int(jobs))
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False

    def _ensure_pool(self) -> bool:
        if self._executor is not None:
            return True
        if self._broken:
            return False
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            self._broken = True
            return False
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self._jobs,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._db, self._fast_path, get_tracer().enabled),
            )
        except Exception:
            self._broken = True
            return False
        return True

    def costs(
        self, sqls: list[str], config: list[Index], jobs: int
    ) -> tuple[Optional[list[float]], dict, list[tuple]]:
        """Cost *sqls* under *config* across the pool.

        Returns ``(per-query costs in input order, evaluator-stat deltas
        summed over workers, exported cache entries)``; ``(None, {}, [])``
        signals the caller to fall back to serial costing.  Worker spans
        are spliced under the span open at the time of the call; worker
        metrics merge into the process registry.
        """
        if not self._ensure_pool():
            return None, {}, []
        n_chunks = min(max(1, int(jobs)), self._jobs, len(sqls))
        if n_chunks < 2:
            return None, {}, []
        # Contiguous, deterministic chunking: chunk i gets sqls[starts[i]:starts[i+1]].
        base, extra = divmod(len(sqls), n_chunks)
        chunks: list[list[str]] = []
        pos = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            chunks.append(sqls[pos : pos + size])
            pos += size
        tracer = get_tracer()
        parent_span = tracer.current() if tracer.enabled else None
        parent_span_id = parent_span.span_id if parent_span is not None else None
        try:
            futures = [
                self._executor.submit(_run_chunk, i, chunk, config, parent_span_id)
                for i, chunk in enumerate(chunks)
            ]
            results = [f.result() for f in futures]
        except Exception:
            # Pool died (worker crash, unpicklable payload, ...): mark it
            # broken and let the caller cost serially.
            self.close()
            self._broken = True
            return None, {}, []
        results.sort(key=lambda r: r[0])
        costs: list[float] = []
        stats: dict[str, int] = {}
        exported: list[tuple] = []
        for _i, chunk_costs, chunk_stats, chunk_exported, trace_wire, metrics_wire in results:
            costs.extend(chunk_costs)
            for key, value in chunk_stats.items():
                stats[key] = stats.get(key, 0) + value
            exported.extend(chunk_exported)
            self._merge_telemetry(
                tracer, parent_span, trace_wire, metrics_wire
            )
        return costs, stats, exported

    @staticmethod
    def _merge_telemetry(
        tracer: Tracer,
        parent_span: Optional[Span],
        trace_wire: dict,
        metrics_wire: dict,
    ) -> None:
        """Splice one worker shipment into the parent's telemetry and
        account the per-worker merge-back (``parallel.worker.*``)."""
        registry = get_registry()
        registry.merge_state(metrics_wire)
        pid = trace_wire.get("pid", 0)
        spliced: list[Span] = []
        if tracer.enabled and trace_wire.get("spans"):
            spliced = tracer.splice_wire(trace_wire, parent=parent_span)
        worker_seconds = sum(span.duration for span in spliced)
        payload_bytes = len(json.dumps((trace_wire, metrics_wire), default=str))

        def per_worker(name: str, help: str, amount: float) -> None:
            registry.counter(name, help).inc(amount, pid=pid)

        per_worker("parallel.worker.chunks", "chunks costed per worker pid", 1)
        per_worker(
            "parallel.worker.spans",
            "spans spliced back per worker pid",
            _count_spans(trace_wire.get("spans", ())),
        )
        per_worker(
            "parallel.worker.seconds",
            "summed chunk wall seconds per worker pid",
            worker_seconds,
        )
        per_worker(
            "parallel.worker.bytes",
            "merge-back payload bytes (spans + metrics) per worker pid",
            payload_bytes,
        )

    def close(self) -> None:
        if self._executor is not None:
            # wait=True: workers are idle here (all futures resolved), and
            # a non-waiting shutdown races the concurrent.futures atexit
            # hook, which then writes to a closed wakeup pipe (EBADF noise
            # at interpreter exit).
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __del__(self):   # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass


def _count_spans(nodes) -> int:
    return sum(1 + _count_spans(node.get("children", ())) for node in nodes)
